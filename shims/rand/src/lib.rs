//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the `rand 0.8` API this workspace uses —
//! `StdRng`/`SmallRng`, `SeedableRng::{seed_from_u64, from_seed}`, and
//! `Rng::gen_range` over integer and float ranges — on top of xoshiro256++.
//! Streams are deterministic for a given seed but do **not** reproduce the
//! upstream `rand` byte streams (upstream `StdRng` is ChaCha12); nothing in
//! this repository asserts exact draws, only seed-determinism and
//! distributional properties.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` by expanding it with SplitMix64
    /// (the same expansion upstream uses for this entry point).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform sampling from a range type, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform `u64` into `[0, span)` without modulo bias worth
/// caring about (widening-multiply method).
#[inline]
fn mul_shift(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// User-facing RNG extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Concrete RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (deterministic per seed; not the
    /// upstream ChaCha12 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let draws_a: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_full_width_range_is_safe() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..=100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean} far from 50");
    }
}
