//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim satisfies `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` without providing any actual
//! serialization machinery. The traits are blanket-implemented markers, so
//! generic bounds like `T: Serialize` are always met; anything that needs
//! real wire output in this repository (e.g. `ringsched --observe`)
//! hand-writes its JSON instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
