//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! backed by `std::sync::mpsc`. This covers the ring-net executor's usage
//! (each endpoint owned by exactly one thread); it does not provide
//! `select!`, bounded channels, or multi-consumer receivers.

#![forbid(unsafe_code)]

/// Multi-producer channels (std-mpsc backed).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, failing only if the receiver was dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing only if all senders were
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channel_round_trips_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }
}
