//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** On failure the panic message reports the exact
//!   generated inputs instead of a minimized counterexample.
//! * **Deterministic seeding.** Cases are derived from a fixed seed mixed
//!   with the test name, so failures reproduce exactly on re-run.
//!   `PROPTEST_SEED` in the environment overrides the base seed.
//! * **Regression files are ignored** (`proptest-regressions/` is neither
//!   read nor written).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Namespace mirror of `proptest::prop` (so `prop::collection::vec` works
/// through the prelude).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection::vec;
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runner configuration (`cases` is the only supported knob).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test-case body did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

#[doc(hidden)]
pub fn __new_case_rng(test_name: &str, case: u64) -> StdRng {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D);
    // FNV-1a over the test name keeps distinct tests on distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(base ^ h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The proptest entry-point macro. Accepts one optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut case: u64 = 0;
            let max_attempts: u64 = u64::from(config.cases) * 20 + 100;
            while accepted < config.cases {
                assert!(
                    case < max_attempts,
                    "proptest '{}': too many prop_assume! rejections \
                     ({accepted}/{} cases accepted after {case} attempts)",
                    stringify!($name),
                    config.cases,
                );
                let mut rng = $crate::__new_case_rng(stringify!($name), case);
                case += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::TestCaseError::Reject)) => {}
                    Err(payload) => {
                        eprintln!(
                            "proptest '{}' failed on case #{} with inputs: {}",
                            stringify!($name),
                            case - 1,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Rejects the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a proptest case (plain `assert!`; inputs are reported by
/// the runner on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// `assert_eq!` within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// `assert_ne!` within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3u64..17,
            v in prop::collection::vec(0u64..10, 2..6),
            t in (0usize..4, 1i64..=5),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(t.0 < 4);
            prop_assert!((1..=5).contains(&t.1));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(f in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn nested_vec_strategy_samples() {
        let strat = prop::collection::vec(prop::collection::vec(1u64..100, 0..8), 1..24);
        let mut rng = crate::__new_case_rng("nested", 0);
        let v = strat.sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 24);
        assert!(v.iter().all(|inner| inner.len() < 8));
        assert!(v.iter().flatten().all(|&x| (1..100).contains(&x)));
    }
}
