//! Value-generation strategies for the offline proptest shim.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SampleRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vector-length specification.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`: vectors of `element` samples.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    // Unused import guard: SampleRange is pulled in for the blanket range
    // impls used through `gen_range` above.
    #[allow(unused)]
    fn _assert_range_usable<T, R: SampleRange<T>>() {}
}
