//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free API
//! (`lock()` returns the guard directly; a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's "no poisoning" contract).

#![forbid(unsafe_code)]

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
