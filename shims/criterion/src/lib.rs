//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `ring-bench` suite uses — benchmark groups,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness: each
//! benchmark runs a few warm-up iterations, then `sample_size` timed
//! samples, and prints min/median/mean per iteration. No statistics engine,
//! no HTML reports, no comparison to saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder-style, used
    /// in `criterion_group!` configs).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement time budget (builder-style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_benchmark(&id, sample_size, measurement_time, &mut f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Records the logical throughput of subsequent benchmarks (printed as
    /// context only; no per-element rates are computed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

/// Logical throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to `sample_size` samples within the
    /// measurement-time budget (always at least 2).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        black_box(f());
        let budget = Instant::now();
        for done in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if done >= 1 && budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples collected)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Declares a group of benchmark functions, with an optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`); the
            // shim has no tunable CLI and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn group_macro_forms_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(plain, target);
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        plain();
        configured();
    }
}
