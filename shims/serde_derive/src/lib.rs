//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The real `serde_derive` generates trait impls; the shim's `serde` crate
//! blanket-implements its marker traits instead, so these derives only need
//! to exist (and swallow `#[serde(...)]` attributes) for the annotated types
//! to compile unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
