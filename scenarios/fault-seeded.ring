# A seeded random fault plan on a uniform workload. The seed expands to a
# concrete plan at parse time, so the canonical rendering (and the golden
# digest) pin the expanded plan, not the seed.
[scenario]
name = fault-seeded

[topology]
m = 24

[workload]
shape = uniform
n = 30
seed = 9

[algorithm]
name = b2

[faults]
seed = 5
horizon = 48

[trace]
level = full
