# The congested-clique batch scheduler: uniform random load over a
# 16-node clique balanced in a constant number of O(n)-word rounds
# (report, grant, ship) before everyone drains locally.
[scenario]
name = clique-balance

[topology]
kind = clique
m = 16

[workload]
shape = uniform
n = 40
seed = 3

[algorithm]
name = clique

[trace]
level = full
