# One adversarial script under a hand-picked policy subset.
[scenario]
name = compete-burst
mode = compete

[workload]
compete-case = burst-m32-n400

[compete]
policies = c1 c2 mig
