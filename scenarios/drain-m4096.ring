# The m=4096 drain shape: one processor holds everything. This is the
# trace-size gate scenario — the binary RINGTRACE file must be at most a
# quarter of the JSON full-trace form here.
[scenario]
name = drain-m4096

[topology]
m = 4096

[workload]
shape = concentrated
n = 4096

[algorithm]
name = c1

[executor]
mode = par
shards = 8
compress = true

[trace]
level = full
