# The arc-parallel executor at the largest legal locality window with
# quiescent-span compression on.
[scenario]
name = par-window

[topology]
m = 64

[workload]
shape = region
n = 40

[algorithm]
name = a2

[executor]
mode = par
shards = 8
window = L
compress = true

[trace]
level = full
