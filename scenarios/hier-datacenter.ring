# A datacenter burst on the hierarchical ring: every node of the middle
# rack of a 4x8 hier topology is hot (a tenant burst landing on one rack)
# while the other racks carry light random background. The burst has to
# drain through rack uplinks — exactly the bottleneck the topology models.
[scenario]
name = hier-datacenter

[topology]
kind = hier
racks = 4
m = 8

[workload]
shape = datacenter
n = 300
seed = 7

[trace]
level = full
