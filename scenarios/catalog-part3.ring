# Part III of the Table 1 catalog (6 evil-adversary cases) under all six
# algorithms — 36 rows, bit-identical to tests/golden_makespans.txt.
[scenario]
name = catalog-part3

[workload]
catalog = part3
