# Part II of the Table 1 catalog (9 uniform random cases) under all six
# algorithms — 54 rows, bit-identical to tests/golden_makespans.txt.
[scenario]
name = catalog-part2

[workload]
catalog = part2
