# A serve-mode plan: the online job-submission service under a scripted
# arrival load, draining at t = 90. Run with `ringsched serve`.
[scenario]
name = serve-basic
mode = serve

[topology]
m = 16

[workload]
arrivals = 0@0:40;10@8:20;30@3:10

[algorithm]
name = c1

[service]
epoch = 8
queue-cap = 64
slo = 4000
drain-at = 90
