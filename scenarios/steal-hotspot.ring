# A single hot node on a mid-size ring under the work-stealing executor
# with every steal knob pinned — the adversarial interleaving the
# bit-identity gate cares about.
[scenario]
name = steal-hotspot

[topology]
m = 96

[workload]
shape = concentrated
n = 3000

[algorithm]
name = c2

[executor]
mode = steal
shards = 6
tasks-per-shard = 5
steal-seed = 13
rebalance = true
threads = 3

[trace]
level = full
