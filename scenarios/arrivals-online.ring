# A dynamic (online-release) run: three bursts released over time.
[scenario]
name = arrivals-online

[topology]
m = 32

[workload]
arrivals = 0@0:120;25@16:60;60@5:40

[algorithm]
name = c1

[trace]
level = full
