# A concentrated pile on an 8x8 torus, diffused dimension-free by the
# fabric gradient policy, with a processor stall mid-run. The 2D escape
# bandwidth must beat draining locally by a wide margin.
[scenario]
name = torus-hotspot

[topology]
kind = torus
rows = 8
cols = 8

[workload]
shape = concentrated
n = 2000

[faults]
plan = stall:5@3..9

[trace]
level = full
