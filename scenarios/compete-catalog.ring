# The full 10-case adversarial compete catalog under the full 8-policy
# suite — 80 ratio rows, digest-identical to tests/golden_ratios.txt.
[scenario]
name = compete-catalog
mode = compete

[workload]
compete-catalog = all
