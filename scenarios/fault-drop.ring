# A hot node draining through a lossy clockwise link while a neighbour
# stalls; full traces captured for the oracle replay and diff tests.
[scenario]
name = fault-drop

[workload]
loads = 90 0 0 7 0 0 0 22 0 0 0 0 5 0 0 0

[algorithm]
name = c1

[faults]
plan = drop:3cw@10..30;stall:7@0..6;delay=2:11ccw@5..25

[trace]
level = full
