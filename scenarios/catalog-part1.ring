# Part I of the Table 1 catalog (36 structured cases) under all six
# algorithms — 216 rows, bit-identical to tests/golden_makespans.txt.
[scenario]
name = catalog-part1

[workload]
catalog = part1
