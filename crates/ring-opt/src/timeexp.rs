//! Feasibility of a target makespan on a **unit-capacity** ring (§7 model).
//!
//! With capacitated links the spatial staircase argument of
//! [`crate::staircase`] no longer applies (work leaves a region at rate at
//! most one per link), so we test feasibility on the *time-expanded* graph:
//!
//! * a node `(p, t)` for every processor `p` and step `t ∈ 0..T`;
//! * source → `(p, 0)` with capacity `x_p` (initial placement);
//! * `(p, t) → (p, t+1)` with unbounded capacity (jobs may wait);
//! * `(p, t) → (p±1, t+1)` with capacity 1 — one job per link direction per
//!   step;
//! * `(p, t)` → sink with capacity 1 — one unit processed per step.
//!
//! A schedule of length `T` exists iff the max flow equals `n`. Capacities
//! are integral so the test is exact.
//!
//! Note on the capacity reading: the paper says "only one job and one
//! message can be passed over a link in a single time step". We model one
//! job per link *direction* per step (the more permissive reading). A more
//! permissive optimum is never larger, so approximation factors computed
//! against it are upper bounds on the true factors — the safe direction for
//! an empirical evaluation.

use crate::flow::{FlowNetwork, INF};
use ring_sim::Instance;

/// Estimated number of directed edges in the time-expanded network for
/// makespan `t`.
pub fn network_size_estimate(instance: &Instance, t: u64) -> u64 {
    let m = instance.num_processors() as u64;
    // hold + two moves + process per (p, t) node, plus m source edges.
    4 * m * t + m
}

/// Returns true iff a schedule of length `t` exists for `instance` on a
/// ring whose links carry at most one job per direction per step.
pub fn feasible(instance: &Instance, t: u64) -> bool {
    let n = instance.total_work();
    if n == 0 {
        return true;
    }
    if t == 0 {
        return false;
    }
    let m = instance.num_processors();
    let topo = instance.topology();
    let steps = t as usize;

    // Node layout: 0 = source, 1 = sink, (p, t) = 2 + t*m + p.
    let node = |p: usize, tt: usize| 2 + tt * m + p;
    let mut g = FlowNetwork::new(2 + steps * m);
    let src = 0usize;
    let sink = 1usize;

    for p in 0..m {
        let x = instance.load(p);
        if x > 0 {
            g.add_edge(src, node(p, 0), x);
        }
    }
    for tt in 0..steps {
        for p in 0..m {
            g.add_edge(node(p, tt), sink, 1);
            if tt + 1 < steps {
                g.add_edge(node(p, tt), node(p, tt + 1), INF);
                // m == 1 and m == 2 degenerate: avoid duplicate/looping
                // move edges.
                if m >= 2 {
                    let cw = topo.neighbor(p, ring_sim::Direction::Cw);
                    g.add_edge(node(p, tt), node(cw, tt + 1), 1);
                }
                if m >= 3 {
                    let ccw = topo.neighbor(p, ring_sim::Direction::Ccw);
                    g.add_edge(node(p, tt), node(ccw, tt + 1), 1);
                }
            }
        }
    }
    g.max_flow(src, sink) == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert!(feasible(&Instance::empty(3), 0));
        assert!(!feasible(&Instance::concentrated(3, 0, 1), 0));
        assert!(feasible(&Instance::concentrated(3, 0, 1), 1));
    }

    #[test]
    fn single_heavy_node_escape_rate() {
        // 9 jobs on one node of a 9-ring. In T steps the node processes T
        // and exports at most 2 per step, but exported jobs also need
        // processing time. T=3: process 3, export ≤ 2+2 but the last-step
        // exports can't be processed; neighbors can absorb at most
        // (T-1)+(T-2)… For T=3: self 3, each neighbor receives at t=1,2 and
        // can process 2 ... total 3 + 2 + 2 = 7 < 9. T=4: 4 + 3 + 3 + ...
        // second-hop neighbors get jobs at t>=2: 4+3+3+2+2 = 14 >= 9.
        let inst = Instance::concentrated(9, 0, 9);
        assert!(!feasible(&inst, 3));
        assert!(feasible(&inst, 4));
    }

    #[test]
    fn capacitated_never_beats_uncapacitated() {
        let inst = Instance::from_loads(vec![20, 0, 0, 0, 5, 0, 0, 3]);
        for t in 0..30 {
            if feasible(&inst, t) {
                assert!(crate::staircase::feasible(&inst, t));
            }
        }
    }

    #[test]
    fn uniform_load_unaffected_by_capacity() {
        let inst = Instance::from_loads(vec![4; 6]);
        assert!(!feasible(&inst, 3));
        assert!(feasible(&inst, 4));
    }

    #[test]
    fn feasibility_is_monotone_in_t() {
        let inst = Instance::from_loads(vec![12, 0, 3, 0, 0, 7]);
        let mut was = false;
        for t in 0..40 {
            let f = feasible(&inst, t);
            assert!(!was || f);
            was = f;
        }
        assert!(was);
    }

    #[test]
    fn two_processor_ring() {
        // m = 2: the two processors are joined by two links; our builder
        // adds only the cw move edge to avoid double-counting a single
        // physical link pair.
        let inst = Instance::from_loads(vec![6, 0]);
        // T=4: self 4, export one per step t=0..2 arriving t=1..3, neighbor
        // processes at most 3 -> 7 >= 6; T=3: 3 + 2 = 5 < 6.
        assert!(!feasible(&inst, 3));
        assert!(feasible(&inst, 4));
    }

    #[test]
    fn lemma10_bound_is_respected() {
        // Any feasible T must satisfy the Lemma 10 window bound.
        let inst = Instance::from_loads(vec![30, 25, 0, 0, 0, 0, 0, 0, 0, 0]);
        let lb = crate::bounds::capacitated_lower_bound(&inst);
        for t in 0..lb {
            assert!(!feasible(&inst, t), "t={t} below lower bound {lb}");
        }
    }
}
