//! # ring-opt — lower bounds and exact optima for ring scheduling
//!
//! Empirical approximation factors (§6 of the paper) need a denominator:
//! either the exact optimal makespan or a lower bound on it. This crate
//! provides both, for both link models:
//!
//! * [`bounds`] — closed-form lower bounds: the Lemma 1 window bound, the
//!   trivial `ceil(n/m)` and `p_max` bounds, and the Lemma 10 window bound
//!   for unit-capacity links (§7).
//! * [`flow`] — a self-contained Dinic max-flow solver.
//! * [`staircase`] — feasibility of a target makespan `T` on an
//!   *uncapacitated* ring, via a distance-staircase transportation network.
//! * [`timeexp`] — feasibility of `T` on a *unit-capacity* ring, via a
//!   time-expanded flow network.
//! * [`exact`] — binary-search optimum solvers built on the feasibility
//!   tests, with a size budget and graceful fall-back to lower bounds
//!   (mirroring §6.2, where some optima "eluded" the authors and lower
//!   bounds were used instead).
//!
//! The authors mention an unpublished `m²`-space method for exact optima
//! improving on Deng et al.; our flow-based solver is a documented
//! substitution that is still *exact* (see DESIGN.md §5).
//!
//! ```
//! use ring_sim::Instance;
//! use ring_opt::exact::{optimum_uncapacitated, OptResult, SolverBudget};
//!
//! // 16 jobs on one processor of an 8-ring: OPT is 4 (processor 0 and its
//! // neighbors at distances 1..4 can absorb 4+3+3+2+2+1+1 = 16 units in 4
//! // steps, and Lemma 1 with k = 1 shows 4 is necessary).
//! let inst = Instance::concentrated(8, 0, 16);
//! let opt = optimum_uncapacitated(&inst, None, &SolverBudget::default());
//! assert_eq!(opt, OptResult::Exact(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod bounds;
pub mod exact;
pub mod flow;
pub mod release;
pub mod sized;
pub mod staircase;
pub mod timeexp;

pub use assignment::{extract_assignment, Assignment};
pub use bounds::{
    capacitated_lower_bound, lemma1_lower_bound, lemma1_window_bound, mean_load_bound,
    uncapacitated_lower_bound,
};
pub use exact::{
    metric_optimum, optimum_capacitated, optimum_uncapacitated, OptResult, SolverBudget,
};
pub use release::{competitive_ratio, offline_optimum, OfflineOptimum, Release};
pub use sized::{branch_and_bound_sized, greedy_sized_makespan, SizedOpt};
