//! Exact optimum makespan via binary search over feasibility tests.
//!
//! For each link model we binary-search the smallest feasible `T`:
//!
//! * uncapacitated — [`crate::staircase::feasible`];
//! * unit-capacity — [`crate::timeexp::feasible`].
//!
//! The search is seeded from below by the closed-form lower bounds of
//! [`crate::bounds`] and from above by a caller-provided hint (typically
//! the makespan an algorithm just achieved) or, failing that, by doubling.
//!
//! Mirroring §6.2 of the paper — where "some instances' optimum schedule
//! lengths still eluded us" and lower bounds were substituted — the solver
//! takes a [`SolverBudget`]; when the feasibility network for the search
//! range would exceed it, the solver returns
//! [`OptResult::LowerBoundOnly`] instead of thrashing.

use crate::bounds::{capacitated_lower_bound, uncapacitated_lower_bound};
use crate::{staircase, timeexp};
use ring_sim::Instance;

/// Resource budget for the exact solvers.
#[derive(Debug, Clone, Copy)]
pub struct SolverBudget {
    /// Maximum estimated directed-edge count of any single feasibility
    /// network. Networks above this make the solver fall back to the lower
    /// bound.
    pub max_network_edges: u64,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            // ~tens of MB and a few seconds per query at worst.
            max_network_edges: 30_000_000,
        }
    }
}

/// Outcome of an optimum query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptResult {
    /// The exact optimal makespan.
    Exact(u64),
    /// The instance exceeded the solver budget; this is only a lower bound
    /// on the optimum (approximation factors computed against it are
    /// pessimistic, as in the paper's §6.2).
    LowerBoundOnly(u64),
}

impl OptResult {
    /// The numeric value (exact optimum or lower bound).
    pub fn value(&self) -> u64 {
        match *self {
            OptResult::Exact(v) | OptResult::LowerBoundOnly(v) => v,
        }
    }

    /// True iff this is an exact optimum.
    pub fn is_exact(&self) -> bool {
        matches!(self, OptResult::Exact(_))
    }
}

fn binary_search_optimum(
    lower: u64,
    upper_hint: Option<u64>,
    mut feasible: impl FnMut(u64) -> bool,
) -> u64 {
    // Establish a feasible upper bound.
    let mut hi = match upper_hint {
        Some(h) if h >= lower => h,
        _ => lower.max(1),
    };
    while !feasible(hi) {
        hi = hi.saturating_mul(2).max(1);
    }
    let mut lo = lower; // invariant: everything < lo is infeasible … almost:
                        // `lower` itself may be feasible, so search [lo, hi].
    if lo == hi {
        return lo;
    }
    // Invariant: hi feasible, lo-1 infeasible? `lower-1` is infeasible by
    // the bound's validity; check lo itself first to keep the classic
    // half-open invariant.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Exact optimal makespan on an uncapacitated ring, subject to the budget.
///
/// `upper_hint` should be a makespan known to be achievable (e.g. from a
/// simulation run); it tightens the search and, importantly, bounds the
/// largest network the solver must build.
pub fn optimum_uncapacitated(
    instance: &Instance,
    upper_hint: Option<u64>,
    budget: &SolverBudget,
) -> OptResult {
    let lb = uncapacitated_lower_bound(instance);
    if instance.total_work() == 0 {
        return OptResult::Exact(0);
    }
    // The largest network we could build during the search is at the upper
    // end of the range.
    let probe_t = upper_hint.unwrap_or(lb.saturating_mul(8).max(16));
    if staircase::network_size_estimate(instance, probe_t) > budget.max_network_edges {
        return OptResult::LowerBoundOnly(lb);
    }
    OptResult::Exact(binary_search_optimum(lb, upper_hint, |t| {
        staircase::feasible(instance, t)
    }))
}

/// Exact optimal makespan on **any** uncapacitated network given its
/// shortest-path metric, subject to the budget.
///
/// This is the topology-generic face of [`optimum_uncapacitated`]: the
/// staircase feasibility argument ([`staircase::metric_feasible`]) never
/// uses ring structure, so binary search over it is exact for meshes,
/// tori, hierarchies — any metric. `lower` must be a valid lower bound on
/// the optimum (it seeds the search from below and is returned verbatim
/// when the budget is exceeded); `diameter` must bound `dist(i, j)` over
/// all pairs.
pub fn metric_optimum(
    loads: &[u64],
    dist: impl Fn(usize, usize) -> usize + Copy,
    diameter: usize,
    lower: u64,
    upper_hint: Option<u64>,
    budget: &SolverBudget,
) -> OptResult {
    if loads.iter().sum::<u64>() == 0 {
        return OptResult::Exact(0);
    }
    let m = loads.len() as u64;
    let probe_t = upper_hint.unwrap_or(lower.saturating_mul(8).max(16));
    // Size of the largest feasibility network the search could build:
    // assignment edges plus per-processor distance chains.
    let dmax = probe_t.saturating_sub(1).min(diameter as u64);
    let est = m * m + m * (dmax + 1);
    if est > budget.max_network_edges {
        return OptResult::LowerBoundOnly(lower);
    }
    OptResult::Exact(binary_search_optimum(lower, upper_hint, |t| {
        staircase::metric_feasible(loads, dist, diameter, t)
    }))
}

/// Exact optimal makespan on a unit-capacity ring, subject to the budget.
pub fn optimum_capacitated(
    instance: &Instance,
    upper_hint: Option<u64>,
    budget: &SolverBudget,
) -> OptResult {
    let lb = capacitated_lower_bound(instance);
    if instance.total_work() == 0 {
        return OptResult::Exact(0);
    }
    let probe_t = upper_hint.unwrap_or(lb.saturating_mul(8).max(16));
    if timeexp::network_size_estimate(instance, probe_t) > budget.max_network_edges {
        return OptResult::LowerBoundOnly(lb);
    }
    OptResult::Exact(binary_search_optimum(lb, upper_hint, |t| {
        timeexp::feasible(instance, t)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt_u(inst: &Instance) -> u64 {
        optimum_uncapacitated(inst, None, &SolverBudget::default()).value()
    }

    fn opt_c(inst: &Instance) -> u64 {
        optimum_capacitated(inst, None, &SolverBudget::default()).value()
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::empty(5);
        assert_eq!(
            optimum_uncapacitated(&inst, None, &SolverBudget::default()),
            OptResult::Exact(0)
        );
        assert_eq!(
            optimum_capacitated(&inst, None, &SolverBudget::default()),
            OptResult::Exact(0)
        );
    }

    #[test]
    fn concentrated_matches_closed_form() {
        // For n jobs on one node of a big ring, OPT is the smallest T with
        // T + 2·(T-1 + … + 1) = T² ≥ ... exactly: T + 2·Σ_{d=1}^{T-1}(T-d)
        // = T + T(T-1) = T². So OPT = ceil(sqrt(n)).
        for n in [1u64, 2, 3, 4, 5, 10, 16, 17, 50, 100, 101] {
            let inst = Instance::concentrated(64, 3, n);
            let expect = (n as f64).sqrt().ceil() as u64;
            assert_eq!(opt_u(&inst), expect, "n={n}");
        }
    }

    #[test]
    fn upper_hint_does_not_change_answer() {
        let inst = Instance::from_loads(vec![40, 0, 0, 7, 0, 0, 0, 13]);
        let free = opt_u(&inst);
        let hinted = optimum_uncapacitated(&inst, Some(free + 17), &SolverBudget::default());
        assert_eq!(hinted, OptResult::Exact(free));
        // A hint exactly equal to OPT also works.
        let tight = optimum_uncapacitated(&inst, Some(free), &SolverBudget::default());
        assert_eq!(tight, OptResult::Exact(free));
    }

    #[test]
    fn capacitated_at_least_uncapacitated() {
        let insts = [
            Instance::from_loads(vec![30, 0, 0, 0, 0, 0]),
            Instance::from_loads(vec![5, 5, 5, 5]),
            Instance::from_loads(vec![17, 0, 9, 0, 4, 0, 0, 2]),
        ];
        for inst in &insts {
            assert!(opt_c(inst) >= opt_u(inst));
        }
    }

    #[test]
    fn tiny_budget_falls_back_to_lower_bound() {
        let inst = Instance::concentrated(1000, 0, 100_000);
        let budget = SolverBudget {
            max_network_edges: 10,
        };
        let r = optimum_uncapacitated(&inst, None, &budget);
        assert!(!r.is_exact());
        assert_eq!(r.value(), crate::bounds::uncapacitated_lower_bound(&inst));
    }

    #[test]
    fn optimum_never_below_lower_bound() {
        let insts = [
            Instance::from_loads(vec![13, 2, 0, 44, 0, 0, 9, 1]),
            Instance::from_loads(vec![100, 100, 0, 0, 0, 0, 0, 0, 0, 0]),
        ];
        for inst in &insts {
            let lb = crate::bounds::uncapacitated_lower_bound(inst);
            assert!(opt_u(inst) >= lb);
            let clb = crate::bounds::capacitated_lower_bound(inst);
            assert!(opt_c(inst) >= clb);
        }
    }

    #[test]
    fn section5_two_cluster_optimum() {
        // Lemma 8 closed form, z = 2, heaps of 50 at distance 5.
        let mut loads = vec![0u64; 64];
        loads[10] = 50;
        loads[15] = 50;
        let inst = Instance::from_loads(loads);
        assert_eq!(opt_u(&inst), 9);
    }
}
