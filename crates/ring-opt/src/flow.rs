//! A self-contained Dinic max-flow solver.
//!
//! Used by the feasibility tests in [`crate::staircase`] and
//! [`crate::timeexp`]. Capacities are `u64`; the graph is stored as a flat
//! edge array with per-node adjacency index lists (cache-friendly, no
//! per-edge allocation).

/// Sentinel for "no capacity limit" that still leaves headroom for sums.
pub const INF: u64 = u64::MAX / 4;

#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: u64,
}

/// Opaque handle to an edge, returned by [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(u32);

/// A flow network under construction / being solved.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<u32>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes (0-based) and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges added (not counting residual twins).
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `u → v` with capacity `cap`, returning a handle
    /// that can be passed to [`FlowNetwork::flow_on`] after a max-flow run.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) -> EdgeId {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        let id = self.edges.len() as u32;
        self.edges.push(Edge { to: v as u32, cap });
        self.edges.push(Edge {
            to: u as u32,
            cap: 0,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        EdgeId(id)
    }

    /// Flow currently routed through an edge (the residual capacity
    /// accumulated on its twin). Zero before any [`FlowNetwork::max_flow`]
    /// call.
    pub fn flow_on(&self, edge: EdgeId) -> u64 {
        self.edges[(edge.0 ^ 1) as usize].cap
    }

    /// Computes the maximum `s → t` flow, consuming residual capacity in
    /// place. Calling it twice continues from the previous residual state
    /// (returning only the *additional* flow), so callers normally build a
    /// fresh network per query.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.adj.len();
        let mut level = vec![u32::MAX; n];
        let mut it = vec![0usize; n];
        let mut queue = Vec::with_capacity(n);
        let mut total = 0u64;

        loop {
            // BFS: build level graph.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            queue.clear();
            level[s] = 0;
            queue.push(s as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap > 0 && level[e.to as usize] == u32::MAX {
                        level[e.to as usize] = level[u] + 1;
                        queue.push(e.to);
                    }
                }
            }
            if level[t] == u32::MAX {
                return total;
            }
            it.iter_mut().for_each(|i| *i = 0);
            // DFS blocking flow (iterative to avoid deep recursion on long
            // chain networks).
            loop {
                let pushed = self.dfs_push(s, t, INF, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// Iterative DFS augmentation along the level graph.
    fn dfs_push(&mut self, s: usize, t: usize, limit: u64, level: &[u32], it: &mut [usize]) -> u64 {
        // Explicit stack of (node, flow-limit-into-node, edge chosen to get here).
        let mut path: Vec<u32> = Vec::new(); // edge ids along current path
        let mut u = s;
        loop {
            if u == t {
                // Found an augmenting path; bottleneck it.
                let mut bottleneck = limit;
                for &eid in &path {
                    bottleneck = bottleneck.min(self.edges[eid as usize].cap);
                }
                for &eid in &path {
                    self.edges[eid as usize].cap -= bottleneck;
                    self.edges[(eid ^ 1) as usize].cap += bottleneck;
                }
                return bottleneck;
            }
            let mut advanced = false;
            while it[u] < self.adj[u].len() {
                let eid = self.adj[u][it[u]];
                let e = &self.edges[eid as usize];
                let v = e.to as usize;
                if e.cap > 0 && level[v] == level[u] + 1 {
                    path.push(eid);
                    u = v;
                    advanced = true;
                    break;
                }
                it[u] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: retreat.
            if u == s {
                return 0;
            }
            let eid = path.pop().expect("non-source dead end has a parent edge");
            let parent = self.edges[(eid ^ 1) as usize].to as usize;
            it[parent] += 1;
            u = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(g.max_flow(0, 1), 7);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of capacity 10 and 5 sharing nothing.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 3, 10);
        g.add_edge(0, 2, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(g.max_flow(0, 3), 15);
    }

    #[test]
    fn bottleneck_in_middle() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 100);
        g.add_edge(1, 2, 3);
        g.add_edge(2, 3, 100);
        assert_eq!(g.max_flow(0, 3), 3);
    }

    #[test]
    fn requires_residual_edges() {
        // The textbook example where a greedy forward-only algorithm gets
        // stuck: flow must be rerouted through the residual edge.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(g.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 4);
        assert_eq!(g.max_flow(0, 2), 0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 1, 3);
        assert_eq!(g.max_flow(0, 1), 5);
    }

    #[test]
    fn long_chain() {
        // Exercise the iterative DFS on a deep path.
        let n = 10_000;
        let mut g = FlowNetwork::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 9);
        }
        assert_eq!(g.max_flow(0, n - 1), 9);
    }

    #[test]
    fn bipartite_matching() {
        // 3x3 bipartite with a perfect matching.
        // nodes: 0 = s, 1..4 = left, 4..7 = right, 7 = t
        let mut g = FlowNetwork::new(8);
        for l in 1..4 {
            g.add_edge(0, l, 1);
        }
        for r in 4..7 {
            g.add_edge(r, 7, 1);
        }
        g.add_edge(1, 4, 1);
        g.add_edge(1, 5, 1);
        g.add_edge(2, 4, 1);
        g.add_edge(3, 6, 1);
        assert_eq!(g.max_flow(0, 7), 3);
    }

    #[test]
    fn large_capacities_do_not_overflow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, INF);
        g.add_edge(1, 2, INF);
        assert_eq!(g.max_flow(0, 2), INF);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force min-cut over all source/sink partitions of a small
    /// graph — an independent oracle for max-flow correctness.
    fn brute_force_min_cut(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
        let mut best = u64::MAX;
        // Each subset containing s but not t is a candidate cut.
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let mut cut = 0u64;
            for &(u, v, c) in edges {
                if mask & (1 << u) != 0 && mask & (1 << v) == 0 {
                    cut = cut.saturating_add(c);
                }
            }
            best = best.min(cut);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Max-flow equals the brute-forced min-cut on random small graphs.
        #[test]
        fn maxflow_equals_mincut(
            n in 2usize..8,
            raw in prop::collection::vec((0usize..8, 0usize..8, 0u64..50), 0..24),
        ) {
            let edges: Vec<(usize, usize, u64)> = raw
                .into_iter()
                .map(|(u, v, c)| (u % n, v % n, c))
                .filter(|&(u, v, _)| u != v)
                .collect();
            let mut g = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                g.add_edge(u, v, c);
            }
            let flow = g.max_flow(0, n - 1);
            let cut = brute_force_min_cut(n, &edges, 0, n - 1);
            prop_assert_eq!(flow, cut);
        }

        /// Flow conservation: after max_flow, per-edge flows reported by
        /// `flow_on` respect capacities and conserve at internal nodes.
        #[test]
        fn flow_decomposition_is_consistent(
            n in 3usize..8,
            raw in prop::collection::vec((0usize..8, 0usize..8, 1u64..40), 1..20),
        ) {
            let edges: Vec<(usize, usize, u64)> = raw
                .into_iter()
                .map(|(u, v, c)| (u % n, v % n, c))
                .filter(|&(u, v, _)| u != v)
                .collect();
            let mut g = FlowNetwork::new(n);
            let handles: Vec<(usize, usize, u64, EdgeId)> = edges
                .iter()
                .map(|&(u, v, c)| (u, v, c, g.add_edge(u, v, c)))
                .collect();
            let total = g.max_flow(0, n - 1);
            let mut net = vec![0i128; n];
            for &(u, v, c, id) in &handles {
                let f = g.flow_on(id);
                prop_assert!(f <= c, "flow {f} exceeds capacity {c}");
                net[u] -= f as i128;
                net[v] += f as i128;
            }
            prop_assert_eq!(net[0], -(total as i128));
            prop_assert_eq!(net[n - 1], total as i128);
            for (node, &b) in net.iter().enumerate() {
                if node != 0 && node != n - 1 {
                    prop_assert_eq!(b, 0, "conservation violated at {}", node);
                }
            }
        }
    }
}
