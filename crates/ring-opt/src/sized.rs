//! Arbitrary-job-size optima and baselines.
//!
//! With indivisible jobs of different sizes the exact problem contains
//! `PARTITION`, so there is no polynomial exact solver. This module
//! provides the three things the evaluation needs instead:
//!
//! * [`greedy_sized_makespan`] — a *centralized, offline* LPT-with-travel
//!   list scheduler, in the spirit of the centralized algorithms of Deng
//!   et al. and Phillips–Stein–Wein that §1 cites as the non-distributed
//!   alternative. An upper bound on OPT and a baseline that knows
//!   everything.
//! * [`branch_and_bound_sized`] — an exponential exact solver for *small*
//!   instances (≲ 12 jobs), used by tests to certify the 5.22 guarantee
//!   against the true optimum rather than a lower bound.
//! * the lower bounds already in [`crate::bounds::sized_lower_bound`].
//!
//! Single-machine subproblem: once a set of jobs (with arrival times =
//! ring distances) is assigned to one processor, processing them in
//! earliest-arrival order minimizes that processor's completion time (a
//! classic exchange argument for `1|r_j|C_max`), which both the greedy and
//! the exact solver rely on.

use ring_sim::{RingTopology, SizedInstance};

/// A job as the solvers see it: origin and size.
#[derive(Debug, Clone, Copy)]
struct SJob {
    origin: usize,
    size: u64,
}

fn collect_jobs(instance: &SizedInstance) -> Vec<SJob> {
    let mut jobs: Vec<SJob> = instance
        .all_jobs()
        .map(|j| SJob {
            origin: j.origin,
            size: j.size,
        })
        .collect();
    // Longest first: standard LPT, and the strongest early pruning for
    // branch-and-bound.
    jobs.sort_by_key(|j| std::cmp::Reverse(j.size));
    jobs
}

/// Completion time of one processor given its assigned jobs, processed in
/// earliest-arrival order.
fn machine_completion(topo: RingTopology, proc: usize, jobs: &[SJob]) -> u64 {
    let mut arrivals: Vec<(u64, u64)> = jobs
        .iter()
        .map(|j| (topo.distance(j.origin, proc) as u64, j.size))
        .collect();
    arrivals.sort_unstable();
    let mut t = 0u64;
    for (arrive, size) in arrivals {
        t = t.max(arrive) + size;
    }
    t
}

/// Centralized LPT-with-travel: jobs longest-first, each placed on the
/// processor that finishes it earliest (accounting for migration time).
/// Returns the resulting makespan — an upper bound on the optimum computed
/// with full global knowledge, against which the distributed algorithm's
/// "no global control" price can be measured.
pub fn greedy_sized_makespan(instance: &SizedInstance) -> u64 {
    let topo = instance.topology();
    let m = instance.num_processors();
    let jobs = collect_jobs(instance);
    let mut assigned: Vec<Vec<SJob>> = vec![Vec::new(); m];
    let mut finish: Vec<u64> = vec![0; m];
    for job in jobs {
        let mut best = usize::MAX;
        let mut best_finish = u64::MAX;
        for (p, set) in assigned.iter_mut().enumerate() {
            // Appending in earliest-arrival order may re-order, so compute
            // the true completion with the job included.
            set.push(job);
            let f = machine_completion(topo, p, set);
            set.pop();
            if f < best_finish {
                best_finish = f;
                best = p;
            }
        }
        assigned[best].push(job);
        finish[best] = best_finish;
    }
    finish.into_iter().max().unwrap_or(0)
}

/// Result of the exact sized solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizedOpt {
    /// The true optimal makespan.
    Exact(u64),
    /// The instance exceeded `max_jobs`; value is the best known lower
    /// bound.
    TooLarge(u64),
}

impl SizedOpt {
    /// The numeric value.
    pub fn value(&self) -> u64 {
        match *self {
            SizedOpt::Exact(v) | SizedOpt::TooLarge(v) => v,
        }
    }

    /// Whether the value is the exact optimum.
    pub fn is_exact(&self) -> bool {
        matches!(self, SizedOpt::Exact(_))
    }
}

/// Exact optimal makespan for a *small* sized instance by branch and
/// bound over job → processor assignments (jobs longest-first; prune when
/// the partial makespan or the remaining-work bound cannot beat the
/// incumbent).
pub fn branch_and_bound_sized(instance: &SizedInstance, max_jobs: usize) -> SizedOpt {
    let lb = crate::bounds::sized_lower_bound(instance);
    let jobs = collect_jobs(instance);
    if jobs.len() > max_jobs {
        return SizedOpt::TooLarge(lb);
    }
    if jobs.is_empty() {
        return SizedOpt::Exact(0);
    }
    let topo = instance.topology();
    let m = instance.num_processors();

    // Incumbent: the greedy solution.
    let mut best = greedy_sized_makespan(instance);

    struct Ctx {
        topo: RingTopology,
        m: usize,
        jobs: Vec<SJob>,
        lb: u64,
    }

    fn recurse(
        ctx: &Ctx,
        k: usize,
        assigned: &mut Vec<Vec<SJob>>,
        finishes: &mut Vec<u64>,
        best: &mut u64,
    ) {
        if *best == ctx.lb {
            return; // already optimal
        }
        if k == ctx.jobs.len() {
            let makespan = finishes.iter().copied().max().unwrap_or(0);
            if makespan < *best {
                *best = makespan;
            }
            return;
        }
        let current_max = finishes.iter().copied().max().unwrap_or(0);
        if current_max >= *best {
            return;
        }
        let job = ctx.jobs[k];
        // Symmetry pruning: trying two processors with identical distance
        // to every remaining job AND identical assigned sets is redundant;
        // the cheap version used here skips processors whose (finish,
        // distance-to-job) pair repeats.
        let mut seen: Vec<(u64, usize)> = Vec::with_capacity(ctx.m);
        for p in 0..ctx.m {
            let d = ctx.topo.distance(job.origin, p);
            if assigned[p].is_empty() && seen.contains(&(finishes[p], d)) {
                continue;
            }
            if assigned[p].is_empty() {
                seen.push((finishes[p], d));
            }
            assigned[p].push(job);
            let old_finish = finishes[p];
            let f = machine_completion(ctx.topo, p, &assigned[p]);
            finishes[p] = f;
            if f < *best {
                recurse(ctx, k + 1, assigned, finishes, best);
            }
            finishes[p] = old_finish;
            assigned[p].pop();
        }
    }

    let ctx = Ctx { topo, m, jobs, lb };
    let mut assigned: Vec<Vec<SJob>> = vec![Vec::new(); m];
    let mut finishes: Vec<u64> = vec![0; m];
    recurse(&ctx, 0, &mut assigned, &mut finishes, &mut best);
    SizedOpt::Exact(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::sized_lower_bound;

    fn inst(sizes: Vec<Vec<u64>>) -> SizedInstance {
        SizedInstance::from_sizes(sizes)
    }

    #[test]
    fn empty_instance() {
        let i = inst(vec![vec![], vec![]]);
        assert_eq!(greedy_sized_makespan(&i), 0);
        assert_eq!(branch_and_bound_sized(&i, 12), SizedOpt::Exact(0));
    }

    #[test]
    fn single_job_runs_at_origin() {
        let i = inst(vec![vec![9], vec![], vec![], vec![]]);
        assert_eq!(greedy_sized_makespan(&i), 9);
        assert_eq!(branch_and_bound_sized(&i, 12), SizedOpt::Exact(9));
    }

    #[test]
    fn two_jobs_split_to_neighbor() {
        // Jobs 5 and 5 at node 0 of a 4-ring: run one locally (5), ship
        // one to a neighbor (1 + 5 = 6). OPT = 6.
        let i = inst(vec![vec![5, 5], vec![], vec![], vec![]]);
        assert_eq!(branch_and_bound_sized(&i, 12), SizedOpt::Exact(6));
        assert_eq!(greedy_sized_makespan(&i), 6);
    }

    #[test]
    fn greedy_never_beats_exact() {
        let cases = vec![
            inst(vec![vec![3, 5, 2], vec![4], vec![], vec![1, 1]]),
            inst(vec![vec![7, 7, 7], vec![], vec![]]),
            inst(vec![vec![2], vec![2], vec![2], vec![2], vec![9]]),
        ];
        for i in cases {
            let exact = branch_and_bound_sized(&i, 12);
            assert!(exact.is_exact());
            assert!(greedy_sized_makespan(&i) >= exact.value());
            assert!(exact.value() >= sized_lower_bound(&i));
        }
    }

    #[test]
    fn too_many_jobs_reports_lower_bound() {
        let i = inst(vec![vec![1; 20]]);
        let r = branch_and_bound_sized(&i, 12);
        assert!(!r.is_exact());
        assert_eq!(r.value(), sized_lower_bound(&i));
    }

    #[test]
    fn exact_matches_unit_flow_solver_on_unit_jobs() {
        // All-unit sized instances are solvable by both paths; they must
        // agree.
        use ring_sim::Instance;
        for loads in [vec![4u64, 0, 2, 0], vec![3, 3, 3], vec![8, 0, 0, 0, 0, 1]] {
            let unit = Instance::from_loads(loads);
            let sized = unit.to_sized();
            let bnb = branch_and_bound_sized(&sized, 12);
            let flow = crate::exact::optimum_uncapacitated(
                &unit,
                None,
                &crate::exact::SolverBudget::default(),
            );
            assert!(bnb.is_exact());
            assert_eq!(bnb.value(), flow.value(), "on {:?}", unit.loads());
        }
    }

    #[test]
    fn distributed_pays_a_bounded_price_over_centralized() {
        // The distributed 5.22-algorithm vs the all-knowing centralized
        // greedy on a batch: the gap must stay within the guarantee.
        let mut sizes = vec![vec![]; 16];
        sizes[0] = vec![6, 5, 4, 4, 3, 3, 2, 2, 1, 1];
        let i = inst(sizes);
        let greedy = greedy_sized_makespan(&i);
        let exact = branch_and_bound_sized(&i, 10);
        assert!(exact.is_exact());
        assert!(greedy >= exact.value());
        assert!(greedy as f64 <= 2.0 * exact.value() as f64 + 1.0);
    }
}
