//! Optimal *schedules*, not just optimal makespans.
//!
//! The binary-search solver in [`crate::exact`] answers "how long?"; this
//! module also answers "who runs what, when": it reads the job movements
//! off the max-flow solution of the staircase network and lays each
//! processor's accepted jobs out on its timeline (earliest-arrival-first,
//! which is optimal by the exchange argument behind the staircase
//! feasibility test). The result is a concrete, independently verifiable
//! witness of optimality — [`Assignment::verify`] rechecks every model
//! constraint from scratch.

use crate::exact::{optimum_uncapacitated, OptResult, SolverBudget};
use crate::flow::{EdgeId, FlowNetwork, INF};
use ring_sim::Instance;

/// A bulk job movement: `count` unit jobs from `from` are processed at
/// `to` (ring distance `dist`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Originating processor.
    pub from: usize,
    /// Processing processor.
    pub to: usize,
    /// Ring distance (= migration time).
    pub dist: usize,
    /// Number of jobs.
    pub count: u64,
}

/// One contiguous block of a processor's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Originating processor of the jobs in this block.
    pub from: usize,
    /// First step of the block.
    pub start: u64,
    /// Number of jobs (= steps) in the block.
    pub count: u64,
}

/// An explicit optimal schedule.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The makespan this schedule achieves (the exact optimum).
    pub makespan: u64,
    /// All non-local job movements (local processing is implicit).
    pub moves: Vec<Move>,
    /// Per-processor timelines: blocks in processing order.
    pub timelines: Vec<Vec<Block>>,
}

/// Why [`extract_assignment`] could not produce a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// The instance exceeded the solver budget.
    BudgetExceeded,
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentError::BudgetExceeded => {
                write!(f, "instance exceeds the exact-solver budget")
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Computes the exact optimum and an explicit schedule achieving it.
///
/// ```
/// use ring_sim::Instance;
/// use ring_opt::assignment::extract_assignment;
/// use ring_opt::exact::SolverBudget;
///
/// let inst = Instance::concentrated(8, 0, 16);
/// let sched = extract_assignment(&inst, None, &SolverBudget::default()).unwrap();
/// assert_eq!(sched.makespan, 4);
/// assert_eq!(sched.verify(&inst), None); // independently checked witness
/// ```
pub fn extract_assignment(
    instance: &Instance,
    upper_hint: Option<u64>,
    budget: &SolverBudget,
) -> Result<Assignment, AssignmentError> {
    let t = match optimum_uncapacitated(instance, upper_hint, budget) {
        OptResult::Exact(t) => t,
        OptResult::LowerBoundOnly(_) => return Err(AssignmentError::BudgetExceeded),
    };
    let m = instance.num_processors();
    if instance.total_work() == 0 {
        return Ok(Assignment {
            makespan: 0,
            moves: Vec::new(),
            timelines: vec![Vec::new(); m],
        });
    }

    // Rebuild the staircase network at the optimum and keep the assignment
    // edge handles (mirrors `staircase::feasible`; kept in sync by the
    // round-trip tests below).
    let topo = instance.topology();
    let dmax = ((t - 1) as usize).min(topo.diameter());
    let chain_base = 2 + m;
    let chain_len = dmax + 1;
    let mut g = FlowNetwork::new(chain_base + m * chain_len);
    let chain = |j: usize, d: usize| chain_base + j * chain_len + d;
    for j in 0..m {
        g.add_edge(chain(j, 0), 1, t);
        for d in 1..=dmax {
            g.add_edge(chain(j, d), chain(j, d - 1), t - d as u64);
        }
    }
    let mut assignment_edges: Vec<(usize, usize, usize, EdgeId)> = Vec::new();
    for i in 0..m {
        let x = instance.load(i);
        if x == 0 {
            continue;
        }
        g.add_edge(0, 2 + i, x);
        for j in 0..m {
            let d = topo.distance(i, j);
            if d <= dmax {
                let e = g.add_edge(2 + i, chain(j, d), INF);
                assignment_edges.push((i, j, d, e));
            }
        }
    }
    let flow = g.max_flow(0, 1);
    debug_assert_eq!(flow, instance.total_work(), "optimum must be feasible");

    let mut moves = Vec::new();
    let mut received: Vec<Vec<(usize, usize, u64)>> = vec![Vec::new(); m]; // (dist, from, count)
    for (i, j, d, e) in assignment_edges {
        let f = g.flow_on(e);
        if f == 0 {
            continue;
        }
        if i != j {
            moves.push(Move {
                from: i,
                to: j,
                dist: d,
                count: f,
            });
        }
        received[j].push((d, i, f));
    }

    // Earliest-arrival-first packing on each processor.
    let mut timelines = Vec::with_capacity(m);
    for groups in &mut received {
        groups.sort_unstable();
        let mut tl = Vec::with_capacity(groups.len());
        let mut cursor = 0u64;
        for &(d, from, count) in groups.iter() {
            let start = cursor.max(d as u64);
            tl.push(Block { from, start, count });
            cursor = start + count;
        }
        timelines.push(tl);
    }

    Ok(Assignment {
        makespan: t,
        moves,
        timelines,
    })
}

impl Assignment {
    /// Total jobs moved (sum of move counts).
    pub fn jobs_moved(&self) -> u64 {
        self.moves.iter().map(|mv| mv.count).sum()
    }

    /// Total communication volume (jobs × hops).
    pub fn job_hops(&self) -> u64 {
        self.moves.iter().map(|mv| mv.count * mv.dist as u64).sum()
    }

    /// Independently verifies the schedule against its instance:
    ///
    /// 1. every job is processed exactly once (per-origin conservation);
    /// 2. no block starts before its jobs can have arrived (`start ≥ dist`);
    /// 3. blocks on one processor do not overlap;
    /// 4. everything finishes by `makespan`.
    ///
    /// Returns a description of the first violation, or `None`.
    pub fn verify(&self, instance: &Instance) -> Option<String> {
        let m = instance.num_processors();
        let topo = instance.topology();
        let mut processed_per_origin = vec![0u64; m];
        for (j, tl) in self.timelines.iter().enumerate() {
            let mut cursor = 0u64;
            for b in tl {
                if b.start < cursor {
                    return Some(format!("processor {j}: overlapping blocks at {}", b.start));
                }
                let d = topo.distance(b.from, j) as u64;
                if b.start < d {
                    return Some(format!(
                        "processor {j}: block from {} starts at {} before arrival {}",
                        b.from, b.start, d
                    ));
                }
                cursor = b.start + b.count;
                if cursor > self.makespan {
                    return Some(format!(
                        "processor {j}: finishes at {cursor} past makespan {}",
                        self.makespan
                    ));
                }
                processed_per_origin[b.from] += b.count;
            }
        }
        for (i, &p) in processed_per_origin.iter().enumerate() {
            if p != instance.load(i) {
                return Some(format!(
                    "origin {i}: {p} jobs processed, {} expected",
                    instance.load(i)
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(inst: &Instance) -> Assignment {
        extract_assignment(inst, None, &SolverBudget::default()).unwrap()
    }

    #[test]
    fn empty_instance() {
        let a = assignment(&Instance::empty(4));
        assert_eq!(a.makespan, 0);
        assert!(a.moves.is_empty());
    }

    #[test]
    fn concentrated_schedule_verifies_and_is_tight() {
        let inst = Instance::concentrated(8, 0, 16);
        let a = assignment(&inst);
        assert_eq!(a.makespan, 4);
        assert_eq!(a.verify(&inst), None);
        // Capacity at T = 4 is exactly 16, so every slot is used: jobs
        // moved = 16 - (jobs processed at the origin) = 12.
        assert_eq!(a.jobs_moved(), 12);
    }

    #[test]
    fn local_instance_never_moves() {
        let inst = Instance::from_loads(vec![5; 6]);
        let a = assignment(&inst);
        assert_eq!(a.makespan, 5);
        assert_eq!(a.jobs_moved(), 0);
        assert_eq!(a.verify(&inst), None);
    }

    #[test]
    fn schedules_verify_on_assorted_instances() {
        let cases = vec![
            Instance::from_loads(vec![40, 0, 0, 7, 0, 0, 0, 13]),
            Instance::from_loads(vec![100, 100, 0, 0, 0, 0, 0, 0, 0, 0]),
            ring_sim_free::two_heap(64, 50, 5),
            Instance::from_loads(vec![9]),
        ];
        for inst in cases {
            let a = assignment(&inst);
            assert_eq!(a.verify(&inst), None, "on {:?}", inst.loads());
            // Makespan matches the value-only solver.
            let opt = optimum_uncapacitated(&inst, None, &SolverBudget::default());
            assert_eq!(OptResult::Exact(a.makespan), opt);
        }
    }

    #[test]
    fn verify_catches_a_tampered_schedule() {
        let inst = Instance::concentrated(8, 0, 16);
        let mut a = assignment(&inst);
        // Claim a block starts before its jobs could arrive.
        for tl in &mut a.timelines {
            for b in tl.iter_mut() {
                if b.from != 0 || b.start > 0 {
                    b.start = 0;
                }
            }
        }
        assert!(a.verify(&inst).is_some());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let inst = Instance::concentrated(1000, 0, 100_000);
        let err = extract_assignment(
            &inst,
            None,
            &SolverBudget {
                max_network_edges: 10,
            },
        )
        .unwrap_err();
        assert_eq!(err, AssignmentError::BudgetExceeded);
    }

    mod ring_sim_free {
        use ring_sim::Instance;

        pub fn two_heap(m: usize, w: u64, gap: usize) -> Instance {
            let mut v = vec![0u64; m];
            v[0] = w;
            v[gap] = w;
            Instance::from_loads(v)
        }
    }
}
