//! Closed-form lower bounds on the optimal makespan.
//!
//! * **Lemma 1** (uncapacitated): for any `k ≤ m` adjacent processors
//!   holding total work `W`, any schedule has length at least the smallest
//!   `L` with `k·L + L·(L−1) ≥ W`, i.e.
//!   `L ≥ sqrt((k−1)²/4 + W) − (k−1)/2`.
//! * **Mean load**: `ceil(n / m)` — every schedule must process `n` units on
//!   `m` unit-speed processors.
//! * **Lemma 10** (unit-capacity links, §7): `k` adjacent processors can
//!   start with at most `(k+2)·L` work, because work leaves the group over
//!   only two links at rate one each; hence `L ≥ ceil(W / (k+2))`.
//!
//! All bounds are exact integer computations (no floating point), so they
//! are safe to use as certified denominators in approximation-factor
//! reports.

use ring_sim::{Instance, SizedInstance};

/// Floor of the square root of a `u128`.
pub(crate) fn isqrt(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    // Newton's method from a power-of-two overestimate; converges in a few
    // iterations and is exact for integers.
    let mut x = 1u128 << (v.ilog2() / 2 + 1);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// The Lemma 1 bound for a single window: the smallest `L ≥ 0` with
/// `L² + (k−1)·L ≥ work`, for a window of `k` adjacent processors holding
/// `work` total units.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn lemma1_window_bound(work: u64, k: usize) -> u64 {
    assert!(k >= 1, "window must contain at least one processor");
    if work == 0 {
        return 0;
    }
    let w = work as u128;
    let b = (k - 1) as u128;
    // L = ceil((-b + sqrt(b² + 4w)) / 2); compute a floor candidate and fix up.
    let disc = b * b + 4 * w;
    let s = isqrt(disc);
    let mut l = s.saturating_sub(b) / 2;
    while l * l + b * l < w {
        l += 1;
    }
    while l > 0 && (l - 1) * (l - 1) + b * (l - 1) >= w {
        l -= 1;
    }
    l as u64
}

/// The full Lemma 1 lower bound: the maximum window bound over every
/// clockwise window `(start, k)` with `1 ≤ k ≤ m`.
///
/// Runs in `O(m²)` time and `O(1)` extra space.
pub fn lemma1_lower_bound(instance: &Instance) -> u64 {
    let m = instance.num_processors();
    let loads = instance.loads();
    let mut best = 0u64;
    for start in 0..m {
        if loads[start] == 0 && m > 1 {
            // A maximizing window never starts with an empty processor: the
            // same work with smaller k gives a no-smaller bound.
            continue;
        }
        let mut work = 0u64;
        for k in 1..=m {
            work += loads[(start + k - 1) % m];
            // The bound can only beat `best` if work > best² + (k-1)·best.
            let b = best as u128;
            if (work as u128) > b * b + (k as u128 - 1) * b {
                best = best.max(lemma1_window_bound(work, k));
            }
        }
    }
    best
}

/// The trivial mean-load bound `ceil(n / m)`.
pub fn mean_load_bound(instance: &Instance) -> u64 {
    let n = instance.total_work();
    let m = instance.num_processors() as u64;
    n.div_ceil(m)
}

/// Best closed-form lower bound for the uncapacitated model:
/// `max(Lemma 1, ceil(n/m))`.
pub fn uncapacitated_lower_bound(instance: &Instance) -> u64 {
    lemma1_lower_bound(instance).max(mean_load_bound(instance))
}

/// Lower bound for arbitrary-sized jobs (§4.2): the work-based bound on the
/// per-processor *work* vector, combined with `p_max` (a job must run
/// entirely on one processor). The paper: "A lower bound for the arbitrary
/// sized job problem is max{L, p_max}."
pub fn sized_lower_bound(instance: &SizedInstance) -> u64 {
    uncapacitated_lower_bound(&instance.to_work_instance()).max(instance.p_max())
}

/// The Lemma 10 window bound for unit-capacity links: max over windows of
/// `ceil(W / (k + 2))`.
pub fn lemma10_lower_bound(instance: &Instance) -> u64 {
    let m = instance.num_processors();
    let loads = instance.loads();
    let mut best = 0u64;
    for start in 0..m {
        if loads[start] == 0 && m > 1 {
            continue;
        }
        let mut work = 0u64;
        for k in 1..=m {
            work += loads[(start + k - 1) % m];
            best = best.max(work.div_ceil(k as u64 + 2));
        }
    }
    best
}

/// Best closed-form lower bound for the unit-capacity model: capacitated
/// schedules are also valid uncapacitated schedules, so every uncapacitated
/// bound applies, plus Lemma 10.
pub fn capacitated_lower_bound(instance: &Instance) -> u64 {
    uncapacitated_lower_bound(instance).max(lemma10_lower_bound(instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_values() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(u128::from(u64::MAX)), (1u128 << 32) - 1);
        // A large perfect square.
        let r = 123_456_789_012u128;
        assert_eq!(isqrt(r * r), r);
        assert_eq!(isqrt(r * r - 1), r - 1);
    }

    #[test]
    fn window_bound_single_processor_is_ceil_sqrt() {
        // k = 1: smallest L with L² >= W.
        assert_eq!(lemma1_window_bound(0, 1), 0);
        assert_eq!(lemma1_window_bound(1, 1), 1);
        assert_eq!(lemma1_window_bound(16, 1), 4);
        assert_eq!(lemma1_window_bound(17, 1), 5);
        assert_eq!(lemma1_window_bound(100, 1), 10);
    }

    #[test]
    fn window_bound_matches_defining_inequality() {
        for k in 1..20 {
            for w in 0..500u64 {
                let l = lemma1_window_bound(w, k);
                let lk = l as u128;
                let b = (k - 1) as u128;
                assert!(lk * lk + b * lk >= w as u128, "w={w} k={k} l={l}");
                if l > 0 {
                    let lm = lk - 1;
                    assert!(
                        lm * lm + b * lm < w as u128,
                        "w={w} k={k} l={l} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma1_concentrated_is_sqrt() {
        // 100 jobs on one node of a large ring: L = 10 from the k = 1 window.
        let inst = Instance::concentrated(100, 7, 100);
        assert_eq!(lemma1_lower_bound(&inst), 10);
    }

    #[test]
    fn lemma1_wraps_around_the_ring() {
        // Heavy work split across the 0/m boundary: the maximizing window
        // wraps.
        let mut loads = vec![0u64; 10];
        loads[9] = 50;
        loads[0] = 50;
        let inst = Instance::from_loads(loads);
        // window (9, 2): W=100, k=2 -> L² + L >= 100 -> L = 10.
        assert_eq!(lemma1_lower_bound(&inst), 10);
    }

    #[test]
    fn mean_load_rounds_up() {
        let inst = Instance::from_loads(vec![3, 3, 1]);
        assert_eq!(mean_load_bound(&inst), 3);
        let inst = Instance::from_loads(vec![3, 3, 3]);
        assert_eq!(mean_load_bound(&inst), 3);
    }

    #[test]
    fn uniform_load_bound_is_mean() {
        let inst = Instance::from_loads(vec![5; 8]);
        assert_eq!(uncapacitated_lower_bound(&inst), 5);
    }

    #[test]
    fn sized_bound_includes_pmax() {
        let inst = SizedInstance::from_sizes(vec![vec![9], vec![], vec![], vec![]]);
        // work bound: sqrt(9) = 3; p_max = 9 dominates.
        assert_eq!(sized_lower_bound(&inst), 9);
    }

    #[test]
    fn lemma10_two_adjacent_heavy() {
        // Pair of adjacent processors with 40 jobs total: L >= ceil(40/4) = 10.
        let mut loads = vec![0u64; 20];
        loads[3] = 20;
        loads[4] = 20;
        let inst = Instance::from_loads(loads);
        assert!(lemma10_lower_bound(&inst) >= 10);
    }

    #[test]
    fn capacitated_bound_dominates_uncapacitated() {
        let inst = Instance::concentrated(50, 0, 400);
        assert!(capacitated_lower_bound(&inst) >= uncapacitated_lower_bound(&inst));
        // single heavy node: escape rate 1 per side -> L >= ceil(400/3) = 134.
        assert!(capacitated_lower_bound(&inst) >= 134);
    }

    #[test]
    fn bounds_zero_for_empty_instance() {
        let inst = Instance::empty(5);
        assert_eq!(uncapacitated_lower_bound(&inst), 0);
        assert_eq!(capacitated_lower_bound(&inst), 0);
    }
}
