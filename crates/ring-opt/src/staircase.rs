//! Feasibility of a target makespan on an **uncapacitated** ring.
//!
//! A schedule of length `T` exists iff the jobs can be assigned to
//! processors such that each processor `j` can fit its assigned jobs into
//! its `T` time slots, where a job originating at distance `d` from `j`
//! only fits into slots `d, d+1, …, T-1` (it needs `d` steps to arrive).
//! Because links are uncapacitated, *any* fractional split of job counts can
//! move simultaneously, so per-processor slot feasibility is the only
//! constraint. For a fixed set of jobs assigned to `j` with arrival
//! distances `d_1, …`, all fit iff for every `d`:
//!
//! ```text
//! #{jobs with distance ≥ d}  ≤  T − d
//! ```
//!
//! (earliest-arrival-last is an exchange-argument-optimal packing).
//!
//! We encode this as a max-flow problem:
//!
//! * source → `src_i` with capacity `x_i` for each processor `i`;
//! * `src_i` → `chain(j, d)` with unbounded capacity, where
//!   `d = dist(i, j) ≤ T − 1`;
//! * `chain(j, d)` → `chain(j, d−1)` with capacity `T − d` — the staircase:
//!   all flow passing this edge represents jobs reaching `j` from distance
//!   `≥ d`, of which at most `T − d` fit;
//! * `chain(j, 0)` → sink with capacity `T`.
//!
//! `T` is feasible iff the max flow equals the total work `n`. All
//! capacities are integral, so an integral optimal flow exists and the test
//! is exact for unit jobs.

use crate::flow::{FlowNetwork, INF};
use ring_sim::Instance;

/// Estimated number of directed edges the feasibility network for makespan
/// `t` would contain. Used by the budgeted solver to refuse absurdly large
/// queries before allocating.
pub fn network_size_estimate(instance: &Instance, t: u64) -> u64 {
    let m = instance.num_processors() as u64;
    if t == 0 {
        return m;
    }
    let reach = (2 * (t - 1) + 1).min(m); // processors within distance t-1
    let sources = instance.loads().iter().filter(|&&x| x > 0).count() as u64;
    let dmax = (t - 1).min(m / 2);
    // source edges + assignment edges + chain edges
    sources + sources * reach + m * (dmax + 1)
}

/// Returns true iff a schedule of length `t` exists for `instance` on an
/// uncapacitated ring.
pub fn feasible(instance: &Instance, t: u64) -> bool {
    let topo = instance.topology();
    metric_feasible(
        instance.loads(),
        |i, j| topo.distance(i, j),
        topo.diameter(),
        t,
    )
}

/// The staircase feasibility test for **any** uncapacitated network, given
/// its shortest-path metric. The argument in the module docs never uses
/// ring structure — only that a job `d` hops away arrives after `d` steps
/// and that links carry unlimited traffic — so the same test answers the
/// §8 open problem's *optimum* for meshes, tori, or any other topology
/// (`ring-mesh` uses it with the torus metric).
///
/// `diameter` must be an upper bound on `dist(i, j)` over all pairs.
pub fn metric_feasible(
    loads: &[u64],
    dist: impl Fn(usize, usize) -> usize,
    diameter: usize,
    t: u64,
) -> bool {
    let n: u64 = loads.iter().sum();
    if n == 0 {
        return true;
    }
    if t == 0 {
        return false;
    }
    let m = loads.len();
    // Jobs further than t-1 hops from every processor they could use cannot
    // be processed at all, but every processor can at least process its own
    // jobs, so distance 0 always exists; cap chains at dmax.
    let dmax = ((t - 1) as usize).min(diameter);

    // Node layout: 0 = source, 1 = sink, 2..2+m = per-processor sources,
    // then chains: chain(j, d) = chain_base + j*(dmax+1) + d.
    let chain_base = 2 + m;
    let chain_len = dmax + 1;
    let num_nodes = chain_base + m * chain_len;
    let mut g = FlowNetwork::new(num_nodes);
    let src = 0usize;
    let sink = 1usize;
    let chain = |j: usize, d: usize| chain_base + j * chain_len + d;

    for j in 0..m {
        g.add_edge(chain(j, 0), sink, t);
        for d in 1..=dmax {
            g.add_edge(chain(j, d), chain(j, d - 1), t - d as u64);
        }
    }
    for (i, &x) in loads.iter().enumerate() {
        if x == 0 {
            continue;
        }
        g.add_edge(src, 2 + i, x);
        // Every destination within dmax hops.
        for j in 0..m {
            let d = dist(i, j);
            if d <= dmax {
                g.add_edge(2 + i, chain(j, d), INF);
            }
        }
    }

    g.max_flow(src, sink) == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_feasible_at_zero() {
        let inst = Instance::empty(4);
        assert!(feasible(&inst, 0));
    }

    #[test]
    fn nonempty_instance_infeasible_at_zero() {
        let inst = Instance::concentrated(4, 0, 1);
        assert!(!feasible(&inst, 0));
        assert!(feasible(&inst, 1));
    }

    #[test]
    fn concentrated_16_on_8_ring() {
        // Capacity within T=4: 4 + 2*3 + 2*2 + 2*1 = 16 exactly.
        let inst = Instance::concentrated(8, 0, 16);
        assert!(!feasible(&inst, 3));
        assert!(feasible(&inst, 4));
    }

    #[test]
    fn concentrated_17_needs_5() {
        let inst = Instance::concentrated(8, 0, 17);
        assert!(!feasible(&inst, 4));
        assert!(feasible(&inst, 5));
    }

    #[test]
    fn uniform_load_is_tight_at_mean() {
        let inst = Instance::from_loads(vec![6; 5]);
        assert!(!feasible(&inst, 5));
        assert!(feasible(&inst, 6));
    }

    #[test]
    fn two_cluster_instance_respects_interference() {
        // Section 5 geometry: two heaps of W at distance 2z+1; between them
        // the escape regions overlap, so the interval bound alone is not
        // tight — the flow test must capture the interaction.
        // W = 50 on processors 0 and 5 of a 100-ring (z = 2).
        let mut loads = vec![0u64; 100];
        loads[0] = 50;
        loads[5] = 50;
        let inst = Instance::from_loads(loads);
        // Lemma 8: 2W = 2t² - (t-z)² + (t-z) with z=2 -> t=8 gives
        // 2·64 - 36 + 6 = 98 < 100; t=9 gives 162 - 49 + 7 = 120 >= 100.
        assert!(!feasible(&inst, 8));
        assert!(feasible(&inst, 9));
    }

    #[test]
    fn single_processor_ring() {
        let inst = Instance::from_loads(vec![12]);
        assert!(!feasible(&inst, 11));
        assert!(feasible(&inst, 12));
    }

    #[test]
    fn feasibility_is_monotone_in_t() {
        let inst = Instance::from_loads(vec![9, 0, 0, 4, 0, 30, 0, 1]);
        let mut was_feasible = false;
        for t in 0..40 {
            let f = feasible(&inst, t);
            assert!(!was_feasible || f, "feasibility must be monotone (t={t})");
            was_feasible = f;
        }
        assert!(was_feasible);
    }

    #[test]
    fn size_estimate_grows_with_t() {
        let inst = Instance::concentrated(100, 0, 1000);
        assert!(network_size_estimate(&inst, 10) < network_size_estimate(&inst, 100));
    }
}
