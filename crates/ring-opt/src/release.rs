//! Release-time-aware offline optima — the denominator of a competitive
//! ratio.
//!
//! The paper's offline model has every job present at `t = 0`, where the
//! flow solvers of [`crate::exact`] compute the optimum exactly. An
//! *online* instance reveals work over time, and the exact solvers do not
//! model release times. This module closes the gap the way §6.2 of the
//! paper closes its own ("some instances' optimum schedule lengths still
//! eluded us" — lower bounds were substituted):
//!
//! * **Single release wave** (all work released at one time `r`): the
//!   optimum is exactly `r + OPT(loads)` — before `r` nothing exists, and
//!   from `r` on the problem *is* the static one. The flow solver applies
//!   and the result is flagged [`OfflineOptimum::Exact`].
//! * **Multiple release waves**: for every release time `r`, the work
//!   released at or after `r` cannot be processed before `r`, and
//!   clearing just that work takes at least its static optimum even with
//!   every processor idle and perfectly positioned. Hence
//!   `max_r (r + OPT(suffix_r))` is a true lower bound on the dynamic
//!   optimum, computed with the *exact* solver per suffix and flagged
//!   [`OfflineOptimum::LowerBound`]. Ratios against it are pessimistic
//!   (never inflated), exactly like the paper's §6.2 lower-bound rows.
//!
//! Both denominators are safe: an empirical competitive ratio computed
//! against them is never an overestimate of the true ratio... and for the
//! `Exact` case it is the true ratio.

use crate::exact::{optimum_uncapacitated, SolverBudget};
use ring_sim::Instance;

/// One batch of unit jobs revealed to the online algorithm.
///
/// Mirrors `ring_sched::dynamic::Arrival` structurally; `ring-opt` keeps
/// its own copy so the dependency graph stays `ring-sched → ring-sim ←
/// ring-opt` (acyclic), as with the closed-form bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// Step at which the batch is revealed.
    pub time: u64,
    /// Processor it lands on.
    pub processor: usize,
    /// Number of unit jobs.
    pub count: u64,
}

/// The offline denominator for a revealed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfflineOptimum {
    /// The exact dynamic optimum (single release wave, solved by flow).
    Exact(u64),
    /// A certified lower bound on the dynamic optimum (multiple release
    /// waves, or the flow solver exceeded its budget). Ratios against it
    /// are pessimistic, as in the paper's §6.2.
    LowerBound(u64),
}

impl OfflineOptimum {
    /// The numeric denominator.
    pub fn value(&self) -> u64 {
        match *self {
            OfflineOptimum::Exact(v) | OfflineOptimum::LowerBound(v) => v,
        }
    }

    /// True iff the denominator is the exact dynamic optimum.
    pub fn is_exact(&self) -> bool {
        matches!(self, OfflineOptimum::Exact(_))
    }
}

fn suffix_instance(m: usize, releases: &[Release], from: u64) -> Instance {
    let mut loads = vec![0u64; m];
    for r in releases.iter().filter(|r| r.time >= from) {
        loads[r.processor] += r.count;
    }
    Instance::from_loads(loads)
}

/// The offline optimum (or certified lower bound) of a revealed instance.
///
/// `upper_hint` should be a makespan an online run actually achieved — it
/// bounds the flow networks the per-suffix searches must build.
///
/// # Panics
///
/// Panics if `m == 0` or any release names a processor `>= m`.
pub fn offline_optimum(
    m: usize,
    releases: &[Release],
    upper_hint: Option<u64>,
    budget: &SolverBudget,
) -> OfflineOptimum {
    assert!(m > 0, "need at least one processor");
    assert!(
        releases.iter().all(|r| r.processor < m),
        "release processor out of range"
    );
    if releases.iter().map(|r| r.count).sum::<u64>() == 0 {
        return OfflineOptimum::Exact(0);
    }
    let mut times: Vec<u64> = releases
        .iter()
        .filter(|r| r.count > 0)
        .map(|r| r.time)
        .collect();
    times.sort_unstable();
    times.dedup();
    let single_wave = times.len() == 1;
    let mut best = 0u64;
    let mut every_suffix_exact = true;
    for &r in &times {
        let suffix = suffix_instance(m, releases, r);
        // The hint for the suffix search: the online makespan minus the
        // release offset is achievable for the suffix work (the online
        // schedule itself clears it in that window).
        let hint = upper_hint.and_then(|h| h.checked_sub(r)).filter(|&h| h > 0);
        let opt = optimum_uncapacitated(&suffix, hint, budget);
        every_suffix_exact &= opt.is_exact();
        best = best.max(r + opt.value());
    }
    // Any job released at `r` still needs one step of processing.
    best = best.max(times.last().copied().unwrap_or(0) + 1);
    if single_wave && every_suffix_exact {
        OfflineOptimum::Exact(best)
    } else {
        OfflineOptimum::LowerBound(best)
    }
}

/// Competitive ratio of an online makespan against a denominator,
/// saturating at `1.0` only through genuine equality — an online makespan
/// below the denominator is a model violation and panics (the engine and
/// the assignment-level policies both produce feasible offline schedules,
/// so this can only fire on a harness bug).
pub fn competitive_ratio(online_makespan: u64, denom: &OfflineOptimum) -> f64 {
    let d = denom.value();
    if d == 0 {
        assert_eq!(online_makespan, 0, "work appeared from nowhere");
        return 1.0;
    }
    assert!(
        online_makespan >= d,
        "online makespan {online_makespan} beat the offline denominator {d}"
    );
    online_makespan as f64 / d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(time: u64, processor: usize, count: u64) -> Release {
        Release {
            time,
            processor,
            count,
        }
    }

    #[test]
    fn empty_instance_is_exactly_zero() {
        let r = offline_optimum(8, &[], None, &SolverBudget::default());
        assert_eq!(r, OfflineOptimum::Exact(0));
    }

    #[test]
    fn t0_wave_matches_static_solver() {
        // 16 jobs on one node of an 8-ring at t = 0: OPT = 4 (lib.rs doc).
        let r = offline_optimum(8, &[rel(0, 0, 16)], None, &SolverBudget::default());
        assert_eq!(r, OfflineOptimum::Exact(4));
    }

    #[test]
    fn late_single_wave_is_shifted_exactly() {
        // Same 16-job heap released at t = 100: OPT = 104, still exact.
        let r = offline_optimum(8, &[rel(100, 3, 16)], None, &SolverBudget::default());
        assert_eq!(r, OfflineOptimum::Exact(104));
    }

    #[test]
    fn equal_time_batches_still_count_as_one_wave() {
        // Two heaps, both at t = 5, on a ring big enough that they do not
        // interact: each heap of 50 needs ceil(sqrt(... lemma 8)) — the
        // solver handles the interaction; the point is the Exact flag.
        let r = offline_optimum(
            64,
            &[rel(5, 10, 50), rel(5, 15, 50)],
            None,
            &SolverBudget::default(),
        );
        // exact.rs pins OPT = 9 for this two-heap layout at t = 0.
        assert_eq!(r, OfflineOptimum::Exact(14));
    }

    #[test]
    fn multi_wave_is_a_flagged_lower_bound() {
        let releases = [rel(0, 0, 10), rel(1000, 4, 400)];
        let r = offline_optimum(64, &releases, None, &SolverBudget::default());
        assert!(!r.is_exact());
        // sqrt(400) = 20 released at 1000 dominates.
        assert_eq!(r.value(), 1020);
    }

    #[test]
    fn suffix_bound_beats_aggregate_when_tail_is_heavy() {
        // Aggregate OPT of 10+400 jobs near each other is well below
        // 1000 + OPT(400): the suffix term must win.
        let releases = [rel(0, 0, 10), rel(1000, 1, 400)];
        let r = offline_optimum(64, &releases, None, &SolverBudget::default());
        assert!(r.value() >= 1020);
    }

    #[test]
    fn zero_count_releases_are_ignored() {
        let r = offline_optimum(
            8,
            &[rel(0, 0, 16), rel(50, 2, 0)],
            None,
            &SolverBudget::default(),
        );
        assert_eq!(r, OfflineOptimum::Exact(4));
    }

    #[test]
    fn hint_does_not_change_the_answer() {
        let releases = [rel(0, 0, 100), rel(30, 8, 40)];
        let free = offline_optimum(32, &releases, None, &SolverBudget::default());
        let hinted = offline_optimum(32, &releases, Some(200), &SolverBudget::default());
        assert_eq!(free, hinted);
    }

    #[test]
    fn tiny_budget_degrades_to_closed_form_lower_bound() {
        let budget = SolverBudget {
            max_network_edges: 4,
        };
        let r = offline_optimum(1000, &[rel(0, 0, 100_000)], None, &budget);
        assert!(!r.is_exact());
        assert!(r.value() >= 316, "closed-form sqrt bound survives");
    }

    #[test]
    fn ratio_of_a_feasible_run_is_at_least_one() {
        let denom = OfflineOptimum::Exact(10);
        assert_eq!(competitive_ratio(10, &denom), 1.0);
        assert!(competitive_ratio(13, &denom) > 1.29);
        assert_eq!(competitive_ratio(0, &OfflineOptimum::Exact(0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "beat the offline denominator")]
    fn ratio_below_one_is_rejected() {
        let _ = competitive_ratio(5, &OfflineOptimum::Exact(10));
    }

    #[test]
    fn late_jobs_need_one_processing_step() {
        // A single 1-job release at t = 7 finishes at 8, not 7.
        let r = offline_optimum(4, &[rel(7, 2, 1)], None, &SolverBudget::default());
        assert_eq!(r, OfflineOptimum::Exact(8));
    }
}
