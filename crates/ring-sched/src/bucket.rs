//! The bucket message and the integral drop-off kernel (§3 + §4.1).
//!
//! The paper defines the integral algorithm as a *rounding* of the Basic
//! Algorithm: each bucket carries, besides its whole jobs, the fractional
//! shadow of what the Basic Algorithm would have done, and rounds against it
//! under two cumulative constraints (§4.1):
//!
//! * **I1** — the total a bucket has dropped off through time `t` is at most
//!   `ceil(D(t))`, where `D(t)` is the fractional cumulative drop;
//! * **I2** — the total a processor has accepted through time `t` is at most
//!   `1 + ceil(R(t))`, where `R(t)` is the fractional cumulative receipt.
//!
//! Lemma 6 shows this rounding costs at most +2 over the fractional
//! schedule. The same kernel serves all three experimental variants (§6):
//! the variant only changes the *target* the fractional shadow aims for.
//!
//! A bucket that has lapped the ring (`hops == m`) has seen all the work in
//! the system and switches to the Lemma 5 *balancing* rule: top every
//! processor up to the average load `ceil(n/m)`.

use crate::{ceil_tol, EPS};
use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder, Persist};
use ring_sim::{Direction, Payload};

/// A travelling bucket of unit jobs plus its fractional shadow.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Run-unique identifier, keyed into the [`ring_sim::DropRecord`] audit
    /// so the oracle can replay the per-bucket I1 ledger. Defaults to the
    /// origin index; emitters that create several buckets per node (the
    /// bidirectional split, dynamic arrivals) re-key it.
    pub id: u64,
    /// Processor the bucket started from.
    pub origin: usize,
    /// Travel direction (fixed for the bucket's lifetime).
    pub dir: Direction,
    /// Whole jobs still in the bucket.
    pub jobs: u64,
    /// Fractional-shadow content still in the bucket.
    pub frac: f64,
    /// Work that originated on the processors this bucket has visited
    /// (the `x_i + … + x_j` of the variant-C target).
    pub seen_work: u64,
    /// Cumulative fractional drop `D(t)` (constraint I1).
    pub dropped_frac: f64,
    /// Cumulative integral drop (constraint I1).
    pub dropped_int: u64,
    /// Hops travelled so far.
    pub hops: u64,
    /// Variant B: best Lemma 1 lower bound over the prefix the bucket has
    /// seen, `max_k sqrt(((k-1)/2)² + S_k) - (k-1)/2`.
    pub best_lb: f64,
    /// Whether the bucket has lapped the ring and switched to the Lemma 5
    /// balancing rule.
    pub balancing: bool,
    /// Total work in the system; meaningful once `balancing` is set (the
    /// lap made `seen_work` the global total).
    pub total_work: u64,
    /// Unconditional per-node drop amount, armed if the bucket completes a
    /// *second* full lap without emptying. In the static setting the
    /// Lemma 5 capacity argument empties every bucket within its balancing
    /// lap, so this never fires; with dynamic arrivals (`crate::dynamic`)
    /// later batches can saturate the average-load targets and this
    /// guarantees termination.
    pub spill: u64,
}

impl Bucket {
    /// A fresh bucket holding all `x` jobs of processor `origin`.
    pub fn new(origin: usize, dir: Direction, x: u64) -> Self {
        Bucket {
            id: origin as u64,
            origin,
            dir,
            jobs: x,
            frac: x as f64,
            seen_work: x,
            dropped_frac: 0.0,
            dropped_int: 0,
            hops: 0,
            best_lb: (x as f64).sqrt(),
            balancing: false,
            total_work: 0,
            spill: 0,
        }
    }

    /// True when the bucket carries neither whole jobs nor a meaningful
    /// fractional shadow and can be retired.
    pub fn is_spent(&self) -> bool {
        self.jobs == 0 && self.frac < EPS
    }

    /// Records arrival at the next processor, whose originating work is
    /// `x`: advances the hop count, accumulates `seen_work` and the
    /// variant-B bound, and flips to balancing mode after a full lap of an
    /// `m`-ring.
    pub fn arrive(&mut self, x: u64, m: usize) {
        self.hops += 1;
        if self.balancing {
            if self.spill == 0 && self.hops >= 2 * m as u64 {
                // Second full lap without emptying: force an even spill.
                self.spill = self.jobs.div_ceil(m as u64).max(1);
            }
            return;
        }
        if self.hops >= m as u64 {
            // Back at the origin: `seen_work` now covers every processor.
            self.balancing = true;
            self.total_work = self.seen_work;
        } else {
            self.seen_work += x;
            let k = (self.hops + 1) as f64; // processors seen, incl. origin
            let s = self.seen_work as f64;
            let lb = (((k - 1.0) / 2.0).powi(2) + s).sqrt() - (k - 1.0) / 2.0;
            if lb > self.best_lb {
                self.best_lb = lb;
            }
        }
    }

    /// Splits this bucket for the bidirectional variants: the receiver
    /// keeps the clockwise half (rounding the odd job clockwise) and the
    /// returned bucket carries the counterclockwise half. Both halves get
    /// fresh drop ledgers (constraint I1 is per-bucket).
    pub fn split_for_bidirectional(&mut self) -> Bucket {
        debug_assert_eq!(self.hops, 0, "split only happens at the origin");
        let ccw_jobs = self.jobs / 2;
        let half_frac = self.frac / 2.0;
        self.jobs -= ccw_jobs;
        self.frac = half_frac;
        Bucket {
            id: self.id,
            origin: self.origin,
            dir: Direction::Ccw,
            jobs: ccw_jobs,
            frac: half_frac,
            seen_work: self.seen_work,
            dropped_frac: 0.0,
            dropped_int: 0,
            hops: 0,
            best_lb: self.best_lb,
            balancing: false,
            total_work: 0,
            spill: 0,
        }
    }
}

impl Payload for Bucket {
    fn job_units(&self) -> u64 {
        self.jobs
    }
}

impl Persist for Bucket {
    fn save(&self, enc: &mut Encoder) {
        enc.u64(self.id);
        enc.usize(self.origin);
        self.dir.save(enc);
        enc.u64(self.jobs);
        enc.f64(self.frac);
        enc.u64(self.seen_work);
        enc.f64(self.dropped_frac);
        enc.u64(self.dropped_int);
        enc.u64(self.hops);
        enc.f64(self.best_lb);
        enc.bool(self.balancing);
        enc.u64(self.total_work);
        enc.u64(self.spill);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(Bucket {
            id: dec.u64()?,
            origin: dec.usize()?,
            dir: Direction::load(dec)?,
            jobs: dec.u64()?,
            frac: dec.f64()?,
            seen_work: dec.u64()?,
            dropped_frac: dec.f64()?,
            dropped_int: dec.u64()?,
            hops: dec.u64()?,
            best_lb: dec.f64()?,
            balancing: dec.bool()?,
            total_work: dec.u64()?,
            spill: dec.u64()?,
        })
    }
}

/// Per-processor acceptance ledger: everything a processor must remember
/// about past drops to run the algorithm (all local state).
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Cumulative fractional receipt `R(t)` (constraint I2).
    pub accepted_frac: f64,
    /// Cumulative whole jobs accepted (constraint I2).
    pub accepted_int: u64,
    /// Variant A: fractional bucket content that has passed this processor
    /// (including what each bucket carried on arrival).
    pub passed_frac: f64,
    /// Variant A: whole jobs that have passed (diagnostics).
    pub passed_int: u64,
}

impl Persist for Ledger {
    fn save(&self, enc: &mut Encoder) {
        enc.f64(self.accepted_frac);
        enc.u64(self.accepted_int);
        enc.f64(self.passed_frac);
        enc.u64(self.passed_int);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(Ledger {
            accepted_frac: dec.f64()?,
            accepted_int: dec.u64()?,
            passed_frac: dec.f64()?,
            passed_int: dec.u64()?,
        })
    }
}

/// What one drop-off deposited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropOutcome {
    /// Fractional shadow deposited.
    pub frac: f64,
    /// Whole jobs deposited.
    pub int: u64,
}

/// One regular (non-balancing) drop-off: move the fractional shadow so the
/// processor's *reference level* `current_frac` reaches `target_frac`, then
/// round under I1/I2.
///
/// Variants B and C top up the processor's cumulative acceptance
/// (`current_frac = ledger.accepted_frac`, the `a_j` of §3); variant A tops
/// up the processor's *current unprocessed backlog* ("removes jobs from
/// buckets so as to **have** the square root of the work that has passed
/// by" — the processor keeps re-filling as it drains, which is the
/// "slightly better local load balancing" the paper credits A with).
pub fn drop_regular(
    bucket: &mut Bucket,
    ledger: &mut Ledger,
    current_frac: f64,
    target_frac: f64,
) -> DropOutcome {
    let d_frac = (target_frac - current_frac).clamp(0.0, bucket.frac);
    let new_d = bucket.dropped_frac + d_frac;
    let new_r = ledger.accepted_frac + d_frac;

    let i1_room = ceil_tol(new_d).saturating_sub(bucket.dropped_int);
    let i2_room = (1 + ceil_tol(new_r)).saturating_sub(ledger.accepted_int);
    let d_int = bucket.jobs.min(i1_room).min(i2_room);

    bucket.frac -= d_frac;
    if bucket.frac < EPS {
        bucket.frac = 0.0;
    }
    bucket.dropped_frac = new_d;
    bucket.jobs -= d_int;
    bucket.dropped_int += d_int;
    ledger.accepted_frac = new_r;
    ledger.accepted_int += d_int;
    DropOutcome {
        frac: d_frac,
        int: d_int,
    }
}

/// The Lemma 5 balancing drop: top the processor up to the average load.
/// The rounding constraints are no longer needed — the bucket knows the
/// exact global total, so it rounds directly against `ceil(n/m)`.
pub fn drop_balancing(bucket: &mut Bucket, ledger: &mut Ledger, m: usize) -> DropOutcome {
    debug_assert!(bucket.balancing);
    let d_int = if bucket.spill > 0 {
        // Forced even spill (second lap; see `Bucket::spill`).
        bucket.jobs.min(bucket.spill)
    } else {
        let target_int = bucket.total_work.div_ceil(m as u64);
        bucket
            .jobs
            .min(target_int.saturating_sub(ledger.accepted_int))
    };
    let target_frac = bucket.total_work as f64 / m as f64;
    let d_frac = (target_frac - ledger.accepted_frac).clamp(0.0, bucket.frac);

    bucket.jobs -= d_int;
    bucket.dropped_int += d_int;
    bucket.frac -= d_frac;
    if bucket.frac < EPS {
        bucket.frac = 0.0;
    }
    bucket.dropped_frac += d_frac;
    ledger.accepted_int += d_int;
    ledger.accepted_frac += d_frac;
    DropOutcome {
        frac: d_frac,
        int: d_int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bucket_carries_everything() {
        let b = Bucket::new(3, Direction::Cw, 25);
        assert_eq!(b.jobs, 25);
        assert_eq!(b.frac, 25.0);
        assert_eq!(b.seen_work, 25);
        assert!((b.best_lb - 5.0).abs() < 1e-12);
        assert!(!b.is_spent());
    }

    #[test]
    fn arrive_accumulates_seen_work_and_lb() {
        let mut b = Bucket::new(0, Direction::Cw, 16);
        b.arrive(9, 100);
        assert_eq!(b.hops, 1);
        assert_eq!(b.seen_work, 25);
        // k=2, S=25: sqrt(0.25 + 25) - 0.5 ≈ 4.525 — next prefix bound.
        // best stays 4 (sqrt 16)? No: sqrt(16) = 4 < 4.52, so it updates.
        assert!(b.best_lb > 4.5 && b.best_lb < 4.6);
    }

    #[test]
    fn lap_triggers_balancing() {
        let mut b = Bucket::new(0, Direction::Cw, 10);
        let m = 4;
        b.arrive(1, m);
        b.arrive(2, m);
        b.arrive(3, m);
        assert!(!b.balancing);
        assert_eq!(b.seen_work, 16);
        b.arrive(10, m); // back at origin: x not re-added
        assert!(b.balancing);
        assert_eq!(b.total_work, 16);
        assert_eq!(b.seen_work, 16);
    }

    #[test]
    fn regular_drop_respects_target() {
        let mut b = Bucket::new(0, Direction::Cw, 100);
        let mut l = Ledger::default();
        let cur = l.accepted_frac;
        let out = drop_regular(&mut b, &mut l, cur, 17.7);
        assert!((out.frac - 17.7).abs() < 1e-9);
        assert_eq!(out.int, 18); // ceil(17.7) with I2 slack 1+ceil(17.7)=19, I1 = 18
        assert_eq!(b.jobs, 82);
        assert_eq!(l.accepted_int, 18);
    }

    #[test]
    fn drop_is_capped_by_bucket_content() {
        let mut b = Bucket::new(0, Direction::Cw, 3);
        let mut l = Ledger::default();
        let cur = l.accepted_frac;
        let out = drop_regular(&mut b, &mut l, cur, 50.0);
        assert_eq!(out.int, 3);
        assert!((out.frac - 3.0).abs() < 1e-12);
        assert!(b.is_spent());
    }

    #[test]
    fn i1_constraint_limits_cumulative_integral_drop() {
        // Fractional drops of 0.4 each: after k drops, ceil(0.4k) whole
        // jobs max may have been dropped.
        let mut b = Bucket::new(0, Direction::Cw, 10);
        let mut cumulative_int = 0u64;
        for k in 1..=10 {
            let mut fresh = Ledger::default();
            // force a 0.4 fractional drop into a fresh ledger each time
            let cur = fresh.accepted_frac;
            let out = drop_regular(&mut b, &mut fresh, cur, 0.4);
            cumulative_int += out.int;
            let d = 0.4 * k as f64;
            assert!(
                cumulative_int <= (d - 1e-9).ceil() as u64 + 1,
                "k={k} cumulative={cumulative_int}"
            );
            assert!(cumulative_int <= ceil_tol(b.dropped_frac));
        }
    }

    #[test]
    fn i2_constraint_limits_processor_acceptance() {
        // Many buckets dropping tiny fractions on one ledger: accepted_int
        // never exceeds 1 + ceil(R).
        let mut l = Ledger::default();
        for _ in 0..50 {
            let mut b = Bucket::new(0, Direction::Cw, 5);
            let cur = l.accepted_frac;
            drop_regular(&mut b, &mut l, cur, cur + 0.3);
            assert!(l.accepted_int <= 1 + ceil_tol(l.accepted_frac));
        }
    }

    #[test]
    fn zero_target_drops_nothing_fractional_but_i2_allows_one_job() {
        let mut b = Bucket::new(0, Direction::Cw, 5);
        let mut l = Ledger::default();
        let cur = l.accepted_frac;
        let out = drop_regular(&mut b, &mut l, cur, 0.0);
        // d_frac = 0, so I1 room = ceil(0) = 0: nothing drops.
        assert_eq!(out.int, 0);
        assert_eq!(out.frac, 0.0);
    }

    #[test]
    fn balancing_drop_targets_average() {
        let mut b = Bucket::new(0, Direction::Cw, 10);
        b.balancing = true;
        b.total_work = 10;
        let mut l = Ledger {
            accepted_int: 1,
            accepted_frac: 1.0,
            ..Ledger::default()
        };
        let out = drop_balancing(&mut b, &mut l, 4); // target ceil(10/4) = 3
        assert_eq!(out.int, 2);
        assert_eq!(l.accepted_int, 3);
    }

    #[test]
    fn split_conserves_jobs_and_shadow() {
        let mut cw = Bucket::new(2, Direction::Cw, 11);
        let ccw = cw.split_for_bidirectional();
        assert_eq!(cw.jobs + ccw.jobs, 11);
        assert_eq!(cw.jobs, 6); // odd job stays clockwise
        assert_eq!(ccw.dir, Direction::Ccw);
        assert!((cw.frac + ccw.frac - 11.0).abs() < 1e-12);
        assert_eq!(ccw.origin, 2);
    }

    #[test]
    fn payload_reports_whole_jobs() {
        let b = Bucket::new(0, Direction::Cw, 7);
        assert_eq!(b.job_units(), 7);
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;

    #[test]
    fn second_lap_arms_the_spill() {
        let m = 4;
        let mut b = Bucket::new(0, Direction::Cw, 10);
        for _ in 0..(2 * m - 1) {
            b.arrive(0, m);
        }
        assert!(b.balancing);
        assert_eq!(b.spill, 0, "first balancing lap must not spill");
        b.arrive(0, m); // hop 2m
        assert_eq!(b.spill, 10u64.div_ceil(4));
    }

    #[test]
    fn spill_drops_regardless_of_saturated_ledger() {
        let m = 4;
        let mut b = Bucket::new(0, Direction::Cw, 7);
        b.balancing = true;
        b.total_work = 7;
        b.spill = 2;
        // Ledger already far above the average target.
        let mut l = Ledger {
            accepted_int: 100,
            accepted_frac: 100.0,
            ..Ledger::default()
        };
        let out = drop_balancing(&mut b, &mut l, m);
        assert_eq!(out.int, 2, "spill must bypass the average-load target");
    }
}
