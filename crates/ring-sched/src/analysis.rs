//! The worst-case analysis constants of §3–§4.
//!
//! The Basic Algorithm tops processors up to `c·sqrt(work seen)`. Its
//! bucket-emptying time is `α·L` with `α = 2/c + 1/c²` (Lemma 4), and the
//! overall approximation factor is
//!
//! ```text
//! ρ(c) = α + c·sqrt(1 + α) = 1 + c + 2/c + 1/c²
//! ```
//!
//! The paper picks `c = 1.77`, giving `α ≈ 1.45` and `ρ ≈ 4.22`
//! (Theorem 1). The integral algorithm keeps the factor with `+2` additive
//! slack (Lemma 6, Corollary 1); arbitrary job sizes add one more factor
//! unit (Lemma 7, Corollary 2: 5.22).

/// The constant `c` chosen in the paper (§3, Theorem 1).
pub const C_PAPER: f64 = 1.77;

/// Worst-case approximation factor of the Basic/Integral algorithm with
/// `c = 1.77` (Theorem 1, Corollary 1).
pub const UNIT_BOUND: f64 = 4.22;

/// Worst-case approximation factor of the arbitrary-size algorithm
/// (Corollary 2).
pub const SIZED_BOUND: f64 = 5.22;

/// Worst-case factor of the capacitated-ring algorithm (§7, Theorem 3:
/// schedules of length at most `2L + 2`).
pub const CAPACITATED_BOUND: f64 = 2.0;

/// The distributed lower bound (§5, Theorem 2): no distributed algorithm is
/// a `ρ`-approximation for `ρ < 1.06`.
pub const DISTRIBUTED_LOWER_BOUND: f64 = 1.06;

/// Bucket travel coefficient `α(c) = 2/c + 1/c²` (equation (3)): a bucket
/// empties within `α·L` hops on any instance with optimum `L`.
///
/// # Panics
///
/// Panics if `c <= 0`.
pub fn alpha(c: f64) -> f64 {
    assert!(c > 0.0, "the drop-off constant must be positive");
    2.0 / c + 1.0 / (c * c)
}

/// Worst-case approximation factor `ρ(c) = 1 + c + 2/c + 1/c²` of the Basic
/// Algorithm as a function of the drop-off constant.
///
/// # Panics
///
/// Panics if `c <= 0`.
pub fn theory_factor(c: f64) -> f64 {
    assert!(c > 0.0, "the drop-off constant must be positive");
    1.0 + c + 2.0 / c + 1.0 / (c * c)
}

/// The wrap-around factor of Lemma 5: if a bucket laps the ring,
/// the schedule is at most `(1 + 2α)·L`.
pub fn wraparound_factor(c: f64) -> f64 {
    1.0 + 2.0 * alpha(c)
}

/// The `c` minimizing [`theory_factor`], found by ternary search (the paper
/// rounds it to 1.77).
pub fn optimal_c() -> f64 {
    let (mut lo, mut hi) = (0.5f64, 4.0f64);
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if theory_factor(m1) < theory_factor(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_at_paper_c() {
        // §3: "Choosing c = 1.77 sets α = 1.45".
        let a = alpha(C_PAPER);
        assert!((a - 1.45).abs() < 0.01, "alpha(1.77) = {a}");
    }

    #[test]
    fn factor_at_paper_c_is_4_22() {
        let rho = theory_factor(C_PAPER);
        assert!(rho <= UNIT_BOUND, "rho(1.77) = {rho}");
        assert!(rho > 4.2);
    }

    #[test]
    fn factor_identity() {
        // ρ = α + c·sqrt(1+α) must equal 1 + c + 2/c + 1/c².
        for &c in &[0.7, 1.0, 1.5, 1.77, 2.5, 3.3] {
            let a = alpha(c);
            let direct = a + c * (1.0 + a).sqrt();
            assert!(
                (direct - theory_factor(c)).abs() < 1e-9,
                "identity fails at c={c}"
            );
        }
    }

    #[test]
    fn optimal_c_is_near_paper_value() {
        let c = optimal_c();
        assert!((c - 1.77).abs() < 0.01, "optimal c = {c}");
        // The optimum really is a minimum.
        assert!(theory_factor(c) <= theory_factor(c - 0.05));
        assert!(theory_factor(c) <= theory_factor(c + 0.05));
    }

    #[test]
    fn wraparound_never_exceeds_main_bound_at_paper_c() {
        // Lemma 5: 1 + 2α = 3.89 < 4.22 at c = 1.77.
        let w = wraparound_factor(C_PAPER);
        assert!((w - 3.89).abs() < 0.01, "1 + 2α = {w}");
        assert!(w < theory_factor(C_PAPER));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn alpha_rejects_nonpositive_c() {
        let _ = alpha(0.0);
    }
}
