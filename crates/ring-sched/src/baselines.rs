//! Baseline policies the paper's algorithms are measured against.
//!
//! §2 stresses that ring scheduling is *not* load balancing: "just
//! balancing the load may lead to an excessively long schedule, and a
//! shorter one might be achieved by doing more of the work locally rather
//! than spending the time to send it far away". These baselines make that
//! claim measurable:
//!
//! * [`run_stay_local`] — no migration at all; makespan is the largest
//!   initial pile. The right answer when communication dominates.
//! * [`run_diffusion`] — classic neighborhood diffusion load balancing
//!   (each step, send one job toward each strictly lighter neighbor, the
//!   natural ring analog of first-order diffusion): drives loads toward
//!   uniform regardless of whether the transported jobs will ever repay
//!   their travel time.
//!
//! The experiments (and `examples/transaction_batches.rs`) show the bucket
//! algorithms beating diffusion exactly where the paper predicts: work
//! concentrated on a few processors of a large ring, where full balance is
//! a waste.

use ring_sim::{
    Direction, Engine, EngineConfig, Instance, Node, NodeCtx, Payload, RunReport, SimError, StepIo,
    TraceLevel,
};

/// Runs the no-migration baseline (schedule `S'` of Lemma 12). The
/// makespan is exactly `max_i x_i`; returned as a run for uniform
/// reporting.
pub fn run_stay_local(instance: &Instance) -> u64 {
    instance.max_load()
}

/// A diffusion message: some jobs plus the sender's current load (the
/// load estimate drives the next step's decisions, as in the §7
/// algorithm).
#[derive(Debug, Clone, Copy)]
pub struct DiffusionMsg {
    jobs: u64,
    load: u64,
}

impl Payload for DiffusionMsg {
    fn job_units(&self) -> u64 {
        self.jobs
    }
}

/// Per-processor diffusion state.
#[derive(Debug)]
pub struct DiffusionNode {
    jobs: u64,
    left: Option<u64>,
    right: Option<u64>,
}

impl Node for DiffusionNode {
    type Msg = DiffusionMsg;

    fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, DiffusionMsg>) -> u64 {
        for msg in io.inbox.from_ccw.iter() {
            self.jobs += msg.jobs;
            self.left = Some(msg.load);
        }
        for msg in io.inbox.from_cw.iter() {
            self.jobs += msg.jobs;
            self.right = Some(msg.load);
        }

        let mut work_done = 0;
        if self.jobs > 0 {
            self.jobs -= 1;
            work_done = 1;
        }

        // First-order diffusion: send toward each neighbor whose last
        // announced load is at least 2 below ours (the minimum gap at
        // which moving a job cannot overshoot the balance point).
        let mut send_cw = 0u64;
        let mut send_ccw = 0u64;
        if let Some(r) = self.right {
            if self.jobs >= r + 2 {
                send_cw = (self.jobs - r) / 2;
            }
        }
        if let Some(l) = self.left {
            if self.jobs.saturating_sub(send_cw) >= l + 2 {
                send_ccw = (self.jobs - send_cw - l) / 2;
            }
        }
        // Don't strip the processor below what it can chew on next step.
        let sendable = self.jobs.saturating_sub(1);
        send_cw = send_cw.min(sendable);
        send_ccw = send_ccw.min(sendable.saturating_sub(send_cw));
        self.jobs -= send_cw + send_ccw;

        io.out.push(
            Direction::Cw,
            DiffusionMsg {
                jobs: send_cw,
                load: self.jobs,
            },
        );
        io.out.push(
            Direction::Ccw,
            DiffusionMsg {
                jobs: send_ccw,
                load: self.jobs,
            },
        );
        work_done
    }

    fn pending_work(&self) -> u64 {
        self.jobs
    }
}

/// Runs the diffusion load balancer to completion and returns its report.
pub fn run_diffusion(instance: &Instance, trace: TraceLevel) -> Result<RunReport, SimError> {
    let nodes: Vec<DiffusionNode> = instance
        .loads()
        .iter()
        .map(|&x| DiffusionNode {
            jobs: x,
            left: None,
            right: None,
        })
        .collect();
    let cfg = EngineConfig {
        trace,
        ..EngineConfig::default()
    };
    Engine::new(nodes, instance.total_work(), cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{run_unit, UnitConfig};

    #[test]
    fn stay_local_is_max_load() {
        let inst = Instance::from_loads(vec![3, 9, 0, 4]);
        assert_eq!(run_stay_local(&inst), 9);
    }

    #[test]
    fn diffusion_conserves_work() {
        let inst = Instance::from_loads(vec![100, 0, 0, 20, 0, 0, 0, 5]);
        let report = run_diffusion(&inst, TraceLevel::Off).unwrap();
        assert_eq!(report.metrics.total_processed(), 125);
    }

    #[test]
    fn diffusion_beats_stay_local_on_imbalance() {
        let inst = Instance::concentrated(16, 0, 320);
        let report = run_diffusion(&inst, TraceLevel::Off).unwrap();
        assert!(
            report.makespan < 320,
            "diffusion makespan {}",
            report.makespan
        );
    }

    #[test]
    fn diffusion_is_no_op_on_balanced_load() {
        let inst = Instance::from_loads(vec![8; 10]);
        let report = run_diffusion(&inst, TraceLevel::Off).unwrap();
        assert_eq!(report.makespan, 8);
        assert_eq!(report.metrics.job_hops, 0);
    }

    #[test]
    fn bucket_algorithm_beats_diffusion_on_large_ring() {
        // The §2 claim: balancing toward uniformity overshoots when the
        // pile is deep relative to the optimum. 65536 jobs on one node of
        // a 1024-ring: OPT = 256, the uniform target is 64 per processor —
        // reaching it means shipping jobs hundreds of hops, far beyond the
        // sqrt-sized neighborhood the optimum uses.
        let inst = Instance::concentrated(1024, 0, 65_536);
        let diff = run_diffusion(&inst, TraceLevel::Off).unwrap();
        let c1 = run_unit(&inst, &UnitConfig::c1()).unwrap();
        let a2 = run_unit(&inst, &UnitConfig::a2()).unwrap();
        assert!(
            c1.makespan < diff.makespan,
            "C1 {} !< diffusion {}",
            c1.makespan,
            diff.makespan
        );
        assert!(a2.makespan < diff.makespan);
    }

    #[test]
    fn a2_beats_diffusion_across_shapes() {
        // The best paper algorithm dominates the load-balancing baseline
        // on every §6-style shape we tried.
        let shapes = vec![
            Instance::concentrated(512, 0, 4_096),
            ring_workloads_free::twin(512, 2_048),
            Instance::from_loads({
                let mut v = vec![1u64; 512];
                v[0] = 3_000;
                v
            }),
        ];
        for inst in shapes {
            let diff = run_diffusion(&inst, TraceLevel::Off).unwrap();
            let a2 = run_unit(&inst, &UnitConfig::a2()).unwrap();
            assert!(
                a2.makespan < diff.makespan,
                "A2 {} !< diffusion {}",
                a2.makespan,
                diff.makespan
            );
        }
    }

    /// Tiny local helper to avoid a dev-dependency cycle with
    /// `ring-workloads`.
    mod ring_workloads_free {
        use ring_sim::Instance;

        pub fn twin(m: usize, w: u64) -> Instance {
            let mut v = vec![0u64; m];
            v[0] = w;
            v[m / 2] = w;
            Instance::from_loads(v)
        }
    }

    #[test]
    fn diffusion_trace_validates() {
        let inst = Instance::from_loads(vec![40, 0, 0, 10]);
        let report = run_diffusion(&inst, TraceLevel::Full).unwrap();
        assert!(ring_sim::validate_run(&inst, &report).is_empty());
    }
}
