//! Uniform processor speed and link transit time (§4.3).
//!
//! The paper reduces both generalizations to the unit model:
//!
//! * processors of speed `s` — divide every processing time by `s` and run
//!   the unit-speed algorithm (Corollary 2 carries over);
//! * links of transit time `τ` — rescale time so a hop takes one step,
//!   which makes processors `τ×` faster per step; run the algorithm, then
//!   multiply the resulting schedule length by `τ`.
//!
//! Combined: an instance in the `(speed s, transit τ)` model maps to a unit
//! instance with processing times `p / (s·τ)`, and a unit-model makespan of
//! `M` maps back to `τ·M` original time units.
//!
//! We keep all arithmetic integral: the division must be exact. When it is
//! not, [`lift`] scales every job size by a constant first (which scales
//! the optimal makespan by the same constant and changes nothing about the
//! problem's structure), making the division exact by construction.

use crate::arbitrary::{run_arbitrary, ArbitraryConfig, ArbitraryRun};
use ring_sim::{SimError, SizedInstance};

/// Errors from the model reductions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleError {
    /// `speed` or `transit` was zero.
    ZeroParameter,
    /// Some job size is not divisible by `speed · transit`; call
    /// [`lift`]`(inst, speed · transit)` first.
    NotDivisible {
        /// The offending job size.
        size: u64,
        /// The required divisor.
        divisor: u64,
    },
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleError::ZeroParameter => write!(f, "speed and transit must be at least 1"),
            ScaleError::NotDivisible { size, divisor } => write!(
                f,
                "job size {size} is not divisible by speed·transit = {divisor}; \
                 lift the instance first"
            ),
        }
    }
}

impl std::error::Error for ScaleError {}

/// Multiplies every job size by `k` (an equivalence that scales the optimal
/// makespan by exactly `k` in the unit model).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn lift(instance: &SizedInstance, k: u64) -> SizedInstance {
    assert!(k >= 1, "lift factor must be at least 1");
    let sizes = (0..instance.num_processors())
        .map(|i| instance.jobs_at(i).iter().map(|j| j.size * k).collect())
        .collect();
    SizedInstance::from_sizes(sizes)
}

/// Converts an instance in the `(speed, transit)` model to the equivalent
/// unit-model instance (processing times `p / (speed·transit)`).
pub fn to_unit_model(
    instance: &SizedInstance,
    speed: u64,
    transit: u64,
) -> Result<SizedInstance, ScaleError> {
    if speed == 0 || transit == 0 {
        return Err(ScaleError::ZeroParameter);
    }
    let divisor = speed * transit;
    let mut sizes = Vec::with_capacity(instance.num_processors());
    for i in 0..instance.num_processors() {
        let mut here = Vec::with_capacity(instance.jobs_at(i).len());
        for j in instance.jobs_at(i) {
            if j.size % divisor != 0 {
                return Err(ScaleError::NotDivisible {
                    size: j.size,
                    divisor,
                });
            }
            here.push(j.size / divisor);
        }
        sizes.push(here);
    }
    Ok(SizedInstance::from_sizes(sizes))
}

/// Maps a unit-model makespan back to original time units.
pub fn from_unit_makespan(unit_makespan: u64, transit: u64) -> u64 {
    unit_makespan * transit
}

/// Outcome of a scaled run.
#[derive(Debug, Clone)]
pub struct ScaledRun {
    /// Schedule length in *original* time units.
    pub makespan: u64,
    /// The underlying unit-model run.
    pub unit_run: ArbitraryRun,
}

/// Errors from [`run_scaled`].
#[derive(Debug)]
pub enum ScaledRunError {
    /// Reduction failed.
    Scale(ScaleError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for ScaledRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaledRunError::Scale(e) => write!(f, "{e}"),
            ScaledRunError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScaledRunError {}

/// Runs the arbitrary-size algorithm on a `(speed, transit)` instance by
/// reduction to the unit model (§4.3).
pub fn run_scaled(
    instance: &SizedInstance,
    speed: u64,
    transit: u64,
    cfg: &ArbitraryConfig,
) -> Result<ScaledRun, ScaledRunError> {
    let unit = to_unit_model(instance, speed, transit).map_err(ScaledRunError::Scale)?;
    let unit_run = run_arbitrary(&unit, cfg).map_err(ScaledRunError::Sim)?;
    Ok(ScaledRun {
        makespan: from_unit_makespan(unit_run.makespan, transit),
        unit_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(sizes: Vec<Vec<u64>>) -> SizedInstance {
        SizedInstance::from_sizes(sizes)
    }

    #[test]
    fn lift_scales_sizes() {
        let i = inst(vec![vec![2, 3], vec![5]]);
        let l = lift(&i, 4);
        assert_eq!(l.work_vector(), vec![20, 20]);
        assert_eq!(l.p_max(), 20);
    }

    #[test]
    fn to_unit_model_divides_exactly() {
        let i = inst(vec![vec![6, 12], vec![18]]);
        let u = to_unit_model(&i, 2, 3).unwrap();
        assert_eq!(u.work_vector(), vec![1 + 2, 3]);
    }

    #[test]
    fn to_unit_model_rejects_indivisible() {
        let i = inst(vec![vec![5]]);
        let err = to_unit_model(&i, 2, 1).unwrap_err();
        assert_eq!(
            err,
            ScaleError::NotDivisible {
                size: 5,
                divisor: 2
            }
        );
    }

    #[test]
    fn zero_parameters_rejected() {
        let i = inst(vec![vec![4]]);
        assert_eq!(
            to_unit_model(&i, 0, 1).unwrap_err(),
            ScaleError::ZeroParameter
        );
        assert_eq!(
            to_unit_model(&i, 1, 0).unwrap_err(),
            ScaleError::ZeroParameter
        );
    }

    #[test]
    fn speed_s_divides_makespan_roughly_by_s() {
        // One heavy pile; speed 4 processors finish ~4x faster.
        let mut sizes = vec![vec![]; 16];
        sizes[0] = vec![16; 25]; // 400 units of work
        let slow = inst(sizes);
        let cfg = ArbitraryConfig::default();
        let unit = run_arbitrary(&slow, &cfg).unwrap();
        let fast = run_scaled(&slow, 4, 1, &cfg).unwrap();
        // Processing shrinks 4x but communication hops do not, so the
        // speedup is between 1x and 4x, strictly better than no speedup.
        assert!(
            fast.makespan < unit.makespan,
            "{} vs {}",
            fast.makespan,
            unit.makespan
        );
        assert!(
            fast.makespan >= unit.makespan / 4,
            "{} vs {}",
            fast.makespan,
            unit.makespan
        );
    }

    #[test]
    fn transit_tau_multiplies_makespan_back() {
        let mut sizes = vec![vec![]; 8];
        sizes[2] = vec![6; 10];
        let i = inst(sizes);
        let cfg = ArbitraryConfig::default();
        let run = run_scaled(&i, 1, 2, &cfg).unwrap();
        // Unit model has sizes 3; makespan maps back as 2x the unit one.
        assert_eq!(run.makespan, 2 * run.unit_run.makespan);
        assert!(run.makespan > 0);
    }

    #[test]
    fn lift_then_scale_roundtrips() {
        let i = inst(vec![vec![5, 7], vec![1]]);
        let lifted = lift(&i, 6);
        let u = to_unit_model(&lifted, 2, 3).unwrap();
        assert_eq!(u.work_vector(), i.work_vector());
    }
}
