//! The Basic (fractional) Algorithm of §3.
//!
//! This is the analysis-friendly version in which work is infinitely
//! divisible. Every processor emits a bucket at time 0; a bucket from
//! processor `i` travelling clockwise tops each processor `j` it visits up
//! to `c · sqrt(x_i + … + x_j)` — a quantity tied to the Lemma 1 lower
//! bound. Every processor with backlog processes one unit per step. If a
//! bucket laps the ring (the Lemma 5 case), it has seen the whole instance
//! and switches to *balancing mode*, topping processors up to the average
//! load `n/m`.
//!
//! The integral algorithms in [`crate::unit`] are defined as a rounding of
//! this algorithm; this standalone implementation exists so that
//!
//! * Lemma 4 / Theorem 1 can be checked directly against exact optima,
//! * the drop-off constant `c` can be swept (ablation; the paper fixes
//!   `c = 1.77`),
//! * the integral runs can be differentially tested against their
//!   fractional shadow (Lemma 6: within +2).

use crate::{analysis::C_PAPER, EPS};
use ring_sim::{Direction, Instance};

/// Configuration for a fractional run.
#[derive(Debug, Clone, Copy)]
pub struct FractionalConfig {
    /// Drop-off constant `c` (paper: 1.77).
    pub c: f64,
    /// Send half of each bucket in each direction (the "2" variants of §6).
    pub bidirectional: bool,
}

impl Default for FractionalConfig {
    fn default() -> Self {
        FractionalConfig {
            c: C_PAPER,
            bidirectional: false,
        }
    }
}

/// Outcome of a fractional run.
#[derive(Debug, Clone)]
pub struct FractionalRun {
    /// Completion time of the last unit of work (fractional: processors
    /// finish partway through a step).
    pub makespan: f64,
    /// The largest number of hops any bucket travelled.
    pub max_bucket_travel: u64,
    /// Whether any bucket lapped the ring and entered balancing mode
    /// (the Lemma 5 case).
    pub wrapped: bool,
    /// Total work accepted (and processed) by each processor.
    pub assigned: Vec<f64>,
    /// Hops travelled by the bucket originating at each processor (0 for
    /// processors that sent no bucket; the max of both halves for
    /// bidirectional runs). Used to check Lemma 3/4 travel claims.
    pub travel_per_origin: Vec<u64>,
}

#[derive(Debug)]
struct FracBucket {
    origin: usize,
    pos: usize,
    dir: Direction,
    content: f64,
    /// Work originating on the processors this bucket has visited
    /// (including its origin).
    seen: f64,
    hops: u64,
    balancing: bool,
}

/// Runs the Basic Algorithm.
///
/// ```
/// use ring_sim::Instance;
/// use ring_sched::fractional::{run_fractional, FractionalConfig};
///
/// let inst = Instance::concentrated(100, 0, 900);
/// let run = run_fractional(&inst, &FractionalConfig::default());
/// // OPT = 30; Theorem 1 bounds the fractional algorithm by 4.22x.
/// assert!(run.makespan <= 4.22 * 30.0);
/// ```
///
/// # Panics
///
/// Panics if `cfg.c <= 0`.
pub fn run_fractional(instance: &Instance, cfg: &FractionalConfig) -> FractionalRun {
    assert!(cfg.c > 0.0, "the drop-off constant must be positive");
    let m = instance.num_processors();
    let topo = instance.topology();
    let n = instance.total_work() as f64;
    let mut accepted = vec![0f64; m];
    let mut backlog = vec![0f64; m];
    let mut max_travel = 0u64;
    let mut wrapped = false;

    let mut travel_per_origin = vec![0u64; m];
    if n == 0.0 {
        return FractionalRun {
            makespan: 0.0,
            max_bucket_travel: 0,
            wrapped: false,
            assigned: accepted,
            travel_per_origin,
        };
    }

    // Drop-off rule shared by origin drops and travelling drops.
    let drop = |b: &mut FracBucket, accepted: &mut [f64], backlog: &mut [f64], n: f64, m: usize| {
        let target = if b.balancing {
            n / m as f64
        } else {
            cfg.c * b.seen.sqrt()
        };
        let d = (target - accepted[b.pos]).clamp(0.0, b.content);
        if d > 0.0 {
            accepted[b.pos] += d;
            backlog[b.pos] += d;
            b.content -= d;
            if b.content < EPS {
                b.content = 0.0;
            }
        }
    };

    // t = 0: every processor packs its jobs into a bucket, the bucket drops
    // the origin's share, and the remainder departs.
    let mut buckets: Vec<FracBucket> = Vec::with_capacity(2 * m);
    for i in 0..m {
        let x = instance.load(i) as f64;
        if x <= 0.0 {
            continue;
        }
        let mut b = FracBucket {
            origin: i,
            pos: i,
            dir: Direction::Cw,
            content: x,
            seen: x,
            hops: 0,
            balancing: false,
        };
        drop(&mut b, &mut accepted, &mut backlog, n, m);
        if b.content > 0.0 {
            if cfg.bidirectional {
                let half = b.content / 2.0;
                buckets.push(FracBucket {
                    origin: i,
                    pos: i,
                    dir: Direction::Ccw,
                    content: half,
                    seen: x,
                    hops: 0,
                    balancing: false,
                });
                b.content = half;
            }
            buckets.push(b);
        }
    }

    let mut t = 0u64;
    loop {
        // Termination check *before* this step's processing: if no bucket
        // holds work, node `i` finishes at `t + backlog_i`.
        if buckets.is_empty() {
            let makespan = backlog.iter().map(|&b| t as f64 + b).fold(0.0f64, f64::max);
            return FractionalRun {
                makespan,
                max_bucket_travel: max_travel,
                wrapped,
                assigned: accepted,
                travel_per_origin,
            };
        }

        // Everyone with backlog processes one unit during step t.
        for b in backlog.iter_mut() {
            *b = (*b - 1.0).max(0.0);
        }
        t += 1;

        // Buckets move one hop and drop at the processor they arrive at
        // (arrival at time t; that processor can use the work from step t
        // onwards, which the backlog ordering above realizes).
        for b in buckets.iter_mut() {
            b.pos = topo.neighbor(b.pos, b.dir);
            b.hops += 1;
            max_travel = max_travel.max(b.hops);
            travel_per_origin[b.origin] = travel_per_origin[b.origin].max(b.hops);
            if !b.balancing {
                if b.hops >= m as u64 {
                    // Back at the origin having seen every processor: the
                    // Lemma 5 modification.
                    b.balancing = true;
                    wrapped = true;
                } else {
                    b.seen += instance.load(b.pos) as f64;
                }
            }
            drop(b, &mut accepted, &mut backlog, n, m);
        }
        buckets.retain(|b| b.content > 0.0);

        // Safety valve: the algorithm provably terminates, but a bug should
        // fail loudly rather than spin.
        assert!(
            t <= 8 * (n as u64 + m as u64) + 64,
            "fractional simulation failed to terminate (bug)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{alpha, theory_factor};

    #[test]
    fn empty_instance() {
        let run = run_fractional(&Instance::empty(8), &FractionalConfig::default());
        assert_eq!(run.makespan, 0.0);
        assert!(!run.wrapped);
    }

    #[test]
    fn single_processor_keeps_all_work() {
        let inst = Instance::from_loads(vec![10]);
        let run = run_fractional(&inst, &FractionalConfig::default());
        assert!(
            (run.makespan - 10.0).abs() < 1e-6,
            "makespan {}",
            run.makespan
        );
    }

    #[test]
    fn work_is_conserved() {
        let inst = Instance::from_loads(vec![50, 0, 3, 0, 0, 17, 1, 0]);
        let run = run_fractional(&inst, &FractionalConfig::default());
        let total: f64 = run.assigned.iter().sum();
        assert!((total - 71.0).abs() < 1e-6);
    }

    #[test]
    fn concentrated_beats_staying_local() {
        let inst = Instance::concentrated(64, 0, 1024);
        let run = run_fractional(&inst, &FractionalConfig::default());
        // sqrt(1024) = 32 is optimal; staying local costs 1024.
        assert!(run.makespan < 200.0, "makespan {}", run.makespan);
        assert!(run.makespan >= 32.0);
    }

    #[test]
    fn respects_theorem1_on_adversary_instance() {
        // Instance J from §3: x_1 = L, x_2 = L², x_i = L. Its optimum is
        // >= L by construction (the k=1 window on x_2 gives L). Theorem 1:
        // makespan <= 4.22 · OPT. We check the (weaker, concrete) claim
        // makespan <= rho(c) · L_lemma1 + slack, where L_lemma1 is the
        // Lemma 1 bound the construction is calibrated to.
        let l = 20u64;
        let m = 512usize;
        let mut loads = vec![0u64; m];
        loads[0] = l;
        loads[1] = l * l;
        for x in loads.iter_mut().take(200).skip(2) {
            *x = l;
        }
        let inst = Instance::from_loads(loads);
        let run = run_fractional(&inst, &FractionalConfig::default());
        let lower = ring_opt::lemma1_lower_bound(&inst) as f64;
        assert!(lower >= l as f64);
        assert!(
            run.makespan <= theory_factor(C_PAPER) * lower + 2.0,
            "makespan {} vs bound {}",
            run.makespan,
            theory_factor(C_PAPER) * lower
        );
    }

    #[test]
    fn bucket_travel_bounded_by_alpha_l() {
        // Lemma 4: no bucket travels more than alpha * L hops (plus the lap
        // case). Use a single concentrated pile, where L = sqrt(n).
        let inst = Instance::concentrated(1000, 0, 10_000);
        let run = run_fractional(&inst, &FractionalConfig::default());
        let l = 100.0; // sqrt(10_000)
        assert!(!run.wrapped);
        assert!(
            (run.max_bucket_travel as f64) <= alpha(C_PAPER) * l + 2.0,
            "travel {} vs alpha*L {}",
            run.max_bucket_travel,
            alpha(C_PAPER) * l
        );
    }

    #[test]
    fn wraparound_engages_on_small_rings() {
        let inst = Instance::concentrated(4, 0, 10_000);
        let run = run_fractional(&inst, &FractionalConfig::default());
        assert!(run.wrapped);
        // After balancing, the schedule is near n/m plus travel time.
        assert!(run.makespan <= 10_000.0 / 4.0 + 2.0 * 4.0 + 2.0);
    }

    #[test]
    fn bidirectional_never_much_worse() {
        let inst = Instance::concentrated(128, 5, 2048);
        let uni = run_fractional(&inst, &FractionalConfig::default());
        let bi = run_fractional(
            &inst,
            &FractionalConfig {
                bidirectional: true,
                ..FractionalConfig::default()
            },
        );
        // Bidirectional splits load both ways; on a symmetric instance it
        // should be at least as good.
        assert!(bi.makespan <= uni.makespan + 1.0);
    }

    #[test]
    fn larger_c_keeps_more_work_near_origin() {
        let inst = Instance::concentrated(256, 0, 4096);
        let tight = run_fractional(
            &inst,
            &FractionalConfig {
                c: 3.0,
                ..FractionalConfig::default()
            },
        );
        let loose = run_fractional(
            &inst,
            &FractionalConfig {
                c: 0.8,
                ..FractionalConfig::default()
            },
        );
        assert!(tight.max_bucket_travel < loose.max_bucket_travel);
    }

    #[test]
    fn uniform_instance_stays_local() {
        // Every processor already holds >= its target, so buckets drop
        // everything at the origin... except the origin keeps only
        // c*sqrt(x); the remainder spreads. Check only conservation and a
        // sane makespan (>= mean load).
        let inst = Instance::from_loads(vec![9; 16]);
        let run = run_fractional(&inst, &FractionalConfig::default());
        assert!(run.makespan >= 9.0 - 1e-9);
        let total: f64 = run.assigned.iter().sum();
        assert!((total - 144.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod lemma3_tests {
    use super::*;

    /// Builds the §3 adversary instance for a chosen x₁ (our processor 0):
    /// if x₁ ≤ L the adversary sets W_k = M_{k-1} (so x₂ = L², then L per
    /// processor); if x₁ > L, W_k = M_k − x₁.
    fn adversary_with_x1(m: usize, l: u64, k: usize, x1: u64) -> Instance {
        let mut v = vec![0u64; m];
        v[0] = x1;
        if x1 <= l {
            v[1] = l * l;
        } else {
            v[1] = l * l + l - x1.min(l * l + l);
        }
        for x in v.iter_mut().take(k).skip(2) {
            *x = l;
        }
        Instance::from_loads(v)
    }

    #[test]
    fn lemma3_x1_equals_l_maximizes_bucket_travel() {
        // Lemma 3: among the adversary's choices, x₁ = L sends bucket B₁
        // the farthest.
        let (m, l, k) = (600usize, 20u64, 300usize);
        let travel = |x1: u64| {
            let inst = adversary_with_x1(m, l, k, x1);
            run_fractional(&inst, &FractionalConfig::default()).travel_per_origin[0]
        };
        // Lemma 3 is a statement about the idealized telescoping bound; in
        // the full simulation the other buckets' dynamics add ±1 hop of
        // noise around it.
        let at_l = travel(l);
        for other in [l / 4, l / 2, 2 * l, 4 * l] {
            assert!(
                travel(other) <= at_l + 1,
                "x1={other} travels {} > {} + 1 at x1=L",
                travel(other),
                at_l
            );
        }
        // And the effect is real: far-off choices travel strictly less.
        assert!(travel(l / 4) < at_l);
    }

    #[test]
    fn travel_per_origin_is_populated() {
        let inst = Instance::from_loads(vec![100, 0, 0, 0, 0, 0, 0, 0]);
        let run = run_fractional(&inst, &FractionalConfig::default());
        assert!(run.travel_per_origin[0] > 0);
        assert_eq!(run.travel_per_origin[1], 0);
        assert_eq!(
            run.travel_per_origin.iter().copied().max().unwrap(),
            run.max_bucket_travel
        );
    }
}
