//! Topology-generic scheduling policies for the fabric engine.
//!
//! Two first-class non-ring policies, plus run helpers:
//!
//! * [`DiffusionNode`] — nearest-neighbor load diffusion for *any*
//!   topology: each node announces its backlog over every port and pushes
//!   half of any ≥ 2-unit gap toward a poorer neighbor. On a ring this is
//!   a coarse cousin of the §7 algorithm (no unit-capacity discipline);
//!   on hierarchies and tori it is the natural local balancer, and its
//!   convergence time scales with the topology diameter — which is the
//!   whole point of the ring-vs-torus-vs-clique comparison in
//!   EXPERIMENTS.md.
//! * [`CliqueNode`] — the congested-clique batch scheduler. The clique's
//!   one-hop metric makes global balancing a constant-round affair, but
//!   the congested-clique model restricts every node to O(n) words per
//!   round. The scheduler fits: round 0, every node reports its load to a
//!   coordinator (n − 1 words in at node 0); round 1, the coordinator
//!   computes the average and grants each surplus node a recipient list
//!   (O(n) words out in total); round 2, surplus nodes ship jobs one hop
//!   to their assigned recipients. Every node processes one unit per step
//!   throughout, so the redistribution rounds are never idle.
//!
//! Both policies implement fabric checkpointing, so the workspace
//! equivalence battery can pause, snapshot, and resume them across
//! executors and shard counts.

use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder, Persist};
use ring_sim::{
    AnyTopology, EngineConfig, Fabric, FabricCtx, FabricNode, FabricOutbox, Payload, RunReport,
    SimError, Topology,
};

/// A message between fabric policy nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricMsg {
    /// Job payload on the move.
    Jobs(u64),
    /// "I currently hold this many unprocessed units" (control).
    Load(u64),
    /// Coordinator grant: ship the given units to each listed node
    /// (control; the congested-clique round-1 message).
    Grants(Vec<(usize, u64)>),
}

impl Payload for FabricMsg {
    fn job_units(&self) -> u64 {
        match self {
            FabricMsg::Jobs(u) => *u,
            FabricMsg::Load(_) | FabricMsg::Grants(_) => 0,
        }
    }
}

impl Persist for FabricMsg {
    fn save(&self, enc: &mut Encoder) {
        match self {
            FabricMsg::Jobs(u) => {
                enc.u8(0);
                enc.u64(*u);
            }
            FabricMsg::Load(x) => {
                enc.u8(1);
                enc.u64(*x);
            }
            FabricMsg::Grants(grants) => {
                enc.u8(2);
                enc.usize(grants.len());
                for (dest, units) in grants {
                    enc.usize(*dest);
                    enc.u64(*units);
                }
            }
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.u8()? {
            0 => Ok(FabricMsg::Jobs(dec.u64()?)),
            1 => Ok(FabricMsg::Load(dec.u64()?)),
            2 => {
                let n = dec.usize()?;
                if n > 1 << 24 {
                    return Err(CheckpointError::Corrupt("grant list implausibly long"));
                }
                let mut grants = Vec::with_capacity(n);
                for _ in 0..n {
                    let dest = dec.usize()?;
                    let units = dec.u64()?;
                    grants.push((dest, units));
                }
                Ok(FabricMsg::Grants(grants))
            }
            _ => Err(CheckpointError::Corrupt("bad fabric message tag")),
        }
    }
}

/// Nearest-neighbor diffusion on an arbitrary topology.
///
/// Per step: absorb arrivals, process one unit, then for each port in
/// ascending order push `gap / 2` units toward any neighbor whose last
/// announced backlog trails ours by at least 2, and re-announce our
/// backlog on every port whenever it changed. Purely local, deterministic,
/// and size-oblivious — the fabric analogue of the paper's "use only
/// local information" discipline.
#[derive(Debug, Clone)]
pub struct DiffusionNode {
    backlog: u64,
    /// Last load heard per port (`u64::MAX` = never heard).
    est: Vec<u64>,
    /// Last backlog we announced (`None` = never announced).
    announced: Option<u64>,
}

impl DiffusionNode {
    /// One node holding `backlog` units, with one estimate slot per port.
    pub fn new(backlog: u64, degree: usize) -> Self {
        DiffusionNode {
            backlog,
            est: vec![u64::MAX; degree],
            announced: None,
        }
    }

    /// Builds the whole fleet from per-node loads.
    pub fn fleet(loads: &[u64], topo: &AnyTopology) -> Vec<DiffusionNode> {
        assert_eq!(loads.len(), topo.len(), "one load per node");
        loads
            .iter()
            .enumerate()
            .map(|(i, &x)| DiffusionNode::new(x, topo.degree(i)))
            .collect()
    }

    /// Units currently resident (tests / diagnostics).
    pub fn backlog(&self) -> u64 {
        self.backlog
    }
}

impl FabricNode for DiffusionNode {
    type Msg = FabricMsg;

    fn on_step(
        &mut self,
        _ctx: &FabricCtx<'_>,
        inbox: &mut Vec<(usize, FabricMsg)>,
        out: &mut FabricOutbox<'_, FabricMsg>,
    ) -> u64 {
        for (port, msg) in inbox.drain(..) {
            match msg {
                FabricMsg::Jobs(u) => self.backlog += u,
                FabricMsg::Load(x) => self.est[port] = x,
                FabricMsg::Grants(_) => unreachable!("diffusion uses no coordinator"),
            }
        }
        let work = if self.backlog > 0 {
            self.backlog -= 1;
            1
        } else {
            0
        };
        for port in 0..self.est.len() {
            let est = self.est[port];
            if est != u64::MAX && self.backlog > est && self.backlog - est >= 2 {
                let give = (self.backlog - est) / 2;
                self.backlog -= give;
                out.push(port, FabricMsg::Jobs(give));
            }
        }
        if self.announced != Some(self.backlog) {
            self.announced = Some(self.backlog);
            for port in 0..self.est.len() {
                out.push(port, FabricMsg::Load(self.backlog));
            }
        }
        work
    }

    fn pending_work(&self) -> u64 {
        self.backlog
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        enc.u64(self.backlog);
        enc.usize(self.est.len());
        for &e in &self.est {
            enc.u64(e);
        }
        match self.announced {
            Some(x) => {
                enc.bool(true);
                enc.u64(x);
            }
            None => enc.bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.backlog = dec.u64()?;
        let n = dec.usize()?;
        if n != self.est.len() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot node has degree {n}, restoring into degree {}",
                self.est.len()
            )));
        }
        for e in self.est.iter_mut() {
            *e = dec.u64()?;
        }
        self.announced = if dec.bool()? { Some(dec.u64()?) } else { None };
        Ok(())
    }
}

/// The congested-clique batch scheduler (see the module docs for the
/// three-round protocol). Node 0 is the coordinator; phases are keyed on
/// global time, which every node shares in the synchronous model.
#[derive(Debug, Clone)]
pub struct CliqueNode {
    backlog: u64,
}

impl CliqueNode {
    /// One node holding `backlog` units.
    pub fn new(backlog: u64) -> Self {
        CliqueNode { backlog }
    }

    /// Builds the whole fleet from per-node loads.
    pub fn fleet(loads: &[u64]) -> Vec<CliqueNode> {
        loads.iter().map(|&x| CliqueNode::new(x)).collect()
    }

    /// Units currently resident (tests / diagnostics).
    pub fn backlog(&self) -> u64 {
        self.backlog
    }
}

/// Port of node `v` facing node `u` on a clique (`u != v`).
fn clique_port(v: usize, u: usize) -> usize {
    if u < v {
        u
    } else {
        u - 1
    }
}

impl FabricNode for CliqueNode {
    type Msg = FabricMsg;

    fn on_step(
        &mut self,
        ctx: &FabricCtx<'_>,
        inbox: &mut Vec<(usize, FabricMsg)>,
        out: &mut FabricOutbox<'_, FabricMsg>,
    ) -> u64 {
        let n = ctx.topo.len();
        // Absorb arrivals; remember control messages for this step's phase.
        let mut reports: Vec<(usize, u64)> = Vec::new();
        let mut grants: Vec<(usize, u64)> = Vec::new();
        for (port, msg) in inbox.drain(..) {
            match msg {
                FabricMsg::Jobs(u) => self.backlog += u,
                FabricMsg::Load(x) => {
                    reports.push((ctx.topo.peer(ctx.id, port), x));
                }
                FabricMsg::Grants(list) => grants.extend(list),
            }
        }
        let work = if self.backlog > 0 {
            self.backlog -= 1;
            1
        } else {
            0
        };
        match ctx.t {
            // Round 0: everyone reports its (post-processing) load to the
            // coordinator — one word per node, n − 1 words into node 0.
            0 => {
                if ctx.id != 0 && n > 1 {
                    out.push(clique_port(ctx.id, 0), FabricMsg::Load(self.backlog));
                }
            }
            // Round 1: the coordinator averages the reported loads (plus
            // its own) and grants each surplus node a recipient list.
            // Its own surplus ships immediately — one hop, like any other.
            1 => {
                if ctx.id == 0 && n > 1 {
                    reports.push((0, self.backlog));
                    reports.sort_unstable_by_key(|&(v, _)| v);
                    let total: u64 = reports.iter().map(|&(_, x)| x).sum();
                    let avg = total.div_ceil(n as u64);
                    let mut deficits: Vec<(usize, u64)> = reports
                        .iter()
                        .filter(|&&(_, x)| x < avg)
                        .map(|&(v, x)| (v, avg - x))
                        .collect();
                    let mut next_deficit = 0usize;
                    for &(v, x) in reports.iter().filter(|&&(_, x)| x > avg) {
                        let mut surplus = x - avg;
                        let mut list: Vec<(usize, u64)> = Vec::new();
                        while surplus > 0 && next_deficit < deficits.len() {
                            let (dest, need) = &mut deficits[next_deficit];
                            let give = surplus.min(*need);
                            list.push((*dest, give));
                            surplus -= give;
                            *need -= give;
                            if *need == 0 {
                                next_deficit += 1;
                            }
                        }
                        if list.is_empty() {
                            continue;
                        }
                        if v == 0 {
                            for (dest, units) in list {
                                let ship = units.min(self.backlog);
                                if ship > 0 {
                                    self.backlog -= ship;
                                    out.push(clique_port(0, dest), FabricMsg::Jobs(ship));
                                }
                            }
                        } else {
                            out.push(clique_port(0, v), FabricMsg::Grants(list));
                        }
                    }
                }
            }
            // Round 2: granted nodes ship jobs one hop, capped at what
            // they still hold (their estimate was one step stale).
            _ => {
                for (dest, units) in grants {
                    let ship = units.min(self.backlog);
                    if ship > 0 {
                        self.backlog -= ship;
                        out.push(clique_port(ctx.id, dest), FabricMsg::Jobs(ship));
                    }
                }
            }
        }
        work
    }

    fn pending_work(&self) -> u64 {
        self.backlog
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        enc.u64(self.backlog);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.backlog = dec.u64()?;
        Ok(())
    }
}

/// Which fabric policy to run on a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricAlgo {
    /// Nearest-neighbor diffusion ([`DiffusionNode`]) — any topology.
    Diffuse,
    /// The congested-clique batch scheduler ([`CliqueNode`]) — cliques
    /// only (it assumes the one-hop metric).
    Clique,
}

impl FabricAlgo {
    /// The scenario-DSL / CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FabricAlgo::Diffuse => "diffuse",
            FabricAlgo::Clique => "clique",
        }
    }

    /// Parses the scenario-DSL / CLI spelling.
    pub fn parse(s: &str) -> Result<FabricAlgo, String> {
        match s {
            "diffuse" => Ok(FabricAlgo::Diffuse),
            "clique" => Ok(FabricAlgo::Clique),
            other => Err(format!(
                "unknown fabric algorithm `{other}` (expected diffuse|clique)"
            )),
        }
    }
}

/// Runs a fabric policy over `loads` on `topo`: sequentially when
/// `shards` is `None`, via the parallel executor otherwise. The report is
/// bit-identical either way (the fabric engine's contract).
pub fn run_fabric(
    topo: &AnyTopology,
    loads: &[u64],
    algo: FabricAlgo,
    config: EngineConfig,
    shards: Option<usize>,
) -> Result<RunReport, SimError> {
    let total: u64 = loads.iter().sum();
    match algo {
        FabricAlgo::Diffuse => {
            let nodes = DiffusionNode::fleet(loads, topo);
            let mut fab = Fabric::new(topo.clone(), nodes, total, config);
            match shards {
                None => fab.run(),
                Some(s) => fab.par_run(s),
            }
        }
        FabricAlgo::Clique => {
            assert!(
                matches!(topo, AnyTopology::Clique(_)),
                "the clique scheduler assumes the one-hop metric"
            );
            let nodes = CliqueNode::fleet(loads);
            let mut fab = Fabric::new(topo.clone(), nodes, total, config);
            match shards {
                None => fab.run(),
                Some(s) => fab.par_run(s),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitated::{build_capacitated_nodes, run_capacitated};
    use ring_sim::{
        check_fabric_run, Fabric, Instance, LinkCapacity, ParStrategy, RingLift, TraceLevel,
    };

    fn full_cfg() -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        }
    }

    fn checked(topo: &AnyTopology, loads: &[u64], algo: FabricAlgo) -> RunReport {
        let report = run_fabric(topo, loads, algo, full_cfg(), None).unwrap();
        let violations = check_fabric_run(loads, topo, &report, None);
        assert!(violations.is_empty(), "{}: {violations:?}", topo.spec());
        assert_eq!(report.metrics.total_processed(), loads.iter().sum::<u64>());
        report
    }

    #[test]
    fn diffusion_drains_every_shape() {
        for spec in ["ring:8", "hier:3x4", "torus:4x4", "clique:10"] {
            let topo: AnyTopology = spec.parse().unwrap();
            let loads: Vec<u64> = (0..topo.len()).map(|i| ((i * 5 + 1) % 9) as u64).collect();
            checked(&topo, &loads, FabricAlgo::Diffuse);
        }
    }

    #[test]
    fn diffusion_spreads_a_hotspot() {
        // One node holds everything; diffusion must beat draining locally.
        let topo: AnyTopology = "torus:4x4".parse().unwrap();
        let mut loads = vec![0u64; topo.len()];
        loads[5] = 160;
        let report = checked(&topo, &loads, FabricAlgo::Diffuse);
        assert!(
            report.makespan < 160,
            "diffusion never exported (makespan {})",
            report.makespan
        );
        assert!(report.metrics.job_hops > 0);
    }

    #[test]
    fn clique_scheduler_balances_in_constant_rounds() {
        let topo: AnyTopology = "clique:16".parse().unwrap();
        let mut loads = vec![0u64; 16];
        loads[3] = 160; // avg 10
        let report = checked(&topo, &loads, FabricAlgo::Clique);
        // Redistribution takes 3 rounds; afterwards every node drains
        // ~avg units. Far below the 160-step local drain, and within a
        // small constant of the ceil(W/n) = 10 lower bound.
        assert!(
            report.makespan <= 16,
            "clique balancing too slow: makespan {}",
            report.makespan
        );
        assert!(report.makespan >= 10);
    }

    #[test]
    fn clique_scheduler_handles_coordinator_hotspot_and_tiny_cliques() {
        // The coordinator itself is the pile: it must ship its own
        // surplus (directly at round 1).
        let topo: AnyTopology = "clique:8".parse().unwrap();
        let mut loads = vec![0u64; 8];
        loads[0] = 80;
        let report = checked(&topo, &loads, FabricAlgo::Clique);
        assert!(report.makespan <= 14, "makespan {}", report.makespan);

        for spec in ["clique:1", "clique:2"] {
            let topo: AnyTopology = spec.parse().unwrap();
            let loads: Vec<u64> = (0..topo.len()).map(|i| 3 + i as u64).collect();
            checked(&topo, &loads, FabricAlgo::Clique);
        }
    }

    #[test]
    fn fabric_policies_run_identically_under_both_executors() {
        let cases = [
            ("hier:2x5", FabricAlgo::Diffuse),
            ("torus:3x5", FabricAlgo::Diffuse),
            ("clique:11", FabricAlgo::Clique),
        ];
        for (spec, algo) in cases {
            let topo: AnyTopology = spec.parse().unwrap();
            let loads: Vec<u64> = (0..topo.len()).map(|i| ((i * 3) % 8) as u64).collect();
            let seq = run_fabric(&topo, &loads, algo, full_cfg(), None).unwrap();
            for shards in [2, 4] {
                for strategy in [ParStrategy::Static, ParStrategy::Steal] {
                    let mut cfg = full_cfg();
                    cfg.par.strategy = Some(strategy);
                    let par = run_fabric(&topo, &loads, algo, cfg, Some(shards)).unwrap();
                    assert_eq!(seq, par, "{spec} {algo:?} shards={shards} {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn lifted_capacitated_matches_the_ring_engine() {
        // The §7 algorithm, lifted node-for-node onto the fabric via
        // RingLift, must schedule exactly as the ring engine does —
        // makespan, per-node processing, message counts, everything the
        // metrics can see.
        for loads in [
            vec![40, 0, 0, 0, 0, 0, 0, 0],
            vec![9, 1, 7, 0, 3, 5, 2, 8],
            vec![0, 0, 25, 0, 0, 25, 0, 0],
        ] {
            let inst = Instance::from_loads(loads.clone());
            let ring = run_capacitated(&inst, TraceLevel::Off).unwrap();

            let topo: AnyTopology = format!("ring:{}", loads.len()).parse().unwrap();
            let lifted: Vec<RingLift<_>> = build_capacitated_nodes(&inst)
                .into_iter()
                .map(RingLift::new)
                .collect();
            let cfg = EngineConfig {
                link_capacity: LinkCapacity::UnitJobs,
                ..EngineConfig::default()
            };
            let fab = Fabric::new(topo, lifted, inst.total_work(), cfg)
                .run()
                .unwrap();
            assert_eq!(ring.makespan, fab.makespan, "loads {loads:?}");
            assert_eq!(ring.report.metrics, fab.metrics, "loads {loads:?}");
        }
    }
}
