//! The capacitated-ring algorithm of §7 (Figure 1).
//!
//! Model: each link carries at most one job and one control message per
//! step. Each control message is just the sender's unprocessed job count,
//! so every processor knows its neighbors' loads *as of the previous step*.
//!
//! One step of processor `i` (Figure 1, verbatim):
//!
//! ```text
//! receive messages from neighbors i-1 and i+1
//! set left and right to the received counts
//! if j_i != 0: process a job, j_i -= 1
//! if j_i > 3 and right <= 1: pass a job to p_{i+1}, j_i -= 1
//! if j_i > 3 and left  <= 1: pass a job to p_{i-1}, j_i -= 1
//! tell neighbors that p_i has j_i jobs
//! ```
//!
//! Theorem 3: the schedule produced is at most `2L + 2` where `L` is the
//! optimal capacitated schedule length. The implementation also tracks the
//! invariants used in the proof (Lemma 11: once a processor first drops to
//! `j_i ≤ 1`, its load never exceeds 3 afterwards; Lemma 12: the maximum
//! load decreases every step) so tests can check them directly.
//!
//! At `t = 0` no counts have been received yet; neighbors are treated as
//! *unknown* and no jobs are passed (passing requires positive evidence
//! that the neighbor is nearly idle).

use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder, Persist};
use ring_sim::{
    Direction, Engine, EngineConfig, Instance, LinkCapacity, Node, NodeCtx, Payload, RunReport,
    SimError, StepIo, TraceLevel,
};

/// A message on a capacitated link: either one job or a load announcement.
///
/// The paper notes its Figure 1 description "can send two messages over a
/// link in one step; it is not hard to reduce this to one" — the
/// single-message mode realizes that reduction by piggybacking the count
/// on the job ([`CapMsg::JobWithCount`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapMsg {
    /// One unit job being migrated.
    Job,
    /// "I have this many unprocessed jobs" (sent every step).
    Count(u64),
    /// One job *and* the sender's count in a single message — the §7
    /// "reduce to one message" remark realized.
    JobWithCount(u64),
}

impl Payload for CapMsg {
    fn job_units(&self) -> u64 {
        match self {
            CapMsg::Job | CapMsg::JobWithCount(_) => 1,
            CapMsg::Count(_) => 0,
        }
    }
}

impl Persist for CapMsg {
    fn save(&self, enc: &mut Encoder) {
        match self {
            CapMsg::Job => enc.u8(0),
            CapMsg::Count(c) => {
                enc.u8(1);
                enc.u64(*c);
            }
            CapMsg::JobWithCount(c) => {
                enc.u8(2);
                enc.u64(*c);
            }
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.u8()? {
            0 => Ok(CapMsg::Job),
            1 => Ok(CapMsg::Count(dec.u64()?)),
            2 => Ok(CapMsg::JobWithCount(dec.u64()?)),
            _ => Err(CheckpointError::Corrupt("bad CapMsg tag")),
        }
    }
}

/// Per-processor state of the Figure 1 policy.
#[derive(Debug)]
pub struct CapacitatedNode {
    /// Piggyback the count on outgoing jobs so each link carries at most
    /// one message per direction per step.
    piggyback: bool,
    jobs: u64,
    /// Neighbor loads as of the previous step (`None` until first heard).
    left: Option<u64>,
    right: Option<u64>,
    /// Diagnostics for the Lemma 11 invariant: set once `jobs` first
    /// reaches ≤ 1, after which load must stay ≤ 3.
    reached_low: bool,
    /// Highest load observed after `reached_low` (must stay ≤ 3).
    pub max_load_after_low: u64,
    /// Lemma 12 diagnostic: this node's load at the end of each step is
    /// folded into the engine-level maximum by the test harness.
    processed: u64,
}

impl CapacitatedNode {
    fn new(x: u64) -> Self {
        Self::with_mode(x, false)
    }

    fn with_mode(x: u64, piggyback: bool) -> Self {
        CapacitatedNode {
            piggyback,
            jobs: x,
            left: None,
            right: None,
            reached_low: x <= 1,
            max_load_after_low: 0,
            processed: 0,
        }
    }

    /// Current unprocessed job count (for tests / the threaded executor).
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total jobs this node processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl Node for CapacitatedNode {
    type Msg = CapMsg;

    fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, CapMsg>) -> u64 {
        // Receive: jobs add to our pile; counts refresh neighbor estimates.
        // from_ccw = sent by the left (counterclockwise) neighbor.
        for msg in io.inbox.from_ccw.iter() {
            match msg {
                CapMsg::Job => self.jobs += 1,
                CapMsg::Count(c) => self.left = Some(*c),
                CapMsg::JobWithCount(c) => {
                    self.jobs += 1;
                    self.left = Some(*c);
                }
            }
        }
        for msg in io.inbox.from_cw.iter() {
            match msg {
                CapMsg::Job => self.jobs += 1,
                CapMsg::Count(c) => self.right = Some(*c),
                CapMsg::JobWithCount(c) => {
                    self.jobs += 1;
                    self.right = Some(*c);
                }
            }
        }

        let mut work_done = 0;
        if self.jobs > 0 {
            self.jobs -= 1;
            self.processed += 1;
            work_done = 1;
        }
        let mut passed_cw = false;
        let mut passed_ccw = false;
        if self.jobs > 3 && self.right.is_some_and(|r| r <= 1) {
            passed_cw = true;
            self.jobs -= 1;
        }
        if self.jobs > 3 && self.left.is_some_and(|l| l <= 1) {
            passed_ccw = true;
            self.jobs -= 1;
        }
        // Announce the post-step count; in piggyback mode the count rides
        // along on the job so each link direction carries one message.
        for (dir, passed) in [(Direction::Cw, passed_cw), (Direction::Ccw, passed_ccw)] {
            match (passed, self.piggyback) {
                (true, true) => io.out.push(dir, CapMsg::JobWithCount(self.jobs)),
                (true, false) => {
                    io.out.push(dir, CapMsg::Job);
                    io.out.push(dir, CapMsg::Count(self.jobs));
                }
                (false, _) => io.out.push(dir, CapMsg::Count(self.jobs)),
            }
        }

        // Invariant bookkeeping (Lemma 11b).
        if self.jobs <= 1 {
            self.reached_low = true;
        }
        if self.reached_low {
            self.max_load_after_low = self.max_load_after_low.max(self.jobs);
        }
        work_done
    }

    fn pending_work(&self) -> u64 {
        self.jobs
    }

    // `piggyback` is a message-layout choice (the two layouts schedule
    // identically), so it is rebuilt from configuration, not persisted.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        enc.u64(self.jobs);
        save_opt_count(enc, self.left);
        save_opt_count(enc, self.right);
        enc.bool(self.reached_low);
        enc.u64(self.max_load_after_low);
        enc.u64(self.processed);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.jobs = dec.u64()?;
        self.left = load_opt_count(dec)?;
        self.right = load_opt_count(dec)?;
        self.reached_low = dec.bool()?;
        self.max_load_after_low = dec.u64()?;
        self.processed = dec.u64()?;
        Ok(())
    }
}

fn save_opt_count(enc: &mut Encoder, v: Option<u64>) {
    match v {
        Some(c) => {
            enc.bool(true);
            enc.u64(c);
        }
        None => enc.bool(false),
    }
}

fn load_opt_count(dec: &mut Decoder<'_>) -> Result<Option<u64>, CheckpointError> {
    Ok(if dec.bool()? { Some(dec.u64()?) } else { None })
}

/// Outcome of a capacitated run.
#[derive(Debug, Clone)]
pub struct CapacitatedRun {
    /// Schedule length.
    pub makespan: u64,
    /// Engine report.
    pub report: RunReport,
    /// Jobs each processor ended up processing.
    pub processed: Vec<u64>,
    /// Largest load any processor held after first dropping to ≤ 1
    /// (Lemma 11b says this is at most 3).
    pub max_load_after_low: u64,
}

/// Builds the per-processor policy nodes — used by [`run_capacitated`] and
/// by alternative executors such as the threaded one in `ring-net`.
pub fn build_capacitated_nodes(instance: &Instance) -> Vec<CapacitatedNode> {
    instance
        .loads()
        .iter()
        .map(|&x| CapacitatedNode::new(x))
        .collect()
}

/// Builds nodes in single-message (piggyback) mode: at most one message
/// per link direction per step.
pub fn build_piggyback_nodes(instance: &Instance) -> Vec<CapacitatedNode> {
    instance
        .loads()
        .iter()
        .map(|&x| CapacitatedNode::with_mode(x, true))
        .collect()
}

/// Runs the single-message variant of the Figure 1 algorithm. The schedule
/// is step-for-step identical to [`run_capacitated`] (the information flow
/// is the same; only the framing changes), which the tests assert.
pub fn run_capacitated_piggyback(
    instance: &Instance,
    trace: TraceLevel,
) -> Result<CapacitatedRun, SimError> {
    let nodes = build_piggyback_nodes(instance);
    let cfg = EngineConfig {
        link_capacity: LinkCapacity::UnitJobs,
        trace,
        max_steps: Some(4 * (instance.total_work() + instance.num_processors() as u64) + 64),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, instance.total_work(), cfg);
    let report = engine.run()?;
    let nodes = engine.into_nodes();
    Ok(CapacitatedRun {
        makespan: report.makespan,
        processed: nodes.iter().map(|n| n.processed()).collect(),
        max_load_after_low: nodes
            .iter()
            .map(|n| n.max_load_after_low)
            .max()
            .unwrap_or(0),
        report,
    })
}

/// Runs the Figure 1 algorithm under the unit-capacity link model.
///
/// ```
/// use ring_sim::{Instance, TraceLevel};
/// use ring_sched::capacitated::run_capacitated;
///
/// let inst = Instance::concentrated(8, 0, 40);
/// let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
/// assert!(run.makespan < 40);             // beats staying local
/// assert!(run.max_load_after_low <= 3);   // Lemma 11b
/// ```
pub fn run_capacitated(instance: &Instance, trace: TraceLevel) -> Result<CapacitatedRun, SimError> {
    let nodes = build_capacitated_nodes(instance);
    let cfg = EngineConfig {
        link_capacity: LinkCapacity::UnitJobs,
        trace,
        // The schedule is at most 2L + 2 <= 2·max_load + 2, but a stuck run
        // should fail fast: cap generously by total work.
        max_steps: Some(4 * (instance.total_work() + instance.num_processors() as u64) + 64),
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, instance.total_work(), cfg);
    let report = engine.run()?;
    let nodes = engine.into_nodes();
    Ok(CapacitatedRun {
        makespan: report.makespan,
        processed: nodes.iter().map(|n| n.processed()).collect(),
        max_load_after_low: nodes
            .iter()
            .map(|n| n.max_load_after_low)
            .max()
            .unwrap_or(0),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance() {
        let run = run_capacitated(&Instance::empty(4), TraceLevel::Off).unwrap();
        assert_eq!(run.makespan, 0);
    }

    #[test]
    fn balanced_instance_never_passes() {
        // All processors equally loaded: nobody's neighbor is near-idle
        // until everyone is, so makespan equals the load exactly.
        let inst = Instance::from_loads(vec![10; 6]);
        let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
        assert_eq!(run.makespan, 10);
        assert_eq!(run.report.metrics.job_hops, 0);
    }

    #[test]
    fn passing_beats_staying_local() {
        // One heavy processor: S' (never pass) costs 60; the algorithm must
        // do strictly better by exporting to idle neighbors.
        let inst = Instance::concentrated(8, 0, 60);
        let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
        assert!(run.makespan < 60, "makespan {}", run.makespan);
        assert!(run.report.metrics.job_hops > 0);
    }

    #[test]
    fn lemma12_schedule_never_longer_than_no_passing() {
        for loads in [
            vec![60, 0, 0, 0, 0, 0, 0, 0],
            vec![10, 30, 0, 5, 0, 0, 20, 0],
            vec![7, 7, 7, 7],
            vec![100, 1, 1, 1, 1, 1],
        ] {
            let max = *loads.iter().max().unwrap();
            let inst = Instance::from_loads(loads);
            let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
            assert!(
                run.makespan <= max,
                "makespan {} > no-passing bound {max}",
                run.makespan
            );
        }
    }

    #[test]
    fn lemma11b_load_after_idle_stays_small() {
        let inst = Instance::from_loads(vec![50, 0, 0, 40, 0, 0, 0, 12, 0, 0]);
        let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
        assert!(
            run.max_load_after_low <= 3,
            "load rose to {} after first idle",
            run.max_load_after_low
        );
    }

    #[test]
    fn theorem3_on_small_instances() {
        // makespan <= 2L + 2 with L the exact capacitated optimum.
        for loads in [
            vec![20, 0, 0, 0, 0, 0],
            vec![9, 1, 0, 14, 0, 2],
            vec![30, 30, 0, 0, 0, 0, 0, 0],
        ] {
            let inst = Instance::from_loads(loads);
            let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
            let opt = ring_opt::optimum_capacitated(&inst, Some(run.makespan), &Default::default());
            assert!(opt.is_exact());
            assert!(
                run.makespan <= 2 * opt.value() + 2,
                "makespan {} vs 2·{}+2",
                run.makespan,
                opt.value()
            );
        }
    }

    #[test]
    fn work_is_conserved() {
        let inst = Instance::from_loads(vec![13, 0, 44, 2, 0, 0, 9]);
        let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
        let total: u64 = run.processed.iter().sum();
        assert_eq!(total, 68);
    }

    #[test]
    fn piggyback_mode_is_equivalent_and_sends_fewer_messages() {
        for loads in [
            vec![60, 0, 0, 0, 0, 0, 0, 0],
            vec![10, 30, 0, 5, 0, 0, 20, 0],
            vec![100, 1, 1, 1, 1, 1],
        ] {
            let inst = Instance::from_loads(loads);
            let two = run_capacitated(&inst, TraceLevel::Off).unwrap();
            let one = run_capacitated_piggyback(&inst, TraceLevel::Off).unwrap();
            assert_eq!(two.makespan, one.makespan);
            assert_eq!(two.processed, one.processed);
            assert!(one.report.metrics.messages_sent <= two.report.metrics.messages_sent);
        }
    }

    #[test]
    fn piggyback_sends_at_most_one_message_per_link_direction() {
        // messages per step <= 2m (one per direction per node).
        let inst = Instance::concentrated(10, 0, 120);
        let run = run_capacitated_piggyback(&inst, TraceLevel::Off).unwrap();
        let steps = run.report.metrics.steps;
        assert!(
            run.report.metrics.messages_sent <= steps * 2 * 10,
            "messages {} over {steps} steps",
            run.report.metrics.messages_sent
        );
    }

    #[test]
    fn respects_link_capacity_by_construction() {
        // The engine enforces UnitJobs capacity; a successful run proves the
        // policy never exceeded one job + one count per link direction.
        let inst = Instance::concentrated(12, 4, 200);
        let run = run_capacitated(&inst, TraceLevel::Off).unwrap();
        assert_eq!(run.processed.iter().sum::<u64>(), 200);
    }
}
