//! Online scheduling policies with known competitive ratios — the
//! comparison suite for the competitive-analysis harness.
//!
//! The six §6 bucket algorithms are *distributed* online algorithms: they
//! learn about work from passing buckets. This module adds two
//! *centralized* online policies from the follow-up literature (see
//! PAPERS.md), adapted to the ring's distance model, so the harness can
//! report ratios for algorithms whose competitive ratios are known:
//!
//! * [`OnlinePolicy::MigrationBudget`] — Albers–Hellwig scheduling with
//!   job migration: each arrival batch buys a migration allowance
//!   proportional to its size, spent rebalancing already-assigned (but
//!   unstarted) work away from the most loaded processor.
//! * [`OnlinePolicy::MultiList`] — Dwibedy–Mohanty's 2-competitive
//!   largest-job/least-loaded multi-list rule: within an arrival wave,
//!   batches are placed largest-first on the processor with the smallest
//!   resulting completion time.
//!
//! ## The ring adaptation (and why ratios stay ≥ 1)
//!
//! Both papers schedule on identical machines with free dispatch; a ring
//! charges one step per hop. The adaptation charges assignment of work
//! released at processor `p` at time `r` to processor `q` a start bound of
//! `r + dist(p, q)` in addition to `q`'s queue. Concretely, each processor
//! keeps a committed-finish time `f_q` (initially 0) and a unit assigned
//! to `q` executes in step `max(f_q, r + dist(p, q)) + 1`, updating `f_q`.
//! This is exactly a feasible schedule of the paper's *offline*
//! uncapacitated model — one unit per processor per step, one hop per
//! step, links uncontended — so the resulting makespan is never below the
//! exact offline optimum, and every empirical competitive ratio the
//! harness reports for these policies is a true ratio ≥ 1.
//!
//! Neither policy peeks at future arrivals: decisions for a wave at time
//! `t` read only the arrivals with `time ≤ t` (enforced by processing
//! waves in release order), which is what makes the measured number a
//! *competitive* ratio rather than an approximation factor.

use crate::dynamic::Arrival;

/// The online policies of this module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlinePolicy {
    /// Albers–Hellwig migration-budget scheduling: a batch of `s` jobs
    /// buys `⌊budget · s⌋` unit migrations, spent greedily moving queued
    /// units off the processor with the largest committed finish time.
    /// `budget = 0.0` degenerates to plain greedy least-finish placement.
    MigrationBudget {
        /// Migration allowance per released job (the paper's β).
        budget: f64,
    },
    /// Dwibedy–Mohanty largest-job/least-loaded multi-list: each arrival
    /// wave is sorted largest batch first and every batch is placed,
    /// whole, on the processor minimizing its completion time. Keeping
    /// batches whole mirrors the paper's jobs (our unit jobs arrive in
    /// batches; the batch is the job).
    MultiList,
}

impl OnlinePolicy {
    /// Stable short name (used in ratio tables and golden files).
    pub fn name(&self) -> &'static str {
        match self {
            OnlinePolicy::MigrationBudget { .. } => "MIG",
            OnlinePolicy::MultiList => "ML",
        }
    }

    /// The default suite the harness reports alongside the six §6
    /// algorithms: migration-budget at the paper's illustrative β = 1 and
    /// the multi-list rule.
    pub fn suite() -> [(&'static str, OnlinePolicy); 2] {
        [
            ("MIG", OnlinePolicy::MigrationBudget { budget: 1.0 }),
            ("ML", OnlinePolicy::MultiList),
        ]
    }
}

/// Outcome of an online-policy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineRun {
    /// Completion time of the last unit.
    pub makespan: u64,
    /// Units assigned (= total released work).
    pub assigned: u64,
    /// Unit migrations actually performed (0 for [`OnlinePolicy::MultiList`]).
    pub migrations: u64,
}

/// Ring distance between processors `a` and `b` on an `m`-ring.
fn dist(a: usize, b: usize, m: usize) -> u64 {
    let d = a.abs_diff(b);
    d.min(m - d) as u64
}

/// One queued-but-unstarted unit: where it came from and when, so a
/// migration can re-derive its start bound at the new processor.
#[derive(Debug, Clone, Copy)]
struct QueuedUnit {
    origin: usize,
    release: u64,
}

/// Per-processor committed schedule: finish time plus the queue of units
/// that have not started by the current decision time (eligible to
/// migrate).
struct Machine {
    finish: u64,
    queue: Vec<QueuedUnit>,
}

impl Machine {
    /// Completion time of one more unit from `origin` released at `r`.
    fn completion_of(&self, origin: usize, r: u64, q: usize, m: usize) -> u64 {
        self.finish.max(r + dist(origin, q, m)) + 1
    }
}

fn assign_unit(machines: &mut [Machine], origin: usize, release: u64, m: usize) {
    let q = (0..m)
        .min_by_key(|&q| {
            (
                machines[q].completion_of(origin, release, q, m),
                dist(origin, q, m),
                q,
            )
        })
        .expect("at least one processor");
    machines[q].finish = machines[q].completion_of(origin, release, q, m);
    machines[q].queue.push(QueuedUnit { origin, release });
}

/// Drops units that have started by `now` from every queue: a unit that is
/// already executing (or done) can no longer migrate. Queues are FIFO in
/// assignment order and a machine with finish `f` and `k` queued units
/// runs them in its last `k` committed steps, so the first
/// `len - still_pending` entries are the started ones — a conservative
/// prefix estimate keeps the model simple and only ever *shrinks* the
/// migratable set.
fn retire_started(machines: &mut [Machine], now: u64) {
    for mach in machines.iter_mut() {
        let pending = mach.finish.saturating_sub(now).min(mach.queue.len() as u64) as usize;
        let started = mach.queue.len() - pending;
        if started > 0 {
            mach.queue.drain(..started);
        }
    }
}

/// Spends up to `allowance` unit migrations: repeatedly take a queued unit
/// off the processor with the largest committed finish and re-place it
/// where it completes earliest (movement restarts from the unit's current
/// holder — migrating is not free positioning). Stops early when no move
/// lowers the donor's finish.
///
/// Feasibility of the charge: the migrated unit first completes its
/// committed journey to the donor (arriving at
/// `release + dist(origin, donor)`, or is already there), then re-travels
/// donor→target — so its start bound at the target is
/// `max(now, release + dist(origin, donor)) + dist(donor, target)`, a
/// journey an offline schedule could genuinely route. The re-enqueued
/// unit's `(origin, release)` is rewritten to `(donor, depart)` so any
/// *second* migration prices its travel from the leg it actually took.
fn migrate(machines: &mut [Machine], allowance: u64, now: u64, m: usize) -> u64 {
    let mut spent = 0;
    while spent < allowance {
        let donor = match (0..m)
            .filter(|&q| !machines[q].queue.is_empty())
            .max_by_key(|&q| (machines[q].finish, q))
        {
            Some(q) => q,
            None => break,
        };
        let unit = *machines[donor].queue.last().expect("non-empty queue");
        let depart = now.max(unit.release + dist(unit.origin, donor, m));
        let target = match (0..m)
            .filter(|&q| q != donor)
            .min_by_key(|&q| (machines[q].completion_of(donor, depart, q, m), q))
        {
            Some(q) => q,
            None => break,
        };
        let new_completion = machines[target].completion_of(donor, depart, target, m);
        // A move only helps if the unit finishes strictly before the
        // donor's current finish (the donor's last queued unit is its
        // marginal one).
        if new_completion >= machines[donor].finish {
            break;
        }
        machines[donor].queue.pop();
        machines[donor].finish -= 1;
        machines[target].finish = new_completion;
        machines[target].queue.push(QueuedUnit {
            origin: donor,
            release: depart,
        });
        spent += 1;
    }
    spent
}

/// Runs an online policy over a time-sorted arrival script.
///
/// # Panics
///
/// Panics if `m == 0`, any arrival names a processor `>= m`, or the script
/// is not sorted by release time (build it with
/// [`crate::dynamic::DynamicInstance::new`] to get sorting for free).
pub fn run_online(m: usize, arrivals: &[Arrival], policy: &OnlinePolicy) -> OnlineRun {
    assert!(m > 0, "need at least one processor");
    assert!(
        arrivals.windows(2).all(|w| w[0].time <= w[1].time),
        "arrival script must be time-sorted"
    );
    assert!(
        arrivals.iter().all(|a| a.processor < m),
        "arrival processor out of range"
    );
    let mut machines: Vec<Machine> = (0..m)
        .map(|_| Machine {
            finish: 0,
            queue: Vec::new(),
        })
        .collect();
    let mut assigned = 0u64;
    let mut migrations = 0u64;
    let mut i = 0usize;
    while i < arrivals.len() {
        let now = arrivals[i].time;
        let mut wave_end = i;
        while wave_end < arrivals.len() && arrivals[wave_end].time == now {
            wave_end += 1;
        }
        let mut wave: Vec<Arrival> = arrivals[i..wave_end].to_vec();
        i = wave_end;
        retire_started(&mut machines, now);
        match *policy {
            OnlinePolicy::MigrationBudget { budget } => {
                let wave_size: u64 = wave.iter().map(|a| a.count).sum();
                for a in &wave {
                    for _ in 0..a.count {
                        assign_unit(&mut machines, a.processor, a.time, m);
                    }
                }
                assigned += wave_size;
                let allowance = (budget * wave_size as f64).floor().max(0.0) as u64;
                migrations += migrate(&mut machines, allowance, now, m);
            }
            OnlinePolicy::MultiList => {
                // Largest job first; ties broken by processor index so the
                // run is deterministic whatever order the script listed
                // equal-time batches in.
                wave.sort_by_key(|a| (std::cmp::Reverse(a.count), a.processor));
                for a in &wave {
                    // The whole batch goes to one processor — the batch is
                    // the "job". Least resulting completion time wins.
                    let q = (0..m)
                        .min_by_key(|&q| {
                            (
                                machines[q].finish.max(a.time + dist(a.processor, q, m)) + a.count,
                                dist(a.processor, q, m),
                                q,
                            )
                        })
                        .expect("at least one processor");
                    let start = machines[q].finish.max(a.time + dist(a.processor, q, m));
                    machines[q].finish = start + a.count;
                    for _ in 0..a.count {
                        machines[q].queue.push(QueuedUnit {
                            origin: a.processor,
                            release: a.time,
                        });
                    }
                    assigned += a.count;
                }
            }
        }
    }
    OnlineRun {
        makespan: machines.iter().map(|mach| mach.finish).max().unwrap_or(0),
        assigned,
        migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(time: u64, processor: usize, count: u64) -> Arrival {
        Arrival {
            time,
            processor,
            count,
        }
    }

    fn greedy() -> OnlinePolicy {
        OnlinePolicy::MigrationBudget { budget: 0.0 }
    }

    #[test]
    fn empty_script_is_zero() {
        for (_, p) in OnlinePolicy::suite() {
            let run = run_online(8, &[], &p);
            assert_eq!(run.makespan, 0);
            assert_eq!(run.assigned, 0);
        }
    }

    #[test]
    fn single_unit_costs_one_step() {
        for (_, p) in OnlinePolicy::suite() {
            let run = run_online(8, &[arr(0, 3, 1)], &p);
            assert_eq!(run.makespan, 1, "{}", p.name());
        }
    }

    #[test]
    fn release_time_shifts_the_schedule() {
        for (_, p) in OnlinePolicy::suite() {
            let run = run_online(8, &[arr(40, 3, 1)], &p);
            assert_eq!(run.makespan, 41, "{}", p.name());
        }
    }

    #[test]
    fn greedy_spreads_a_heap_optimally() {
        // 16 jobs on one node of an 8-ring: the offline optimum is 4 and
        // greedy least-finish reproduces it (it is exactly the optimal
        // water-filling by distance).
        let run = run_online(8, &[arr(0, 0, 16)], &greedy());
        assert_eq!(run.makespan, 4);
        assert_eq!(run.assigned, 16);
    }

    #[test]
    fn migration_never_hurts_on_two_phase_adversary() {
        // A burst at p=0, then a burst at the antipode: migration may move
        // queued units; the makespan must never exceed the no-migration run.
        let script = [arr(0, 0, 60), arr(2, 8, 60)];
        let base = run_online(16, &script, &greedy());
        for budget in [0.25, 0.5, 1.0, 2.0] {
            let run = run_online(16, &script, &OnlinePolicy::MigrationBudget { budget });
            assert!(
                run.makespan <= base.makespan,
                "budget {budget}: {} > {}",
                run.makespan,
                base.makespan
            );
        }
    }

    #[test]
    fn migration_budget_is_respected() {
        let script = [arr(0, 0, 40), arr(1, 1, 40)];
        for budget in [0.0, 0.1, 0.5, 1.0] {
            let run = run_online(8, &script, &OnlinePolicy::MigrationBudget { budget });
            let allowance = (budget * 40.0).floor() as u64 * 2;
            assert!(
                run.migrations <= allowance,
                "budget {budget}: {} migrations > allowance {allowance}",
                run.migrations
            );
        }
    }

    #[test]
    fn multi_list_places_largest_first() {
        // Two batches at t = 0 on a 2-ring: the larger one must land alone.
        let run = run_online(2, &[arr(0, 0, 3), arr(0, 1, 10)], &OnlinePolicy::MultiList);
        // Largest (10) placed first on its origin (finish 10); the 3-batch
        // then prefers the other machine: max(0, 0+ d) + 3.
        assert_eq!(run.makespan, 10);
    }

    #[test]
    fn multi_list_keeps_batches_whole() {
        // One 9-batch on a 4-ring cannot be split: makespan is the full 9
        // even though spreading would finish in ~3.
        let run = run_online(4, &[arr(0, 0, 9)], &OnlinePolicy::MultiList);
        assert_eq!(run.makespan, 9);
    }

    #[test]
    fn policies_never_beat_the_offline_optimum() {
        use ring_opt::{offline_optimum, Release, SolverBudget};
        let scripts: Vec<(usize, Vec<Arrival>)> = vec![
            (8, vec![arr(0, 0, 16)]),
            (16, vec![arr(0, 0, 60), arr(2, 8, 60)]),
            (12, vec![arr(0, 3, 25), arr(10, 9, 25), arr(20, 0, 10)]),
            (4, vec![arr(0, 0, 9), arr(0, 2, 9), arr(3, 1, 5)]),
        ];
        for (m, script) in scripts {
            let releases: Vec<Release> = script
                .iter()
                .map(|a| Release {
                    time: a.time,
                    processor: a.processor,
                    count: a.count,
                })
                .collect();
            for (name, p) in OnlinePolicy::suite() {
                let run = run_online(m, &script, &p);
                let denom = offline_optimum(m, &releases, None, &SolverBudget::default());
                assert!(
                    run.makespan >= denom.value(),
                    "{name} on m={m}: {} < {}",
                    run.makespan,
                    denom.value()
                );
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let script = [arr(0, 0, 30), arr(0, 5, 17), arr(4, 11, 23), arr(9, 2, 8)];
        for (_, p) in OnlinePolicy::suite() {
            let a = run_online(16, &script, &p);
            let b = run_online(16, &script, &p);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn conservation_of_assigned_units() {
        let script = [arr(0, 1, 12), arr(5, 7, 30), arr(5, 3, 4)];
        for (_, p) in OnlinePolicy::suite() {
            let run = run_online(8, &script, &p);
            assert_eq!(run.assigned, 46, "{}", p.name());
        }
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_scripts_are_rejected() {
        let _ = run_online(4, &[arr(5, 0, 1), arr(0, 1, 1)], &greedy());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_processor_rejected() {
        let _ = run_online(4, &[arr(0, 9, 1)], &greedy());
    }
}
