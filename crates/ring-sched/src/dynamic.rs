//! Online (dynamic) job arrivals — an extension beyond the paper's static
//! model.
//!
//! The paper schedules jobs that are all present at time 0 and cites
//! Awerbuch–Kutten–Peleg's *dynamic* distributed scheduling as the general
//! (but loosely-bounded) alternative. This module extends the bucket
//! algorithms to arrivals over time in the most natural way: whenever a
//! batch of new jobs appears at a processor, the processor packs the batch
//! into a fresh bucket — self-drop, optional bidirectional split, dispatch —
//! exactly as it does with its initial load at `t = 0`. All bookkeeping
//! (targets, I1/I2 rounding, Lemma 5 balancing) is shared with the static
//! algorithm; a processor's "originating work" `x_i` grows as arrivals
//! land, which is what travelling buckets see.
//!
//! No approximation proof from the paper carries over verbatim (the static
//! adversary argument does not model release times), so this module also
//! supplies honest *dynamic lower bounds* to measure against:
//!
//! * any job arriving at time `r` finishes no earlier than `r + 1`;
//! * ignoring release times can only help, so every static bound on the
//!   aggregated instance applies;
//! * more sharply, for every time `r`: `r` plus the static bound of the
//!   work arriving *at or after* `r` (that work cannot start before `r`).

use crate::unit::{UnitConfig, UnitNode};
use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder};
use ring_sim::{Engine, EngineConfig, Instance, Node, NodeCtx, RunReport, SimError, StepIo};

/// A batch of unit jobs arriving at a processor at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Step at which the batch becomes available.
    pub time: u64,
    /// Processor it lands on.
    pub processor: usize,
    /// Number of unit jobs.
    pub count: u64,
}

/// A dynamic instance: a ring size plus a list of arrivals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicInstance {
    m: usize,
    arrivals: Vec<Arrival>,
}

impl DynamicInstance {
    /// Builds a dynamic instance. Arrivals are sorted by time internally.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or any arrival names a processor `>= m`.
    pub fn new(m: usize, mut arrivals: Vec<Arrival>) -> Self {
        assert!(m > 0, "need at least one processor");
        assert!(
            arrivals.iter().all(|a| a.processor < m),
            "arrival processor out of range"
        );
        arrivals.sort_by_key(|a| a.time);
        DynamicInstance { m, arrivals }
    }

    /// A static instance viewed as a dynamic one (all arrivals at `t = 0`).
    pub fn from_static(instance: &Instance) -> Self {
        let arrivals = instance
            .loads()
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0)
            .map(|(p, &x)| Arrival {
                time: 0,
                processor: p,
                count: x,
            })
            .collect();
        DynamicInstance::new(instance.num_processors(), arrivals)
    }

    /// Ring size.
    pub fn num_processors(&self) -> usize {
        self.m
    }

    /// Total number of jobs over all arrivals.
    pub fn total_work(&self) -> u64 {
        self.arrivals.iter().map(|a| a.count).sum()
    }

    /// Latest arrival time (0 for an empty instance).
    pub fn last_arrival(&self) -> u64 {
        self.arrivals.iter().map(|a| a.time).max().unwrap_or(0)
    }

    /// The arrivals, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Aggregates all arrivals into one static instance (release times
    /// dropped).
    pub fn aggregate(&self) -> Instance {
        let mut loads = vec![0u64; self.m];
        for a in &self.arrivals {
            loads[a.processor] += a.count;
        }
        Instance::from_loads(loads)
    }

    /// The dynamic lower bound: for every release time `r`, `r` plus the
    /// static lower bound of everything arriving at or after `r`
    /// (including `r = 0`, the full aggregate bound).
    pub fn lower_bound(&self) -> u64 {
        let mut best = self.arrivals.iter().map(|a| a.time + 1).max().unwrap_or(0);
        let mut release_times: Vec<u64> = self.arrivals.iter().map(|a| a.time).collect();
        release_times.dedup();
        for &r in &release_times {
            let mut loads = vec![0u64; self.m];
            for a in self.arrivals.iter().filter(|a| a.time >= r) {
                loads[a.processor] += a.count;
            }
            let rest = Instance::from_loads(loads);
            best = best.max(r + ring_opt_free::uncapacitated_lower_bound(&rest));
        }
        best
    }
}

/// A local re-implementation of the closed-form bounds so `ring-sched`
/// does not depend on `ring-opt` (which depends back on `ring-sim` only;
/// the dependency direction is kept acyclic). The formulas are one-liners;
/// the authoritative, heavily-tested versions live in `ring-opt` and the
/// two are cross-checked in the integration tests.
mod ring_opt_free {
    use ring_sim::Instance;

    pub fn uncapacitated_lower_bound(inst: &Instance) -> u64 {
        let m = inst.num_processors();
        let loads = inst.loads();
        let n: u64 = loads.iter().sum();
        let mut best = n.div_ceil(m as u64);
        for start in 0..m {
            if loads[start] == 0 && m > 1 {
                continue;
            }
            let mut work: u64 = 0;
            for k in 1..=m {
                work += loads[(start + k - 1) % m];
                // smallest L with L^2 + (k-1)L >= work
                let b = (k - 1) as f64 / 2.0;
                let l = ((b * b + work as f64).sqrt() - b).ceil() as u64;
                let mut l = l.saturating_sub(1);
                while (l as u128) * (l as u128) + (k as u128 - 1) * (l as u128) < work as u128 {
                    l += 1;
                }
                best = best.max(l);
            }
        }
        best
    }
}

/// The dynamic policy: a static [`UnitNode`] plus this node's arrival
/// schedule.
pub struct DynamicNode {
    inner: UnitNode,
    /// This node's arrivals, sorted by time, consumed front to back.
    pending: std::collections::VecDeque<Arrival>,
}

impl Node for DynamicNode {
    type Msg = crate::bucket::Bucket;

    fn on_step(&mut self, ctx: &NodeCtx, io: &mut StepIo<'_, Self::Msg>) -> u64 {
        let m = ctx.topo.len();
        // New batches first: they are visible to this step's processing.
        while self.pending.front().is_some_and(|a| a.time <= ctx.t) {
            let a = self.pending.pop_front().expect("front checked");
            self.inner
                .emit_bucket(ctx.id, m, a.count, &mut io.out, &mut io.audit);
        }
        for bucket in io
            .inbox
            .from_ccw
            .drain(..)
            .chain(io.inbox.from_cw.drain(..))
        {
            self.inner
                .receive_bucket(bucket, &mut io.out, &mut io.audit, m);
        }
        self.inner.process_tick()
    }

    fn pending_work(&self) -> u64 {
        self.inner.pending_work() + self.pending.iter().map(|a| a.count).sum::<u64>()
    }

    fn quiescence(&self, now: u64) -> Option<ring_sim::Quiescence> {
        // Quiet until the next arrival fires; the inner bucket node is
        // purely reactive in between (this wrapper never calls its
        // emit-on-first-step path, so no `emitted` gate is needed).
        let span = match self.pending.front() {
            Some(a) if a.time <= now => return None,
            Some(a) => a.time - now,
            None => u64::MAX,
        };
        Some(ring_sim::Quiescence {
            span,
            backlog: self.inner.quiet_backlog(),
        })
    }

    fn fast_forward(&mut self, steps: u64) {
        self.inner.fast_forward_drain(steps);
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        self.inner.save_mut_state(enc);
        enc.usize(self.pending.len());
        for a in &self.pending {
            enc.u64(a.time);
            enc.usize(a.processor);
            enc.u64(a.count);
        }
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.inner.restore_mut_state(dec)?;
        let n = dec.usize()?;
        let mut pending = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            pending.push_back(Arrival {
                time: dec.u64()?,
                processor: dec.usize()?,
                count: dec.u64()?,
            });
        }
        self.pending = pending;
        Ok(())
    }
}

/// Outcome of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Completion time of the last job.
    pub makespan: u64,
    /// Engine report.
    pub report: RunReport,
    /// The dynamic lower bound of the instance (for factor reporting).
    pub lower_bound: u64,
}

/// Runs a unit-job bucket algorithm on a dynamic instance.
pub fn run_dynamic(instance: &DynamicInstance, cfg: &UnitConfig) -> Result<DynamicRun, SimError> {
    let empty = Instance::empty(instance.num_processors());
    let mut nodes: Vec<DynamicNode> = crate::unit::build_unit_nodes(&empty, cfg)
        .into_iter()
        .map(|inner| DynamicNode {
            inner,
            pending: std::collections::VecDeque::new(),
        })
        .collect();
    for &a in instance.arrivals() {
        nodes[a.processor].pending.push_back(a);
    }
    for node in &mut nodes {
        node.pending.make_contiguous().sort_by_key(|a| a.time);
    }
    let n = instance.total_work();
    let engine_cfg = EngineConfig {
        max_steps: Some(4 * (n + instance.num_processors() as u64) + instance.last_arrival() + 64),
        trace: cfg.trace,
        observe: cfg.observe,
        compress: cfg.compress,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, n, engine_cfg);
    let report = engine.run()?;
    Ok(DynamicRun {
        makespan: report.makespan,
        lower_bound: instance.lower_bound(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_equivalence() {
        // A dynamic instance with everything at t = 0 behaves exactly like
        // the static algorithm.
        let inst = Instance::from_loads(vec![50, 0, 0, 12, 0, 0, 7, 0]);
        let dynamic = DynamicInstance::from_static(&inst);
        for (name, cfg) in UnitConfig::all_six() {
            let stat = crate::unit::run_unit(&inst, &cfg).unwrap();
            let dyn_run = run_dynamic(&dynamic, &cfg).unwrap();
            assert_eq!(stat.makespan, dyn_run.makespan, "{name}");
        }
    }

    #[test]
    fn empty_dynamic_instance() {
        let d = DynamicInstance::new(4, vec![]);
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert_eq!(run.makespan, 0);
        assert_eq!(run.lower_bound, 0);
    }

    #[test]
    fn late_arrivals_extend_the_schedule() {
        let d = DynamicInstance::new(
            8,
            vec![Arrival {
                time: 100,
                processor: 3,
                count: 16,
            }],
        );
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert!(run.makespan > 100, "makespan {}", run.makespan);
        // OPT for 16-on-one-node is 4 (sqrt), released at 100.
        assert!(run.lower_bound >= 104);
        assert!(run.makespan >= run.lower_bound);
    }

    #[test]
    fn staggered_bursts_conserve_work() {
        let d = DynamicInstance::new(
            16,
            vec![
                Arrival {
                    time: 0,
                    processor: 0,
                    count: 100,
                },
                Arrival {
                    time: 10,
                    processor: 8,
                    count: 50,
                },
                Arrival {
                    time: 25,
                    processor: 0,
                    count: 30,
                },
                Arrival {
                    time: 25,
                    processor: 4,
                    count: 30,
                },
            ],
        );
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert_eq!(run.report.metrics.total_processed(), 210);
        assert!(run.makespan >= run.lower_bound);
    }

    #[test]
    fn dynamic_lower_bound_accounts_for_tails() {
        // A big burst released late dominates the aggregate bound.
        let d = DynamicInstance::new(
            64,
            vec![
                Arrival {
                    time: 0,
                    processor: 0,
                    count: 10,
                },
                Arrival {
                    time: 1000,
                    processor: 32,
                    count: 400,
                },
            ],
        );
        // sqrt(400) = 20 => bound >= 1020.
        assert!(d.lower_bound() >= 1020, "lb {}", d.lower_bound());
    }

    #[test]
    fn local_bound_matches_ring_opt() {
        for inst in [
            Instance::from_loads(vec![100, 0, 0, 0, 7]),
            Instance::from_loads(vec![3; 9]),
            Instance::from_loads(vec![0, 50, 0, 50, 0, 0, 0, 0, 0, 0, 0, 0]),
        ] {
            assert_eq!(
                super::ring_opt_free::uncapacitated_lower_bound(&inst),
                ring_opt::uncapacitated_lower_bound(&inst)
            );
        }
    }

    #[test]
    fn dynamic_factor_reasonable_on_bursty_traffic() {
        let d = DynamicInstance::new(
            32,
            (0..10)
                .map(|k| Arrival {
                    time: 20 * k,
                    processor: ((7 * k) % 32) as usize,
                    count: 60,
                })
                .collect(),
        );
        let run = run_dynamic(&d, &UnitConfig::a2()).unwrap();
        let factor = run.makespan as f64 / run.lower_bound as f64;
        assert!(factor < 4.0, "dynamic factor {factor}");
    }
}
