//! Online (dynamic) job arrivals — an extension beyond the paper's static
//! model.
//!
//! The paper schedules jobs that are all present at time 0 and cites
//! Awerbuch–Kutten–Peleg's *dynamic* distributed scheduling as the general
//! (but loosely-bounded) alternative. This module extends the bucket
//! algorithms to arrivals over time in the most natural way: whenever a
//! batch of new jobs appears at a processor, the processor packs the batch
//! into a fresh bucket — self-drop, optional bidirectional split, dispatch —
//! exactly as it does with its initial load at `t = 0`. All bookkeeping
//! (targets, I1/I2 rounding, Lemma 5 balancing) is shared with the static
//! algorithm; a processor's "originating work" `x_i` grows as arrivals
//! land, which is what travelling buckets see.
//!
//! No approximation proof from the paper carries over verbatim (the static
//! adversary argument does not model release times), so this module also
//! supplies honest *dynamic lower bounds* to measure against:
//!
//! * any job arriving at time `r` finishes no earlier than `r + 1`;
//! * ignoring release times can only help, so every static bound on the
//!   aggregated instance applies;
//! * more sharply, for every time `r`: `r` plus the static bound of the
//!   work arriving *at or after* `r` (that work cannot start before `r`).

use crate::unit::{UnitConfig, UnitNode};
use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder};
use ring_sim::{Engine, EngineConfig, Instance, Node, NodeCtx, RunReport, SimError, StepIo};

/// A batch of unit jobs arriving at a processor at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Step at which the batch becomes available.
    pub time: u64,
    /// Processor it lands on.
    pub processor: usize,
    /// Number of unit jobs.
    pub count: u64,
}

/// A dynamic instance: a ring size plus a list of arrivals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicInstance {
    m: usize,
    arrivals: Vec<Arrival>,
}

impl DynamicInstance {
    /// Builds a dynamic instance. Arrivals are sorted by time internally.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or any arrival names a processor `>= m`.
    pub fn new(m: usize, mut arrivals: Vec<Arrival>) -> Self {
        assert!(m > 0, "need at least one processor");
        assert!(
            arrivals.iter().all(|a| a.processor < m),
            "arrival processor out of range"
        );
        arrivals.sort_by_key(|a| a.time);
        DynamicInstance { m, arrivals }
    }

    /// A static instance viewed as a dynamic one (all arrivals at `t = 0`).
    pub fn from_static(instance: &Instance) -> Self {
        let arrivals = instance
            .loads()
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0)
            .map(|(p, &x)| Arrival {
                time: 0,
                processor: p,
                count: x,
            })
            .collect();
        DynamicInstance::new(instance.num_processors(), arrivals)
    }

    /// Ring size.
    pub fn num_processors(&self) -> usize {
        self.m
    }

    /// Total number of jobs over all arrivals.
    pub fn total_work(&self) -> u64 {
        self.arrivals.iter().map(|a| a.count).sum()
    }

    /// Latest arrival time (0 for an empty instance).
    pub fn last_arrival(&self) -> u64 {
        self.arrivals.iter().map(|a| a.time).max().unwrap_or(0)
    }

    /// The arrivals, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Aggregates all arrivals into one static instance (release times
    /// dropped).
    pub fn aggregate(&self) -> Instance {
        let mut loads = vec![0u64; self.m];
        for a in &self.arrivals {
            loads[a.processor] += a.count;
        }
        Instance::from_loads(loads)
    }

    /// The dynamic lower bound: for every release time `r`, `r` plus the
    /// static lower bound of everything arriving at or after `r`
    /// (including `r = 0`, the full aggregate bound). Quadratic in the ring
    /// size — use [`quick_clearance_bound`] where this runs on a hot path.
    pub fn lower_bound(&self) -> u64 {
        let mut best = self.arrivals.iter().map(|a| a.time + 1).max().unwrap_or(0);
        let mut release_times: Vec<u64> = self.arrivals.iter().map(|a| a.time).collect();
        release_times.dedup();
        for &r in &release_times {
            let mut loads = vec![0u64; self.m];
            for a in self.arrivals.iter().filter(|a| a.time >= r) {
                loads[a.processor] += a.count;
            }
            let rest = Instance::from_loads(loads);
            best = best.max(r + ring_opt_free::uncapacitated_lower_bound(&rest));
        }
        best
    }
}

/// A local re-implementation of the closed-form bounds so `ring-sched`
/// does not depend on `ring-opt` (which depends back on `ring-sim` only;
/// the dependency direction is kept acyclic). The formulas are one-liners;
/// the authoritative, heavily-tested versions live in `ring-opt` and the
/// two are cross-checked in the integration tests.
mod ring_opt_free {
    use ring_sim::Instance;

    pub fn uncapacitated_lower_bound(inst: &Instance) -> u64 {
        let m = inst.num_processors();
        let loads = inst.loads();
        let n: u64 = loads.iter().sum();
        let mut best = n.div_ceil(m as u64);
        for start in 0..m {
            if loads[start] == 0 && m > 1 {
                continue;
            }
            let mut work: u64 = 0;
            for k in 1..=m {
                work += loads[(start + k - 1) % m];
                // smallest L with L^2 + (k-1)L >= work
                let b = (k - 1) as f64 / 2.0;
                let l = ((b * b + work as f64).sqrt() - b).ceil() as u64;
                let mut l = l.saturating_sub(1);
                while (l as u128) * (l as u128) + (k as u128 - 1) * (l as u128) < work as u128 {
                    l += 1;
                }
                best = best.max(l);
            }
        }
        best
    }
}

/// An O(m) relaxation of the static core of [`DynamicInstance::lower_bound`]:
/// `max(⌈N/m⌉, max_i ⌈√load_i⌉)` over per-origin outstanding loads. Every
/// term is among the candidates the full window scan maximizes over (the
/// average and each single-node window), so the result is always `<=` the
/// full bound while remaining a true lower bound on clearance time — cheap
/// enough for per-epoch admission decisions at `m = 4096`, where the full
/// O(m²) scan is not.
pub fn quick_clearance_bound(loads: &[u64]) -> u64 {
    if loads.is_empty() {
        return 0;
    }
    let n: u64 = loads.iter().sum();
    let mut best = n.div_ceil(loads.len() as u64);
    for &x in loads {
        best = best.max(ceil_sqrt(x));
    }
    best
}

/// Smallest `r` with `r² >= x`.
fn ceil_sqrt(x: u64) -> u64 {
    let mut r = (x as f64).sqrt() as u64;
    while (r as u128) * (r as u128) < x as u128 {
        r += 1;
    }
    while r > 0 && ((r - 1) as u128) * ((r - 1) as u128) >= x as u128 {
        r -= 1;
    }
    r
}

/// Renders an arrival list back into the [`parse_arrivals`] grammar.
/// `parse_arrivals(render_arrivals(a), m)` reproduces `a` exactly for any
/// time-sorted list — the round trip the scenario DSL relies on.
pub fn render_arrivals(arrivals: &[Arrival]) -> String {
    arrivals
        .iter()
        .map(|a| format!("{}@{}:{}", a.time, a.processor, a.count))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses the CLI arrival-spec grammar into a time-sorted arrival list.
/// `m` is the ring size, used for index validation.
///
/// Entries are separated by `;`, each `<time>@<processor>:<count>`:
///
/// ```text
/// 0@0:100;10@8:50;25@4:30
/// ```
///
/// releases 100 jobs on processor 0 at step 0, 50 on processor 8 at step
/// 10, and 30 on processor 4 at step 25.
pub fn parse_arrivals(spec: &str, m: usize) -> Result<Vec<Arrival>, String> {
    let mut arrivals = Vec::new();
    for raw in spec.split(';') {
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let (time_s, rest) = entry
            .split_once('@')
            .ok_or_else(|| format!("`{entry}`: expected `<time>@<processor>:<count>`"))?;
        let (proc_s, count_s) = rest
            .split_once(':')
            .ok_or_else(|| format!("`{entry}`: expected `<processor>:<count>` after `@`"))?;
        let time: u64 = time_s
            .trim()
            .parse()
            .map_err(|_| format!("`{entry}`: bad time `{time_s}`"))?;
        let processor: usize = proc_s
            .trim()
            .parse()
            .map_err(|_| format!("`{entry}`: bad processor `{proc_s}`"))?;
        let count: u64 = count_s
            .trim()
            .parse()
            .map_err(|_| format!("`{entry}`: bad count `{count_s}`"))?;
        if processor >= m {
            return Err(format!(
                "`{entry}`: processor {processor} out of range (m = {m})"
            ));
        }
        if count == 0 {
            return Err(format!("`{entry}`: a batch must carry at least one job"));
        }
        arrivals.push(Arrival {
            time,
            processor,
            count,
        });
    }
    arrivals.sort_by_key(|a| a.time);
    Ok(arrivals)
}

/// The dynamic policy: a static [`UnitNode`] plus this node's arrival
/// schedule.
pub struct DynamicNode {
    inner: UnitNode,
    /// This node's arrivals, sorted by time, consumed front to back.
    pending: std::collections::VecDeque<Arrival>,
}

impl DynamicNode {
    /// Schedules a future arrival batch on this node, keeping the pending
    /// stream time-sorted (equal-time batches stay in insertion order).
    /// A serving layer calls this between engine spans — while the engine
    /// is paused at a step boundary `B`, injecting batches with
    /// `time >= B` — and must declare the added jobs through
    /// [`ring_sim::Engine::add_work`].
    pub fn inject(&mut self, a: Arrival) {
        let pos = self.pending.partition_point(|b| b.time <= a.time);
        self.pending.insert(pos, a);
    }

    /// Jobs delivered to this node (locally released or received in a
    /// bucket) and not yet processed — excludes scheduled future arrivals.
    pub fn resident_work(&self) -> u64 {
        self.inner.pending_work()
    }
}

/// Builds one idle dynamic node per processor (no scheduled arrivals).
/// Arrivals are then attached with [`DynamicNode::inject`] — up front, as
/// [`run_dynamic`] does, or between engine spans, as the serving layer
/// does.
pub fn build_dynamic_nodes(m: usize, cfg: &UnitConfig) -> Vec<DynamicNode> {
    let empty = Instance::empty(m);
    crate::unit::build_unit_nodes(&empty, cfg)
        .into_iter()
        .map(|inner| DynamicNode {
            inner,
            pending: std::collections::VecDeque::new(),
        })
        .collect()
}

impl Node for DynamicNode {
    type Msg = crate::bucket::Bucket;

    fn on_step(&mut self, ctx: &NodeCtx, io: &mut StepIo<'_, Self::Msg>) -> u64 {
        let m = ctx.topo.len();
        // New batches first: they are visible to this step's processing.
        while self.pending.front().is_some_and(|a| a.time <= ctx.t) {
            let a = self.pending.pop_front().expect("front checked");
            self.inner
                .emit_bucket(ctx.id, m, a.count, &mut io.out, &mut io.audit);
        }
        for bucket in io
            .inbox
            .from_ccw
            .drain(..)
            .chain(io.inbox.from_cw.drain(..))
        {
            self.inner
                .receive_bucket(bucket, &mut io.out, &mut io.audit, m);
        }
        self.inner.process_tick()
    }

    fn pending_work(&self) -> u64 {
        self.inner.pending_work() + self.pending.iter().map(|a| a.count).sum::<u64>()
    }

    fn quiescence(&self, now: u64) -> Option<ring_sim::Quiescence> {
        // Quiet until the next arrival fires; the inner bucket node is
        // purely reactive in between (this wrapper never calls its
        // emit-on-first-step path, so no `emitted` gate is needed).
        let span = match self.pending.front() {
            Some(a) if a.time <= now => return None,
            Some(a) => a.time - now,
            None => u64::MAX,
        };
        Some(ring_sim::Quiescence {
            span,
            backlog: self.inner.quiet_backlog(),
        })
    }

    fn fast_forward(&mut self, steps: u64) {
        self.inner.fast_forward_drain(steps);
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        self.inner.save_mut_state(enc);
        enc.usize(self.pending.len());
        for a in &self.pending {
            enc.u64(a.time);
            enc.usize(a.processor);
            enc.u64(a.count);
        }
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.inner.restore_mut_state(dec)?;
        let n = dec.usize()?;
        let mut pending = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            pending.push_back(Arrival {
                time: dec.u64()?,
                processor: dec.usize()?,
                count: dec.u64()?,
            });
        }
        self.pending = pending;
        Ok(())
    }
}

/// Outcome of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Completion time of the last job.
    pub makespan: u64,
    /// Engine report.
    pub report: RunReport,
    /// The dynamic lower bound of the instance (for factor reporting).
    pub lower_bound: u64,
}

/// Builds the engine for a dynamic instance: nodes with the arrival
/// schedule attached and a step budget widened by the release horizon.
fn dynamic_engine(instance: &DynamicInstance, cfg: &UnitConfig) -> Engine<DynamicNode> {
    let mut nodes = build_dynamic_nodes(instance.num_processors(), cfg);
    for &a in instance.arrivals() {
        nodes[a.processor].inject(a);
    }
    let n = instance.total_work();
    let engine_cfg = EngineConfig {
        max_steps: Some(4 * (n + instance.num_processors() as u64) + instance.last_arrival() + 64),
        trace: cfg.trace,
        observe: cfg.observe,
        compress: cfg.compress,
        ..EngineConfig::default()
    };
    Engine::new(nodes, n, engine_cfg)
}

/// Runs a unit-job bucket algorithm on a dynamic instance.
pub fn run_dynamic(instance: &DynamicInstance, cfg: &UnitConfig) -> Result<DynamicRun, SimError> {
    let mut engine = dynamic_engine(instance, cfg);
    let report = engine.run()?;
    Ok(DynamicRun {
        makespan: report.makespan,
        lower_bound: instance.lower_bound(),
        report,
    })
}

/// Runs a unit-job bucket algorithm on a dynamic instance through the
/// arc-parallel engine (bit-identical to [`run_dynamic`], like
/// `run_unit_par` is to `run_unit`).
pub fn run_dynamic_par(
    instance: &DynamicInstance,
    cfg: &UnitConfig,
    shards: usize,
) -> Result<DynamicRun, SimError> {
    let mut engine = dynamic_engine(instance, cfg);
    let report = engine.par_run(shards)?;
    Ok(DynamicRun {
        makespan: report.makespan,
        lower_bound: instance.lower_bound(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_equivalence() {
        // A dynamic instance with everything at t = 0 behaves exactly like
        // the static algorithm.
        let inst = Instance::from_loads(vec![50, 0, 0, 12, 0, 0, 7, 0]);
        let dynamic = DynamicInstance::from_static(&inst);
        for (name, cfg) in UnitConfig::all_six() {
            let stat = crate::unit::run_unit(&inst, &cfg).unwrap();
            let dyn_run = run_dynamic(&dynamic, &cfg).unwrap();
            assert_eq!(stat.makespan, dyn_run.makespan, "{name}");
        }
    }

    #[test]
    fn empty_dynamic_instance() {
        let d = DynamicInstance::new(4, vec![]);
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert_eq!(run.makespan, 0);
        assert_eq!(run.lower_bound, 0);
    }

    #[test]
    fn late_arrivals_extend_the_schedule() {
        let d = DynamicInstance::new(
            8,
            vec![Arrival {
                time: 100,
                processor: 3,
                count: 16,
            }],
        );
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert!(run.makespan > 100, "makespan {}", run.makespan);
        // OPT for 16-on-one-node is 4 (sqrt), released at 100.
        assert!(run.lower_bound >= 104);
        assert!(run.makespan >= run.lower_bound);
    }

    #[test]
    fn staggered_bursts_conserve_work() {
        let d = DynamicInstance::new(
            16,
            vec![
                Arrival {
                    time: 0,
                    processor: 0,
                    count: 100,
                },
                Arrival {
                    time: 10,
                    processor: 8,
                    count: 50,
                },
                Arrival {
                    time: 25,
                    processor: 0,
                    count: 30,
                },
                Arrival {
                    time: 25,
                    processor: 4,
                    count: 30,
                },
            ],
        );
        let run = run_dynamic(&d, &UnitConfig::c1()).unwrap();
        assert_eq!(run.report.metrics.total_processed(), 210);
        assert!(run.makespan >= run.lower_bound);
    }

    #[test]
    fn dynamic_lower_bound_accounts_for_tails() {
        // A big burst released late dominates the aggregate bound.
        let d = DynamicInstance::new(
            64,
            vec![
                Arrival {
                    time: 0,
                    processor: 0,
                    count: 10,
                },
                Arrival {
                    time: 1000,
                    processor: 32,
                    count: 400,
                },
            ],
        );
        // sqrt(400) = 20 => bound >= 1020.
        assert!(d.lower_bound() >= 1020, "lb {}", d.lower_bound());
    }

    #[test]
    fn local_bound_matches_ring_opt() {
        for inst in [
            Instance::from_loads(vec![100, 0, 0, 0, 7]),
            Instance::from_loads(vec![3; 9]),
            Instance::from_loads(vec![0, 50, 0, 50, 0, 0, 0, 0, 0, 0, 0, 0]),
        ] {
            assert_eq!(
                super::ring_opt_free::uncapacitated_lower_bound(&inst),
                ring_opt::uncapacitated_lower_bound(&inst)
            );
        }
    }

    #[test]
    fn par_run_matches_sequential_on_dynamic_instances() {
        let d = DynamicInstance::new(
            16,
            vec![
                Arrival {
                    time: 0,
                    processor: 2,
                    count: 80,
                },
                Arrival {
                    time: 7,
                    processor: 11,
                    count: 33,
                },
                Arrival {
                    time: 40,
                    processor: 2,
                    count: 5,
                },
            ],
        );
        for (name, cfg) in UnitConfig::all_six() {
            let seq = run_dynamic(&d, &cfg).unwrap();
            for shards in [2, 3, 7] {
                let par = run_dynamic_par(&d, &cfg, shards).unwrap();
                assert_eq!(seq.report, par.report, "{name} shards={shards}");
            }
        }
    }

    #[test]
    fn quick_bound_never_exceeds_the_full_bound() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0; 8],
            vec![100, 0, 0, 0, 7],
            vec![3; 9],
            vec![0, 50, 0, 50, 0, 0, 0, 0, 0, 0, 0, 0],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![10_000],
            (0..64).map(|i| (i * i) % 97).collect(),
        ];
        for loads in cases {
            let quick = quick_clearance_bound(&loads);
            let full = super::ring_opt_free::uncapacitated_lower_bound(&Instance::from_loads(
                loads.clone(),
            ));
            assert!(quick <= full, "quick {quick} > full {full} for {loads:?}");
            // Both are bounded below by the average and the deepest √load.
            let n: u64 = loads.iter().sum();
            assert!(quick >= n.div_ceil(loads.len() as u64));
        }
    }

    #[test]
    fn quick_bound_pins_known_values() {
        assert_eq!(quick_clearance_bound(&[]), 0);
        assert_eq!(quick_clearance_bound(&[0, 0, 0]), 0);
        // 16 jobs on one of 8 nodes: √16 = 4 beats ⌈16/8⌉ = 2.
        assert_eq!(quick_clearance_bound(&[16, 0, 0, 0, 0, 0, 0, 0]), 4);
        // Perfectly spread: the average dominates.
        assert_eq!(quick_clearance_bound(&[9, 9, 9]), 9);
        // Non-square burst rounds up.
        assert_eq!(quick_clearance_bound(&[17, 0, 0, 0, 0, 0, 0, 0]), 5);
    }

    #[test]
    fn ceil_sqrt_is_exact() {
        for x in 0..2000u64 {
            let r = super::ceil_sqrt(x);
            assert!(r * r >= x);
            assert!(r == 0 || (r - 1) * (r - 1) < x);
        }
        assert_eq!(super::ceil_sqrt(u64::MAX), 1 << 32);
    }

    #[test]
    fn parse_arrivals_round_trips_the_grammar() {
        let spec = "10@8:50; 0@0:100 ;25@4:30";
        let arrivals = parse_arrivals(spec, 16).unwrap();
        assert_eq!(
            arrivals,
            vec![
                Arrival {
                    time: 0,
                    processor: 0,
                    count: 100
                },
                Arrival {
                    time: 10,
                    processor: 8,
                    count: 50
                },
                Arrival {
                    time: 25,
                    processor: 4,
                    count: 30
                },
            ]
        );
        assert_eq!(parse_arrivals("", 4).unwrap(), vec![]);
    }

    #[test]
    fn parse_arrivals_rejects_malformed_specs() {
        for bad in [
            "5:3",   // missing @
            "5@3",   // missing :count
            "x@3:1", // bad time
            "5@x:1", // bad processor
            "5@3:x", // bad count
            "5@9:1", // processor out of range (m = 4)
            "5@0:0", // empty batch
        ] {
            assert!(parse_arrivals(bad, 4).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn inject_keeps_the_pending_stream_time_sorted() {
        let mut nodes = build_dynamic_nodes(4, &UnitConfig::c1());
        for (time, count) in [(30, 1), (10, 2), (20, 3), (10, 4)] {
            nodes[0].inject(Arrival {
                time,
                processor: 0,
                count,
            });
        }
        let times: Vec<(u64, u64)> = nodes[0].pending.iter().map(|a| (a.time, a.count)).collect();
        // Sorted by time; the two t=10 batches keep insertion order.
        assert_eq!(times, vec![(10, 2), (10, 4), (20, 3), (30, 1)]);
        assert_eq!(nodes[0].pending_work(), 10);
        assert_eq!(nodes[0].resident_work(), 0);
    }

    #[test]
    fn dynamic_factor_reasonable_on_bursty_traffic() {
        let d = DynamicInstance::new(
            32,
            (0..10)
                .map(|k| Arrival {
                    time: 20 * k,
                    processor: ((7 * k) % 32) as usize,
                    count: 60,
                })
                .collect(),
        );
        let run = run_dynamic(&d, &UnitConfig::a2()).unwrap();
        let factor = run.makespan as f64 / run.lower_bound as f64;
        assert!(factor < 4.0, "dynamic factor {factor}");
    }
}
