//! # ring-sched — the distributed ring scheduling algorithms of SPAA 1994
//!
//! This crate implements every algorithm from *"Job Scheduling in Rings"*
//! (Fizzano, Karger, Stein, Wein):
//!
//! | Module | Paper section | Algorithm |
//! |---|---|---|
//! | [`fractional`] | §3 | the Basic (splittable-work) Algorithm, 4.22-approx |
//! | [`mod@unit`] | §4.1, §6 | the Integral Algorithm (variant **C**) plus the experimental variants **A** and **B**, each uni- (`A1`,`B1`,`C1`) or bidirectional (`A2`,`B2`,`C2`) |
//! | [`arbitrary`] | §4.2 | arbitrary job sizes with `p_max` slack, 5.22-approx |
//! | [`scaled`] | §4.3 | uniform processor speed `s` and link transit `τ` reductions |
//! | [`capacitated`] | §7 | the unit-capacity-link threshold algorithm (Figure 1), 2-approx |
//! | [`analysis`] | §3 | the constants: `c = 1.77`, `α = 2/c + 1/c²`, the 4.22/5.22 bounds |
//!
//! All of the discrete algorithms are implemented as [`ring_sim::Node`]
//! policies: local state plus neighbor messages only, no global control —
//! exactly the property the paper advertises. They can be run on the
//! sequential [`ring_sim::Engine`] (fast, deterministic) or on the
//! thread-per-processor executor in `ring-net` (demonstrably distributed).
//!
//! ## Quick start
//!
//! ```
//! use ring_sim::Instance;
//! use ring_sched::unit::{run_unit, UnitConfig};
//!
//! // 100 jobs dropped on one processor of a 32-processor ring.
//! let inst = Instance::concentrated(32, 0, 100);
//! let run = run_unit(&inst, &UnitConfig::c1()).unwrap();
//! // OPT is 10 (= sqrt(100)); C1 is guaranteed within 4.22x + 2.
//! assert!(run.makespan <= (4.22f64 * 10.0).ceil() as u64 + 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arbitrary;
pub mod baselines;
pub mod bucket;
pub mod capacitated;
pub mod dynamic;
pub mod fabric;
pub mod fractional;
pub mod online;
pub mod scaled;
pub mod unit;

pub use analysis::{alpha, optimal_c, theory_factor, C_PAPER, SIZED_BOUND, UNIT_BOUND};
pub use fabric::{run_fabric, CliqueNode, DiffusionNode, FabricAlgo, FabricMsg};
pub use unit::{run_unit, Directionality, UnitConfig, UnitRun, Variant};

/// Numeric tolerance for the fractional bookkeeping that shadows the
/// integral algorithms (see [`bucket`]).
pub(crate) const EPS: f64 = 1e-9;

/// Ceiling with a small tolerance so that accumulated floating-point noise
/// like `4.999999999` rounds to `5` rather than `5.0 + ε → 6`.
pub(crate) fn ceil_tol(x: f64) -> u64 {
    debug_assert!(x > -1.0, "ceil_tol expects (near-)non-negative input");
    let c = (x - EPS).ceil();
    if c <= 0.0 {
        0
    } else {
        c as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_tol_handles_float_noise() {
        assert_eq!(ceil_tol(0.0), 0);
        assert_eq!(ceil_tol(1e-12), 0);
        assert_eq!(ceil_tol(0.5), 1);
        assert_eq!(ceil_tol(4.999999999), 5);
        assert_eq!(ceil_tol(5.0), 5);
        assert_eq!(ceil_tol(5.000000001), 5);
        assert_eq!(ceil_tol(5.1), 6);
    }
}
