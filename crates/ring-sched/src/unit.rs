//! The integral unit-job algorithms: variants **A**, **B**, **C**, each
//! uni- or bidirectional — the six algorithms (`A1 B1 C1 A2 B2 C2`) of the
//! paper's experimental section (§6).
//!
//! * **C** — the analyzed Integral Algorithm (§3 + §4.1): a bucket tops each
//!   processor up to `c · sqrt(work the bucket has seen)`; proven a
//!   4.22-approximation (Corollary 1).
//! * **B** — tops processors up to the best *Lemma 1 lower bound* the bucket
//!   knows from the prefix of the ring it has traversed ("one might expect B
//!   to be a better algorithm"; empirically it was the worst).
//! * **A** — the authors' "initial idea": a *processor* keeps enough jobs to
//!   hold `sqrt(work that has passed by)`, measured from the bucket traffic
//!   it observes rather than from originating work.
//!
//! All three share the bucket kernel of [`crate::bucket`] (fractional
//! shadow + I1/I2 rounding + Lemma 5 wrap-around balancing) and differ
//! only in the drop-off target. The bidirectional versions split each
//! initial bucket in half, one half travelling each way (§6.1).
//!
//! Interpretation notes (details the paper leaves open; also recorded in
//! DESIGN.md):
//!
//! * Variant A tops up the processor's *current backlog* ("removes jobs
//!   from buckets so as to **have** the square root of the work that has
//!   passed by"): the processor re-fills as it drains — the "slightly
//!   better local load balancing" the paper credits A with. B and C top up
//!   cumulative acceptance (explicit in §3's algorithm statement).
//! * Variant B's "best lower bound the bucket knows" is taken over the
//!   prefixes of the bucket's own path — maintainable in O(1) per hop. A
//!   bucket does not retain per-processor loads, so sub-window maxima are
//!   not available to it without O(m) memory per bucket.
//! * Default constants: `c_A = 1.0` (the prose has no constant and this
//!   reproduces the paper's A numbers), `c_B = c_C = 1.77` (B inherits C's
//!   constant — see `UnitConfig::new`). All configurable for ablation.

use crate::analysis::C_PAPER;
use crate::bucket::{drop_balancing, drop_regular, Bucket, DropOutcome, Ledger};
use crate::EPS;
use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder, Persist, Snapshot};
use ring_sim::{
    Audit, Direction, DropKind, DropRecord, Engine, EngineConfig, FaultPlan, Instance, Node,
    NodeCtx, Outbox, ParConfig, Quiescence, RunReport, SimError, StepIo, TraceLevel,
};
use serde::{Deserialize, Serialize};

/// Reports one drop-off to the engine's audit sink (no-op unless the engine
/// is recording a full trace). `bucket` and `ledger` must already reflect
/// the post-drop state — the record carries the *cumulative* levels the
/// oracle re-checks I1/I2 against.
fn record_drop(
    audit: &mut Audit<'_>,
    bucket: &Bucket,
    ledger: &Ledger,
    outcome: DropOutcome,
    kind: DropKind,
) {
    if outcome.int == 0 && outcome.frac <= EPS {
        return;
    }
    audit.record(DropRecord {
        bucket: bucket.id,
        int: outcome.int,
        frac: outcome.frac,
        cum_drop_frac: bucket.dropped_frac,
        cum_accept_frac: ledger.accepted_frac,
        p_max_bucket: 0,
        p_max_node: 0,
        kind,
    });
}

/// Which drop-off target rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// `target = c · sqrt(fractional work that has passed this processor)`.
    A,
    /// `target = c · (best Lemma 1 bound over the bucket's path prefix)`.
    B,
    /// `target = c · sqrt(work originating on the bucket's path)` — the
    /// analyzed algorithm.
    C,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::A => write!(f, "A"),
            Variant::B => write!(f, "B"),
            Variant::C => write!(f, "C"),
        }
    }
}

/// Whether buckets travel one way or both ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directionality {
    /// All buckets travel clockwise (the "1" algorithms).
    Uni,
    /// Each initial bucket is split in half, one half per direction
    /// (the "2" algorithms).
    Bi,
}

/// Configuration of a unit-job run.
#[derive(Debug, Clone, Copy)]
pub struct UnitConfig {
    /// Target rule.
    pub variant: Variant,
    /// Uni- or bidirectional.
    pub directionality: Directionality,
    /// Drop-off constant multiplier.
    pub c: f64,
    /// Event recording level for the underlying engine.
    pub trace: TraceLevel,
    /// Optional step budget override.
    pub max_steps: Option<u64>,
    /// Collect the engine's per-step observability series.
    pub observe: bool,
    /// Enable the engine's quiescent-span step compression
    /// ([`EngineConfig::compress`] — bit-identical results, fewer engine
    /// rounds on drain-dominated instances).
    pub compress: bool,
    /// Locality-window override for the arc-parallel executor
    /// ([`EngineConfig::window`] — bit-identical results for every value;
    /// `None` defers to `RING_WINDOW` / the engine default).
    pub window: Option<u64>,
    /// Parallel-executor strategy knobs ([`EngineConfig::par`] — static
    /// contiguous arcs vs work-stealing with ledger-driven rebalancing;
    /// bit-identical results for every setting).
    pub par: ParConfig,
}

impl UnitConfig {
    fn new(variant: Variant, directionality: Directionality) -> Self {
        let c = match variant {
            // B is "a variant of our algorithm [C] in which buckets drop
            // off jobs so as to bring the work at a processor up to the
            // best lower bound the bucket knows" — same constant, new
            // estimate. Without the constant (c = 1.0) the targets converge
            // to exactly the average load on wide noisy rings and drop-offs
            // stall until the Lemma 5 wrap-around rescues them (~30x
            // factors); see DESIGN.md §5.
            Variant::B | Variant::C => C_PAPER,
            // A's prose has no constant ("the square root of the work that
            // has passed by") and c = 1.0 reproduces the paper's numbers.
            Variant::A => 1.0,
        };
        UnitConfig {
            variant,
            directionality,
            c,
            trace: TraceLevel::Off,
            max_steps: None,
            observe: false,
            compress: false,
            window: None,
            par: ParConfig::default(),
        }
    }

    /// Algorithm A1 (§6): variant A, unidirectional.
    pub fn a1() -> Self {
        Self::new(Variant::A, Directionality::Uni)
    }
    /// Algorithm B1 (§6): variant B, unidirectional.
    pub fn b1() -> Self {
        Self::new(Variant::B, Directionality::Uni)
    }
    /// Algorithm C1 (§6): the analyzed Integral Algorithm, unidirectional.
    pub fn c1() -> Self {
        Self::new(Variant::C, Directionality::Uni)
    }
    /// Algorithm A2 (§6): variant A, bidirectional.
    pub fn a2() -> Self {
        Self::new(Variant::A, Directionality::Bi)
    }
    /// Algorithm B2 (§6): variant B, bidirectional.
    pub fn b2() -> Self {
        Self::new(Variant::B, Directionality::Bi)
    }
    /// Algorithm C2 (§6): variant C, bidirectional.
    pub fn c2() -> Self {
        Self::new(Variant::C, Directionality::Bi)
    }

    /// Parses a paper name (`"c1"`, `"A2"`, …) back into a configuration —
    /// the inverse of [`UnitConfig::name`], used by `ringsched resume` to
    /// rebuild the policy from a snapshot's metadata.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_lowercase().as_str() {
            "a1" => Some(Self::a1()),
            "b1" => Some(Self::b1()),
            "c1" => Some(Self::c1()),
            "a2" => Some(Self::a2()),
            "b2" => Some(Self::b2()),
            "c2" => Some(Self::c2()),
            _ => None,
        }
    }

    /// All six §6 algorithms with their paper names.
    pub fn all_six() -> [(&'static str, UnitConfig); 6] {
        [
            ("A1", Self::a1()),
            ("B1", Self::b1()),
            ("C1", Self::c1()),
            ("A2", Self::a2()),
            ("B2", Self::b2()),
            ("C2", Self::c2()),
        ]
    }

    /// Returns the same configuration with a different drop-off constant
    /// (ablation sweeps).
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Returns the same configuration with full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceLevel::Full;
        self
    }

    /// Returns the same configuration with per-step observability series
    /// collection turned on.
    pub fn with_observe(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Returns the same configuration with quiescent-span step compression
    /// turned on.
    pub fn with_compress(mut self) -> Self {
        self.compress = true;
        self
    }

    /// Returns the same configuration with an explicit locality window for
    /// the arc-parallel executor (`u64::MAX` means "as large as the
    /// shortest arc").
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = Some(window);
        self
    }

    /// The paper's name for this configuration (e.g. `"C1"`).
    pub fn name(&self) -> String {
        format!(
            "{}{}",
            self.variant,
            match self.directionality {
                Directionality::Uni => "1",
                Directionality::Bi => "2",
            }
        )
    }
}

/// Outcome of a unit-job run.
#[derive(Debug, Clone)]
pub struct UnitRun {
    /// Schedule length.
    pub makespan: u64,
    /// The engine's full report (metrics, optional trace).
    pub report: RunReport,
    /// Largest number of hops any bucket travelled.
    pub max_bucket_travel: u64,
    /// Whether any bucket lapped the ring (Lemma 5 balancing engaged).
    pub wrapped: bool,
    /// Jobs each processor accepted (and processed).
    pub assigned: Vec<u64>,
}

/// The per-processor policy state.
#[derive(Debug)]
pub struct UnitNode {
    variant: Variant,
    directionality: Directionality,
    c: f64,
    x: u64,
    backlog: u64,
    processed: u64,
    /// Fractional-shadow backlog: what the fractional algorithm would have
    /// unprocessed here right now (drops added, one unit drained per step).
    /// Variant A's drop rule tops *this* up, not the cumulative acceptance.
    backlog_frac: f64,
    ledger: Ledger,
    /// Largest hop count among buckets seen at this node (diagnostics).
    max_travel_seen: u64,
    /// Whether a balancing-mode bucket passed through (diagnostics).
    saw_balancing: bool,
    /// Whether the initial load has been packed into a bucket yet. Fault
    /// plans can stall a processor through step 0, so emission happens on
    /// the node's *first executed* step rather than at `t == 0`.
    emitted: bool,
    /// Count of buckets this node has emitted, used to mint run-unique
    /// bucket ids (dynamic arrivals emit more than once per node).
    emit_serial: u64,
}

impl UnitNode {
    fn new(cfg: &UnitConfig, x: u64) -> Self {
        UnitNode {
            variant: cfg.variant,
            directionality: cfg.directionality,
            c: cfg.c,
            x,
            backlog: 0,
            processed: 0,
            backlog_frac: 0.0,
            ledger: Ledger::default(),
            max_travel_seen: 0,
            saw_balancing: false,
            emitted: false,
            emit_serial: 0,
        }
    }

    /// The variant-specific fractional target for a bucket at this node.
    /// For variant A, the bucket's content must already be folded into
    /// `ledger.passed_frac`.
    fn target(&self, bucket: &Bucket) -> f64 {
        match self.variant {
            Variant::A => self.c * self.ledger.passed_frac.max(0.0).sqrt(),
            Variant::B => self.c * bucket.best_lb,
            Variant::C => self.c * (bucket.seen_work as f64).sqrt(),
        }
    }

    /// The quantity the drop rule tops up: variant A re-fills the current
    /// (fractional-shadow) backlog as the processor drains it; B and C use
    /// the cumulative acceptance `a_j` of §3.
    fn reference_level(&self) -> f64 {
        match self.variant {
            Variant::A => self.backlog_frac,
            Variant::B | Variant::C => self.ledger.accepted_frac,
        }
    }

    /// Packs `count` fresh jobs (just arrived or initially resident at this
    /// node) into a new bucket: self-drop, optional bidirectional split,
    /// and dispatch. Shared by the static `t = 0` path and the dynamic
    /// online-arrivals extension ([`crate::dynamic`]).
    pub(crate) fn emit_bucket(
        &mut self,
        origin: usize,
        m: usize,
        count: u64,
        outbox: &mut Outbox<'_, Bucket>,
        audit: &mut Audit<'_>,
    ) {
        // `x` re-grows inside this method, so once any emission has happened
        // `pending_work` must stop counting it (the dynamic extension calls
        // this directly, without going through `UnitNode::on_step`).
        self.emitted = true;
        if count == 0 {
            return;
        }
        // Mint a run-unique bucket id: serial-within-node × ring stride,
        // with the counterclockwise half of a bidirectional split offset by
        // `m` (ids only need to be unique, not dense).
        let id = 2 * self.emit_serial * m as u64 + origin as u64;
        self.emit_serial += 1;
        self.x += count;
        let mut b = Bucket::new(origin, Direction::Cw, count);
        b.id = id;
        self.ledger.passed_frac += b.frac;
        self.ledger.passed_int += b.jobs;
        let target = self.target(&b);
        let current = self.reference_level();
        let outcome = drop_regular(&mut b, &mut self.ledger, current, target);
        self.backlog += outcome.int;
        self.backlog_frac += outcome.frac;
        record_drop(audit, &b, &self.ledger, outcome, DropKind::Regular);
        if !b.is_spent() {
            if m == 1 {
                // Degenerate singleton ring: nowhere to send; keep
                // everything (the target rule may have left some).
                self.backlog += b.jobs;
                self.backlog_frac += b.frac;
                let keep = DropOutcome {
                    frac: b.frac,
                    int: b.jobs,
                };
                self.ledger.accepted_int += b.jobs;
                self.ledger.accepted_frac += b.frac;
                b.dropped_int += b.jobs;
                b.dropped_frac += b.frac;
                b.jobs = 0;
                b.frac = 0.0;
                record_drop(audit, &b, &self.ledger, keep, DropKind::Regular);
            } else if self.directionality == Directionality::Bi && m > 2 {
                let mut ccw = b.split_for_bidirectional();
                ccw.id = id + m as u64;
                if !ccw.is_spent() {
                    outbox.push(Direction::Ccw, ccw);
                }
                if !b.is_spent() {
                    outbox.push(Direction::Cw, b);
                }
            } else {
                outbox.push(Direction::Cw, b);
            }
        }
    }

    /// Receives one travelling bucket: advance its per-hop bookkeeping and
    /// run the drop-off negotiation. Shared with [`crate::dynamic`].
    pub(crate) fn receive_bucket(
        &mut self,
        mut bucket: Bucket,
        outbox: &mut Outbox<'_, Bucket>,
        audit: &mut Audit<'_>,
        m: usize,
    ) {
        bucket.arrive(self.x, m);
        self.handle_bucket(bucket, outbox, audit, m);
    }

    /// Processes one unit of resident work if any, and advances the
    /// fractional shadow's drain. Shared with [`crate::dynamic`].
    pub(crate) fn process_tick(&mut self) -> u64 {
        let work_done = if self.backlog > 0 {
            self.backlog -= 1;
            self.processed += 1;
            1
        } else {
            0
        };
        self.backlog_frac = (self.backlog_frac - 1.0).max(0.0);
        work_done
    }

    /// The integral backlog the node would drain over quiet rounds — the
    /// [`Quiescence`] backlog for both [`UnitNode`] and
    /// [`crate::dynamic::DynamicNode`].
    pub(crate) fn quiet_backlog(&self) -> u64 {
        self.backlog
    }

    /// Replays `steps` calls to [`UnitNode::process_tick`] analytically.
    /// Exact, including the fractional shadow: repeated `(x - 1.0).max(0.0)`
    /// equals `(x - steps).max(0.0)` bit-for-bit because each unit
    /// subtraction while `x ≥ 1` is exact for `x < 2^53` (the ledgers sum
    /// far fewer than 2^53 units) and the first negative result clamps to
    /// `+0.0` either way. Shared with [`crate::dynamic`].
    pub(crate) fn fast_forward_drain(&mut self, steps: u64) {
        let d = self.backlog.min(steps);
        self.backlog -= d;
        self.processed += d;
        self.backlog_frac = (self.backlog_frac - steps as f64).max(0.0);
    }

    /// Serializes the node's mutable state (the algorithm constants —
    /// variant, directionality, `c` — come from the rebuilt configuration
    /// on restore, so they are not written). Shared with
    /// [`crate::dynamic::DynamicNode`], which wraps a `UnitNode`.
    pub(crate) fn save_mut_state(&self, enc: &mut Encoder) {
        enc.u64(self.x);
        enc.u64(self.backlog);
        enc.u64(self.processed);
        enc.f64(self.backlog_frac);
        self.ledger.save(enc);
        enc.u64(self.max_travel_seen);
        enc.bool(self.saw_balancing);
        enc.bool(self.emitted);
        enc.u64(self.emit_serial);
    }

    /// Inverse of [`UnitNode::save_mut_state`].
    pub(crate) fn restore_mut_state(
        &mut self,
        dec: &mut Decoder<'_>,
    ) -> Result<(), CheckpointError> {
        self.x = dec.u64()?;
        self.backlog = dec.u64()?;
        self.processed = dec.u64()?;
        self.backlog_frac = dec.f64()?;
        self.ledger = Ledger::load(dec)?;
        self.max_travel_seen = dec.u64()?;
        self.saw_balancing = dec.bool()?;
        self.emitted = dec.bool()?;
        self.emit_serial = dec.u64()?;
        Ok(())
    }

    /// Accepts a bucket at this node: run the drop-off negotiation and
    /// forward the bucket if it still holds anything.
    fn handle_bucket(
        &mut self,
        mut bucket: Bucket,
        outbox: &mut Outbox<'_, Bucket>,
        audit: &mut Audit<'_>,
        m: usize,
    ) {
        self.max_travel_seen = self.max_travel_seen.max(bucket.hops);
        self.ledger.passed_frac += bucket.frac;
        self.ledger.passed_int += bucket.jobs;
        let (outcome, kind) = if bucket.balancing {
            self.saw_balancing = true;
            let kind = if bucket.spill > 0 {
                DropKind::Forced
            } else {
                DropKind::Balancing
            };
            (drop_balancing(&mut bucket, &mut self.ledger, m), kind)
        } else {
            let target = self.target(&bucket);
            let current = self.reference_level();
            (
                drop_regular(&mut bucket, &mut self.ledger, current, target),
                DropKind::Regular,
            )
        };
        self.backlog += outcome.int;
        self.backlog_frac += outcome.frac;
        record_drop(audit, &bucket, &self.ledger, outcome, kind);
        if !bucket.is_spent() {
            outbox.push(bucket.dir, bucket);
        }
    }
}

impl Node for UnitNode {
    type Msg = Bucket;

    fn on_step(&mut self, ctx: &NodeCtx, io: &mut StepIo<'_, Bucket>) -> u64 {
        let m = ctx.topo.len();

        if !self.emitted {
            // Pack all local jobs into a bucket, drop the origin's share,
            // split if bidirectional, and send the rest on its way. This is
            // step 0 in a fault-free run; a processor stalled through step 0
            // emits on its first executed step instead (the retry/re-emit
            // recovery rule — no work is ever lost to a stall).
            self.emitted = true;
            let count = std::mem::take(&mut self.x);
            self.emit_bucket(ctx.id, m, count, &mut io.out, &mut io.audit);
        }
        // Fault-free, at most one bucket arrives per direction per step (all
        // buckets advance in lock-step); after a stall the backlog of
        // carried-over deliveries lands at once. Process the clockwise
        // travellers first — a fixed, documented order so runs are
        // deterministic.
        for bucket in io
            .inbox
            .from_ccw
            .drain(..)
            .chain(io.inbox.from_cw.drain(..))
        {
            self.receive_bucket(bucket, &mut io.out, &mut io.audit, m);
        }

        self.process_tick()
    }

    fn pending_work(&self) -> u64 {
        self.backlog + if self.emitted { 0 } else { self.x }
    }

    fn quiescence(&self, _now: u64) -> Option<Quiescence> {
        // After the initial emission the node is purely reactive: with
        // empty inboxes it neither sends nor audits, it just drains — so
        // the span is unbounded. Before the emission the first step sends
        // the initial bucket, so the node declines.
        self.emitted.then_some(Quiescence {
            span: u64::MAX,
            backlog: self.backlog,
        })
    }

    fn fast_forward(&mut self, steps: u64) {
        self.fast_forward_drain(steps);
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        self.save_mut_state(enc);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.restore_mut_state(dec)
    }
}

/// Builds the per-processor policy nodes for an instance — used by
/// [`run_unit`] and by alternative executors such as the threaded one in
/// `ring-net`.
pub fn build_unit_nodes(instance: &Instance, cfg: &UnitConfig) -> Vec<UnitNode> {
    assert!(cfg.c > 0.0, "the drop-off constant must be positive");
    instance
        .loads()
        .iter()
        .map(|&x| UnitNode::new(cfg, x))
        .collect()
}

impl UnitNode {
    /// Jobs this node accepted so far (its share of the schedule).
    pub fn accepted(&self) -> u64 {
        self.ledger.accepted_int
    }

    /// Jobs this node has processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// Runs one of the six unit-job algorithms on an instance.
///
/// ```
/// use ring_sim::Instance;
/// use ring_sched::unit::{run_unit, UnitConfig};
///
/// let inst = Instance::concentrated(16, 0, 64);
/// let run = run_unit(&inst, &UnitConfig::a2()).unwrap();
/// assert_eq!(run.assigned.iter().sum::<u64>(), 64); // every job placed
/// assert!(run.makespan >= 8);                       // sqrt(64) is optimal
/// ```
pub fn run_unit(instance: &Instance, cfg: &UnitConfig) -> Result<UnitRun, SimError> {
    let mut engine = unit_engine(instance, cfg, None);
    let report = engine.run()?;
    Ok(finish_unit_run(engine, report))
}

/// Runs one of the six unit-job algorithms through the arc-parallel engine.
///
/// The ring is split into `shards` contiguous arcs stepped on scoped
/// threads ([`Engine::par_run`]); the resulting [`UnitRun`] is bit-for-bit
/// identical to [`run_unit`]'s on the same instance and config.
pub fn run_unit_par(
    instance: &Instance,
    cfg: &UnitConfig,
    shards: usize,
) -> Result<UnitRun, SimError> {
    let mut engine = unit_engine(instance, cfg, None);
    let report = engine.par_run(shards)?;
    Ok(finish_unit_run(engine, report))
}

/// Runs one of the six unit-job algorithms under a deterministic fault
/// plan: downed/delayed/capped links hold buckets back (the engine re-sends
/// them as the fault allows) and stalled processors defer both their
/// initial emission and their drop-off negotiations to their next executed
/// step. All work is still placed and processed; only the makespan and the
/// fault counters in `report.metrics` change.
pub fn run_unit_faulty(
    instance: &Instance,
    cfg: &UnitConfig,
    plan: &FaultPlan,
) -> Result<UnitRun, SimError> {
    let mut engine = unit_engine(instance, cfg, Some(plan.clone()));
    let report = engine.run()?;
    Ok(finish_unit_run(engine, report))
}

/// [`run_unit_faulty`] through the arc-parallel engine — bit-for-bit
/// identical to the sequential run on the same instance, config, and plan.
pub fn run_unit_par_faulty(
    instance: &Instance,
    cfg: &UnitConfig,
    plan: &FaultPlan,
    shards: usize,
) -> Result<UnitRun, SimError> {
    let mut engine = unit_engine(instance, cfg, Some(plan.clone()));
    let report = engine.par_run(shards)?;
    Ok(finish_unit_run(engine, report))
}

/// Runs a unit-job algorithm with snapshotting: `sink` receives a
/// [`Snapshot`] at every `every`-step boundary (the CLI writes them to
/// disk). `shards` of `None` runs the sequential engine, `Some(s)` the
/// arc-parallel one — the snapshots and the final [`UnitRun`] are
/// bit-identical either way, and identical to the uncheckpointed run.
pub fn run_unit_checkpointed<F>(
    instance: &Instance,
    cfg: &UnitConfig,
    plan: Option<&FaultPlan>,
    shards: Option<usize>,
    every: u64,
    meta: &str,
    sink: F,
) -> Result<UnitRun, SimError>
where
    F: FnMut(&Snapshot) -> Result<(), CheckpointError> + Send + 'static,
{
    let nodes = build_unit_nodes(instance, cfg);
    let engine_cfg = EngineConfig {
        max_steps: cfg.max_steps,
        trace: cfg.trace,
        observe: cfg.observe,
        faults: plan.cloned(),
        compress: cfg.compress,
        window: cfg.window,
        par: cfg.par,
        checkpoint_meta: meta.to_string(),
        ..EngineConfig::default()
    }
    .checkpoint_every(every);
    let mut engine = Engine::new(nodes, instance.total_work(), engine_cfg);
    engine.on_checkpoint(sink);
    let report = match shards {
        Some(s) => engine.par_run(s)?,
        None => engine.run()?,
    };
    Ok(finish_unit_run(engine, report))
}

/// Resumes a unit-job run from a [`Snapshot`] and runs it to completion.
///
/// The policy configuration (`variant`, `directionality`, `c`) is rebuilt
/// from `cfg` — it is deliberately not in the snapshot — while everything
/// the interrupted run had computed (node state, in-flight messages, the
/// fault plan with its staged queues, metrics, trace, observability) is
/// restored from the snapshot. The completed [`UnitRun`] is bit-for-bit
/// identical to the uninterrupted run's, whatever `shards` is here or was
/// at save time.
pub fn resume_unit(
    cfg: &UnitConfig,
    snap: &Snapshot,
    shards: Option<usize>,
) -> Result<UnitRun, SimError> {
    // Initial loads only seed node state, which the snapshot overwrites;
    // the ring size is taken from the snapshot itself.
    let nodes: Vec<UnitNode> = (0..snap.m).map(|_| UnitNode::new(cfg, 0)).collect();
    let engine_cfg = EngineConfig {
        max_steps: cfg.max_steps,
        trace: cfg.trace,
        observe: cfg.observe,
        compress: cfg.compress,
        window: cfg.window,
        par: cfg.par,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::resume(nodes, engine_cfg, snap).map_err(|error| SimError::Checkpoint {
            step: snap.t,
            error,
        })?;
    let report = match shards {
        Some(s) => engine.par_run(s)?,
        None => engine.run()?,
    };
    Ok(finish_unit_run(engine, report))
}

fn unit_engine(
    instance: &Instance,
    cfg: &UnitConfig,
    faults: Option<FaultPlan>,
) -> Engine<UnitNode> {
    let nodes = build_unit_nodes(instance, cfg);
    let engine_cfg = EngineConfig {
        max_steps: cfg.max_steps,
        trace: cfg.trace,
        observe: cfg.observe,
        faults,
        compress: cfg.compress,
        window: cfg.window,
        par: cfg.par,
        ..EngineConfig::default()
    };
    Engine::new(nodes, instance.total_work(), engine_cfg)
}

fn finish_unit_run(engine: Engine<UnitNode>, report: RunReport) -> UnitRun {
    let nodes = engine.into_nodes();
    let max_bucket_travel = nodes.iter().map(|n| n.max_travel_seen).max().unwrap_or(0);
    let wrapped = nodes.iter().any(|n| n.saw_balancing);
    let assigned = nodes.iter().map(|n| n.ledger.accepted_int).collect();
    UnitRun {
        makespan: report.makespan,
        max_bucket_travel,
        wrapped,
        assigned,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_opt::exact::{optimum_uncapacitated, SolverBudget};
    use ring_sim::validate_run;

    fn opt(inst: &Instance, hint: u64) -> u64 {
        optimum_uncapacitated(inst, Some(hint), &SolverBudget::default()).value()
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<String> = UnitConfig::all_six()
            .iter()
            .map(|(_, c)| c.name())
            .collect();
        assert_eq!(names, vec!["A1", "B1", "C1", "A2", "B2", "C2"]);
    }

    #[test]
    fn empty_instance_all_variants() {
        let inst = Instance::empty(8);
        for (_, cfg) in UnitConfig::all_six() {
            let run = run_unit(&inst, &cfg).unwrap();
            assert_eq!(run.makespan, 0);
        }
    }

    #[test]
    fn single_processor_ring_runs_locally() {
        let inst = Instance::from_loads(vec![23]);
        for (_, cfg) in UnitConfig::all_six() {
            let run = run_unit(&inst, &cfg).unwrap();
            assert_eq!(run.makespan, 23, "{}", cfg.name());
        }
    }

    #[test]
    fn all_variants_conserve_work() {
        let inst = Instance::from_loads(vec![40, 0, 3, 19, 0, 0, 7, 0, 0, 1]);
        for (_, cfg) in UnitConfig::all_six() {
            let run = run_unit(&inst, &cfg).unwrap();
            let total: u64 = run.assigned.iter().sum();
            assert_eq!(total, 70, "{}", cfg.name());
            assert_eq!(run.report.metrics.total_processed(), 70);
        }
    }

    #[test]
    fn traces_validate_for_all_variants() {
        let inst = Instance::from_loads(vec![25, 0, 0, 9, 0, 2, 0, 0]);
        for (_, cfg) in UnitConfig::all_six() {
            let run = run_unit(&inst, &cfg.with_trace()).unwrap();
            let violations = validate_run(&inst, &run.report);
            assert!(violations.is_empty(), "{}: {violations:?}", cfg.name());
        }
    }

    #[test]
    fn c1_respects_theorem1_bound() {
        // makespan <= 4.22·OPT + 2 (Corollary 1) on a spread of instances.
        let cases = [
            Instance::concentrated(64, 0, 1000),
            Instance::from_loads(vec![100, 0, 0, 0, 100, 0, 0, 0]),
            Instance::from_loads((0..50).map(|i| (i % 7) as u64).collect()),
            Instance::from_loads(vec![500, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1]),
        ];
        for inst in &cases {
            let run = run_unit(inst, &UnitConfig::c1()).unwrap();
            let o = opt(inst, run.makespan);
            assert!(
                run.makespan as f64 <= 4.22 * o as f64 + 2.0,
                "makespan {} vs 4.22·{} + 2",
                run.makespan,
                o
            );
        }
    }

    #[test]
    fn all_variants_below_worst_case_on_concentrated() {
        // No variant should be catastrophically bad on the canonical
        // concentrated instance (paper: all six behaved well).
        let inst = Instance::concentrated(128, 0, 4096);
        let o = 64; // sqrt(4096)
        for (_, cfg) in UnitConfig::all_six() {
            let run = run_unit(&inst, &cfg).unwrap();
            assert!(
                run.makespan <= 6 * o,
                "{}: makespan {} vs OPT {}",
                cfg.name(),
                run.makespan,
                o
            );
        }
    }

    #[test]
    fn integral_close_to_fractional_shadow() {
        // Lemma 6: the integral algorithm finishes at most 2 steps after
        // the fractional one (we allow +3 for the ceil on the fractional
        // makespan).
        use crate::fractional::{run_fractional, FractionalConfig};
        let cases = [
            Instance::concentrated(100, 0, 900),
            Instance::from_loads(vec![50, 20, 0, 0, 10, 0, 70, 0, 0, 0, 0, 0]),
        ];
        for inst in &cases {
            let int = run_unit(inst, &UnitConfig::c1()).unwrap();
            let frac = run_fractional(inst, &FractionalConfig::default());
            assert!(
                int.makespan as f64 <= frac.makespan.ceil() + 3.0,
                "integral {} vs fractional {}",
                int.makespan,
                frac.makespan
            );
        }
    }

    #[test]
    fn wraparound_small_ring_heavy_load() {
        let inst = Instance::concentrated(6, 0, 50_000);
        let run = run_unit(&inst, &UnitConfig::c1()).unwrap();
        assert!(run.wrapped);
        // Lemma 5: schedule <= 2m + L-ish; L = ceil(50000/6) = 8334.
        assert!(
            run.makespan <= 8334 + 2 * 6 + 2,
            "makespan {}",
            run.makespan
        );
    }

    #[test]
    fn bidirectional_splits_traffic() {
        let inst = Instance::concentrated(256, 0, 10_000);
        let uni = run_unit(&inst, &UnitConfig::c1()).unwrap();
        let bi = run_unit(&inst, &UnitConfig::c2()).unwrap();
        // Both directions are used by C2.
        assert!(bi.makespan <= uni.makespan + 2);
        // C2's buckets travel less far per direction on a concentrated pile.
        assert!(bi.max_bucket_travel <= uni.max_bucket_travel + 1);
    }

    #[test]
    fn two_processor_ring_bidirectional_degenerates() {
        let inst = Instance::from_loads(vec![10, 0]);
        let run = run_unit(&inst, &UnitConfig::c2()).unwrap();
        let total: u64 = run.assigned.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn makespan_at_least_lower_bound_always() {
        let cases = [
            Instance::concentrated(32, 7, 333),
            Instance::from_loads(vec![12, 5, 0, 0, 44, 3, 0, 0, 0, 9]),
        ];
        for inst in &cases {
            let lb = ring_opt::uncapacitated_lower_bound(inst);
            for (_, cfg) in UnitConfig::all_six() {
                let run = run_unit(inst, &cfg).unwrap();
                assert!(
                    run.makespan >= lb,
                    "{}: {} < {}",
                    cfg.name(),
                    run.makespan,
                    lb
                );
            }
        }
    }

    #[test]
    fn custom_c_changes_behavior() {
        let inst = Instance::concentrated(200, 0, 2500);
        let tight = run_unit(&inst, &UnitConfig::c1().with_c(3.0)).unwrap();
        let loose = run_unit(&inst, &UnitConfig::c1().with_c(0.9)).unwrap();
        assert!(tight.max_bucket_travel < loose.max_bucket_travel);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_c_rejected() {
        let inst = Instance::concentrated(4, 0, 4);
        let _ = run_unit(&inst, &UnitConfig::c1().with_c(0.0));
    }
}
