//! The arbitrary-job-size algorithm of §4.2.
//!
//! Jobs have integral processing times `p_{i,j}` and must each run entirely
//! on one processor without preemption. The algorithm simulates the
//! integral algorithm's fractional shadow on the *work* totals
//! (`x_i = Σ_j p_{i,j}`) and rounds with slack `p_max` instead of 1
//! (constraints A1/A2):
//!
//! * **A1** — a bucket's total dropped work through time `t` is at most
//!   `ceil(D(t)) + p_max`;
//! * **A2** — a processor's total accepted work through time `t` is at most
//!   `1 + ceil(R(t)) + p_max`.
//!
//! Drop-off is greedy: "each processor goes through the bucket and greedily
//! chooses jobs until no more can be chosen without violating one of the
//! constraints".
//!
//! Processors do **not** know `p_max` globally; following the paper, each
//! party uses the largest job *it has seen so far* (a bucket: the largest
//! job it has carried; a processor: the largest job that has passed it).
//! Corollary 2: this is a 5.22-approximation against
//! `max{L, p_max}`.

use crate::bucket::Ledger;
use crate::{analysis::C_PAPER, ceil_tol, EPS};
use ring_sim::checkpoint::{CheckpointError, Decoder, Encoder, Persist};
use ring_sim::{
    Direction, Engine, EngineConfig, Job, Node, NodeCtx, Payload, Quiescence, RunReport, SimError,
    SizedInstance, StepIo, TraceLevel,
};
use std::collections::VecDeque;

/// Configuration of an arbitrary-size run.
#[derive(Debug, Clone, Copy)]
pub struct ArbitraryConfig {
    /// Drop-off constant (paper: 1.77; the target rule is the analyzed
    /// variant-C rule).
    pub c: f64,
    /// Send half of each initial bucket in each direction.
    pub bidirectional: bool,
    /// Event recording level.
    pub trace: TraceLevel,
    /// Optional step budget override.
    pub max_steps: Option<u64>,
    /// Enable the engine's quiescent-span step compression (bit-identical
    /// results; collapses the long non-preemptive drain tails sized
    /// instances end with).
    pub compress: bool,
}

impl Default for ArbitraryConfig {
    fn default() -> Self {
        ArbitraryConfig {
            c: C_PAPER,
            bidirectional: false,
            trace: TraceLevel::Off,
            max_steps: None,
            compress: false,
        }
    }
}

/// A travelling bucket of whole jobs plus the work-based fractional shadow.
#[derive(Debug, Clone)]
pub struct SizedBucket {
    /// Origin processor.
    pub origin: usize,
    /// Travel direction.
    pub dir: Direction,
    /// Whole jobs still carried.
    pub jobs: Vec<Job>,
    /// Total size of `jobs`.
    pub work: u64,
    /// Fractional-shadow content.
    pub frac: f64,
    /// Work originating on visited processors.
    pub seen_work: u64,
    /// Cumulative fractional drop `D(t)`.
    pub dropped_frac: f64,
    /// Cumulative integral (work-unit) drop.
    pub dropped_work: u64,
    /// Largest job this bucket has carried (its `p_max` estimate).
    pub p_max_seen: u64,
    /// Hops travelled.
    pub hops: u64,
    /// Lemma 5 balancing mode.
    pub balancing: bool,
    /// Global total work (valid once balancing).
    pub total_work: u64,
}

impl SizedBucket {
    fn new(origin: usize, dir: Direction, jobs: Vec<Job>) -> Self {
        let work: u64 = jobs.iter().map(|j| j.size).sum();
        let p_max_seen = jobs.iter().map(|j| j.size).max().unwrap_or(0);
        SizedBucket {
            origin,
            dir,
            jobs,
            work,
            frac: work as f64,
            seen_work: work,
            dropped_frac: 0.0,
            dropped_work: 0,
            p_max_seen,
            hops: 0,
            balancing: false,
            total_work: 0,
        }
    }

    fn is_spent(&self) -> bool {
        self.jobs.is_empty() && self.frac < EPS
    }

    fn arrive(&mut self, x: u64, m: usize) {
        self.hops += 1;
        if self.balancing {
            return;
        }
        if self.hops >= m as u64 {
            self.balancing = true;
            self.total_work = self.seen_work;
        } else {
            self.seen_work += x;
        }
    }
}

impl Payload for SizedBucket {
    fn job_units(&self) -> u64 {
        self.work
    }
}

impl Persist for SizedBucket {
    fn save(&self, enc: &mut Encoder) {
        enc.usize(self.origin);
        self.dir.save(enc);
        save_jobs(&self.jobs, enc);
        enc.u64(self.work);
        enc.f64(self.frac);
        enc.u64(self.seen_work);
        enc.f64(self.dropped_frac);
        enc.u64(self.dropped_work);
        enc.u64(self.p_max_seen);
        enc.u64(self.hops);
        enc.bool(self.balancing);
        enc.u64(self.total_work);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(SizedBucket {
            origin: dec.usize()?,
            dir: Direction::load(dec)?,
            jobs: load_jobs(dec)?,
            work: dec.u64()?,
            frac: dec.f64()?,
            seen_work: dec.u64()?,
            dropped_frac: dec.f64()?,
            dropped_work: dec.u64()?,
            p_max_seen: dec.u64()?,
            hops: dec.u64()?,
            balancing: dec.bool()?,
            total_work: dec.u64()?,
        })
    }
}

fn save_jobs(jobs: &[Job], enc: &mut Encoder) {
    enc.usize(jobs.len());
    for job in jobs {
        job.save(enc);
    }
}

fn load_jobs(dec: &mut Decoder<'_>) -> Result<Vec<Job>, CheckpointError> {
    let n = dec.usize()?;
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        jobs.push(Job::load(dec)?);
    }
    Ok(jobs)
}

/// Per-processor policy state for the arbitrary-size algorithm.
#[derive(Debug)]
pub struct SizedNode {
    c: f64,
    bidirectional: bool,
    /// Initial resident jobs (consumed into the bucket at t = 0).
    initial: Vec<Job>,
    /// Initial work `x_i`.
    x: u64,
    /// Accepted jobs waiting to run (FIFO, no preemption).
    queue: VecDeque<Job>,
    /// Units left on the job currently running.
    current_remaining: u64,
    ledger: Ledger,
    /// Largest job that has passed this processor (its `p_max` estimate).
    p_max_seen: u64,
    /// Jobs this node accepted (ids, diagnostics).
    accepted_jobs: u64,
    max_travel_seen: u64,
    saw_balancing: bool,
}

impl SizedNode {
    fn new(cfg: &ArbitraryConfig, jobs: Vec<Job>) -> Self {
        let x = jobs.iter().map(|j| j.size).sum();
        SizedNode {
            c: cfg.c,
            bidirectional: cfg.bidirectional,
            initial: jobs,
            x,
            queue: VecDeque::new(),
            current_remaining: 0,
            ledger: Ledger::default(),
            p_max_seen: 0,
            accepted_jobs: 0,
            max_travel_seen: 0,
            saw_balancing: false,
        }
    }

    /// Greedy drop-off under constraints A1/A2 (or the balancing rule).
    fn negotiate_with_m(&mut self, bucket: &mut SizedBucket, m: usize) {
        self.max_travel_seen = self.max_travel_seen.max(bucket.hops);
        // The processor sees every job in the bucket go by.
        self.p_max_seen = self
            .p_max_seen
            .max(bucket.jobs.iter().map(|j| j.size).max().unwrap_or(0));
        self.ledger.passed_frac += bucket.frac;
        self.ledger.passed_int += bucket.work;

        if bucket.balancing {
            self.saw_balancing = true;
            // Accept greedily while under the average-work target; the
            // crossing job may overshoot (bounded by p_max), which keeps
            // the emptying argument intact: any under-target processor
            // accepts at least one job per visit.
            let m_target = bucket.total_work.div_ceil(m as u64);
            let mut kept = Vec::with_capacity(bucket.jobs.len());
            for job in bucket.jobs.drain(..) {
                if self.ledger.accepted_int < m_target {
                    self.accept(job);
                    bucket.work -= job.size;
                    bucket.dropped_work += job.size;
                } else {
                    kept.push(job);
                }
            }
            bucket.jobs = kept;
            // Fractional shadow follows the same average target.
            let target_frac = bucket.total_work as f64 / m as f64;
            let d_frac = (target_frac - self.ledger.accepted_frac).clamp(0.0, bucket.frac);
            bucket.frac -= d_frac;
            if bucket.frac < EPS {
                bucket.frac = 0.0;
            }
            bucket.dropped_frac += d_frac;
            self.ledger.accepted_frac += d_frac;
            return;
        }

        // Fractional shadow: variant-C target on work totals.
        let target = self.c * (bucket.seen_work as f64).sqrt();
        let d_frac = (target - self.ledger.accepted_frac).clamp(0.0, bucket.frac);
        bucket.frac -= d_frac;
        if bucket.frac < EPS {
            bucket.frac = 0.0;
        }
        bucket.dropped_frac += d_frac;
        self.ledger.accepted_frac += d_frac;

        // Greedy integral drop under A1/A2.
        let a1_cap = ceil_tol(bucket.dropped_frac) + bucket.p_max_seen;
        let a2_cap = 1 + ceil_tol(self.ledger.accepted_frac) + self.p_max_seen;
        let mut kept = Vec::with_capacity(bucket.jobs.len());
        for job in bucket.jobs.drain(..) {
            let fits_a1 = bucket.dropped_work + job.size <= a1_cap;
            let fits_a2 = self.ledger.accepted_int + job.size <= a2_cap;
            if fits_a1 && fits_a2 {
                bucket.work -= job.size;
                bucket.dropped_work += job.size;
                self.accept(job);
            } else {
                kept.push(job);
            }
        }
        bucket.jobs = kept;
    }

    fn accept(&mut self, job: Job) {
        self.ledger.accepted_int += job.size;
        self.accepted_jobs += 1;
        self.queue.push_back(job);
    }
}

impl Node for SizedNode {
    type Msg = SizedBucket;

    fn on_step(&mut self, ctx: &NodeCtx, io: &mut StepIo<'_, SizedBucket>) -> u64 {
        let m = ctx.topo.len();

        if ctx.t == 0 {
            let jobs = std::mem::take(&mut self.initial);
            if !jobs.is_empty() {
                let mut b = SizedBucket::new(ctx.id, Direction::Cw, jobs);
                self.negotiate_with_m(&mut b, m);
                if !b.is_spent() {
                    if m == 1 {
                        for job in b.jobs.drain(..) {
                            self.accept(job);
                        }
                    } else if self.bidirectional && m > 2 {
                        let ccw = split_sized(&mut b);
                        if !ccw.is_spent() {
                            io.out.push(Direction::Ccw, ccw);
                        }
                        if !b.is_spent() {
                            io.out.push(Direction::Cw, b);
                        }
                    } else {
                        io.out.push(Direction::Cw, b);
                    }
                }
            }
        } else {
            for msg in io
                .inbox
                .from_ccw
                .drain(..)
                .chain(io.inbox.from_cw.drain(..))
            {
                let mut bucket = msg;
                bucket.arrive(self.x, m);
                self.negotiate_with_m(&mut bucket, m);
                if !bucket.is_spent() {
                    io.out.push(bucket.dir, bucket);
                }
            }
        }

        // Non-preemptive processing: one unit per step into the current job.
        let mut work_done = 0;
        if self.current_remaining == 0 {
            if let Some(job) = self.queue.pop_front() {
                self.current_remaining = job.size;
            }
        }
        if self.current_remaining > 0 {
            self.current_remaining -= 1;
            work_done = 1;
        }
        work_done
    }

    fn pending_work(&self) -> u64 {
        self.current_remaining + self.queue.iter().map(|j| j.size).sum::<u64>()
    }

    fn quiescence(&self, now: u64) -> Option<Quiescence> {
        // Step 0 is the emission step; from step 1 on the node is purely
        // reactive and, with empty inboxes, drains one unit per round
        // (instance job sizes are ≥ 1, so the round that pops a job also
        // works on it).
        (now > 0).then_some(Quiescence {
            span: u64::MAX,
            backlog: self.pending_work(),
        })
    }

    fn fast_forward(&mut self, steps: u64) {
        // Replays the non-preemptive processing loop: finish the current
        // job, pop the next, and stop with the pop deferred when a job
        // completes on the span's last round — exactly the per-round
        // state.
        let mut remaining = steps;
        while remaining > 0 {
            if self.current_remaining == 0 {
                match self.queue.pop_front() {
                    Some(job) => self.current_remaining = job.size,
                    None => break,
                }
            }
            let d = self.current_remaining.min(remaining);
            self.current_remaining -= d;
            remaining -= d;
        }
    }

    // `c` and `bidirectional` are configuration, rebuilt on restore.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        save_jobs(&self.initial, enc);
        enc.u64(self.x);
        enc.usize(self.queue.len());
        for job in &self.queue {
            job.save(enc);
        }
        enc.u64(self.current_remaining);
        self.ledger.save(enc);
        enc.u64(self.p_max_seen);
        enc.u64(self.accepted_jobs);
        enc.u64(self.max_travel_seen);
        enc.bool(self.saw_balancing);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.initial = load_jobs(dec)?;
        self.x = dec.u64()?;
        let n = dec.usize()?;
        let mut queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            queue.push_back(Job::load(dec)?);
        }
        self.queue = queue;
        self.current_remaining = dec.u64()?;
        self.ledger = Ledger::load(dec)?;
        self.p_max_seen = dec.u64()?;
        self.accepted_jobs = dec.u64()?;
        self.max_travel_seen = dec.u64()?;
        self.saw_balancing = dec.bool()?;
        Ok(())
    }
}

/// Splits a bucket's jobs into two near-equal-work halves (first-fit onto
/// the lighter half; the clockwise half keeps ties).
fn split_sized(b: &mut SizedBucket) -> SizedBucket {
    let jobs = std::mem::take(&mut b.jobs);
    let mut cw: Vec<Job> = Vec::with_capacity(jobs.len());
    let mut ccw: Vec<Job> = Vec::with_capacity(jobs.len());
    let (mut wcw, mut wccw) = (0u64, 0u64);
    for job in jobs {
        if wcw <= wccw {
            wcw += job.size;
            cw.push(job);
        } else {
            wccw += job.size;
            ccw.push(job);
        }
    }
    let half_frac = b.frac / 2.0;
    b.jobs = cw;
    b.work = wcw;
    b.frac = half_frac;
    b.dropped_frac = 0.0;
    b.dropped_work = 0;
    SizedBucket {
        origin: b.origin,
        dir: Direction::Ccw,
        jobs: ccw,
        work: wccw,
        frac: half_frac,
        seen_work: b.seen_work,
        dropped_frac: 0.0,
        dropped_work: 0,
        p_max_seen: b.p_max_seen,
        hops: 0,
        balancing: false,
        total_work: 0,
    }
}

/// Outcome of an arbitrary-size run.
#[derive(Debug, Clone)]
pub struct ArbitraryRun {
    /// Schedule length.
    pub makespan: u64,
    /// Engine report.
    pub report: RunReport,
    /// Work accepted per processor.
    pub assigned_work: Vec<u64>,
    /// Jobs accepted per processor.
    pub assigned_jobs: Vec<u64>,
    /// Whether any bucket lapped the ring.
    pub wrapped: bool,
    /// Largest bucket travel distance.
    pub max_bucket_travel: u64,
}

/// Runs the arbitrary-size algorithm on a sized instance.
///
/// ```
/// use ring_sim::SizedInstance;
/// use ring_sched::arbitrary::{run_arbitrary, ArbitraryConfig};
///
/// // A batch of uneven jobs at one node.
/// let inst = SizedInstance::from_sizes(vec![vec![8, 5, 5, 2], vec![], vec![], vec![]]);
/// let run = run_arbitrary(&inst, &ArbitraryConfig::default()).unwrap();
/// assert_eq!(run.assigned_work.iter().sum::<u64>(), 20);
/// assert!(run.makespan >= 8); // p_max is a lower bound
/// ```
pub fn run_arbitrary(
    instance: &SizedInstance,
    cfg: &ArbitraryConfig,
) -> Result<ArbitraryRun, SimError> {
    assert!(cfg.c > 0.0, "the drop-off constant must be positive");
    let nodes: Vec<SizedNode> = (0..instance.num_processors())
        .map(|i| SizedNode::new(cfg, instance.jobs_at(i).to_vec()))
        .collect();
    let engine_cfg = EngineConfig {
        max_steps: cfg.max_steps,
        trace: cfg.trace,
        compress: cfg.compress,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, instance.total_work(), engine_cfg);
    let report = engine.run()?;
    let nodes = engine.into_nodes();
    Ok(ArbitraryRun {
        makespan: report.makespan,
        assigned_work: nodes.iter().map(|n| n.ledger.accepted_int).collect(),
        assigned_jobs: nodes.iter().map(|n| n.accepted_jobs).collect(),
        wrapped: nodes.iter().any(|n| n.saw_balancing),
        max_bucket_travel: nodes.iter().map(|n| n.max_travel_seen).max().unwrap_or(0),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_opt::bounds::sized_lower_bound;
    use ring_sim::Instance;

    fn inst(sizes: Vec<Vec<u64>>) -> SizedInstance {
        SizedInstance::from_sizes(sizes)
    }

    #[test]
    fn empty_instance() {
        let run = run_arbitrary(
            &inst(vec![vec![], vec![], vec![]]),
            &ArbitraryConfig::default(),
        )
        .unwrap();
        assert_eq!(run.makespan, 0);
    }

    #[test]
    fn single_big_job_stays_put_cost_pmax() {
        let mut sizes = vec![vec![]; 8];
        sizes[0] = vec![50];
        let run = run_arbitrary(&inst(sizes), &ArbitraryConfig::default()).unwrap();
        // One indivisible job: it is processed somewhere for 50 steps; if it
        // migrated d hops the makespan is 50 + d. It should not migrate far.
        assert!(run.makespan >= 50);
        assert!(run.makespan <= 55, "makespan {}", run.makespan);
    }

    #[test]
    fn work_and_job_counts_conserved() {
        let i = inst(vec![vec![3, 3, 9], vec![], vec![1, 1], vec![20]]);
        let run = run_arbitrary(&i, &ArbitraryConfig::default()).unwrap();
        assert_eq!(run.assigned_work.iter().sum::<u64>(), 37);
        assert_eq!(run.assigned_jobs.iter().sum::<u64>(), 6);
        assert_eq!(run.report.metrics.total_processed(), 37);
    }

    #[test]
    fn respects_corollary2_bound() {
        // makespan <= 5.22 · max(L, p_max) + O(1).
        let cases = [
            {
                let mut s = vec![vec![]; 32];
                s[0] = vec![7; 64]; // 448 units in 7-unit jobs
                s
            },
            {
                let mut s = vec![vec![]; 16];
                s[3] = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                s[11] = vec![30];
                s
            },
        ];
        for sizes in cases {
            let i = inst(sizes);
            let lb = sized_lower_bound(&i);
            let run = run_arbitrary(&i, &ArbitraryConfig::default()).unwrap();
            assert!(
                run.makespan as f64 <= 5.22 * lb as f64 + 3.0,
                "makespan {} vs 5.22·{}",
                run.makespan,
                lb
            );
        }
    }

    #[test]
    fn unit_sized_instance_close_to_unit_algorithm() {
        // Feeding all-1 jobs through the sized machinery must behave like
        // the unit algorithm (same targets, slack p_max = 1 instead of the
        // I1/I2 slack).
        let unit_inst = Instance::concentrated(64, 0, 400);
        let sized = unit_inst.to_sized();
        let unit_run = crate::unit::run_unit(&unit_inst, &crate::unit::UnitConfig::c1()).unwrap();
        let sized_run = run_arbitrary(&sized, &ArbitraryConfig::default()).unwrap();
        let diff = (sized_run.makespan as i64 - unit_run.makespan as i64).abs();
        assert!(
            diff <= 4,
            "unit {} vs sized {}",
            unit_run.makespan,
            sized_run.makespan
        );
    }

    #[test]
    fn bidirectional_conserves_and_uses_both_sides() {
        let mut sizes = vec![vec![]; 64];
        sizes[0] = vec![2; 200];
        let i = inst(sizes);
        let run = run_arbitrary(
            &i,
            &ArbitraryConfig {
                bidirectional: true,
                ..ArbitraryConfig::default()
            },
        )
        .unwrap();
        assert_eq!(run.assigned_work.iter().sum::<u64>(), 400);
        // Work must land on both sides of the origin.
        assert!(run.assigned_work[1] > 0 || run.assigned_work[2] > 0);
        assert!(run.assigned_work[63] > 0 || run.assigned_work[62] > 0);
    }

    #[test]
    fn wraparound_on_small_ring() {
        let mut sizes = vec![vec![]; 4];
        sizes[0] = vec![5; 2000]; // 10_000 units
        let i = inst(sizes);
        let run = run_arbitrary(&i, &ArbitraryConfig::default()).unwrap();
        assert!(run.wrapped);
        // Near-average split plus travel and p_max slop.
        assert!(
            run.makespan <= 10_000 / 4 + 2 * 4 + 5 + 5,
            "makespan {}",
            run.makespan
        );
    }

    #[test]
    fn jobs_never_split_across_processors() {
        // Total processed work per node must be expressible as a sum of
        // whole accepted jobs (we track both independently).
        let i = inst(vec![vec![4, 9], vec![], vec![6], vec![], vec![2, 2, 2]]);
        let run = run_arbitrary(&i, &ArbitraryConfig::default()).unwrap();
        assert_eq!(
            run.report.metrics.processed_per_node, run.assigned_work,
            "processed work must equal accepted whole-job work"
        );
    }

    #[test]
    fn heterogeneous_sizes_make_progress_everywhere() {
        let mut sizes = vec![vec![]; 24];
        sizes[0] = (1..=40).collect(); // 820 units, p_max 40
        let i = inst(sizes);
        let run = run_arbitrary(&i, &ArbitraryConfig::default()).unwrap();
        let busy = run.assigned_work.iter().filter(|&&w| w > 0).count();
        assert!(busy >= 8, "only {busy} processors used");
    }

    #[test]
    fn split_sized_halves_work() {
        let jobs: Vec<Job> = (0..10)
            .map(|k| Job {
                id: ring_sim::JobId(k),
                origin: 0,
                size: 10 - k % 3,
            })
            .collect();
        let total: u64 = jobs.iter().map(|j| j.size).sum();
        let mut b = SizedBucket::new(0, Direction::Cw, jobs);
        let ccw = split_sized(&mut b);
        assert_eq!(b.work + ccw.work, total);
        let diff = b.work.abs_diff(ccw.work);
        assert!(diff <= 10, "uneven split: {} vs {}", b.work, ccw.work);
    }
}
