//! Aggregate run metrics collected by the engine on every run, regardless of
//! trace level.

use serde::{Deserialize, Serialize};

/// Aggregate counters for one simulation run.
///
/// These are cheap to maintain (O(1) per message / per step), so the engine
/// always collects them; detailed per-event data lives in
/// [`crate::trace::Trace`] and is opt-in.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total number of messages sent over all links and steps.
    pub messages_sent: u64,
    /// Total job-units × hops moved. One job travelling `d` hops contributes
    /// `d` (this is the total communication volume of the schedule).
    pub job_hops: u64,
    /// Units of work processed by each node.
    pub processed_per_node: Vec<u64>,
    /// Number of steps in which each node processed work.
    pub busy_steps_per_node: Vec<u64>,
    /// The largest total job payload in flight at the end of any step.
    pub peak_inflight_jobs: u64,
    /// Last step index in which any node processed work (`None` if the
    /// instance was empty).
    pub last_busy_step: Option<u64>,
    /// Number of steps actually simulated.
    pub steps: u64,
}

impl Metrics {
    pub(crate) fn new(m: usize) -> Self {
        Metrics {
            processed_per_node: vec![0; m],
            busy_steps_per_node: vec![0; m],
            ..Metrics::default()
        }
    }

    /// Total units of work processed across all nodes.
    pub fn total_processed(&self) -> u64 {
        self.processed_per_node.iter().sum()
    }

    /// Mean node utilization over the makespan: busy steps / (m × makespan).
    /// Returns 1.0 for an empty run (vacuously fully utilized).
    pub fn utilization(&self) -> f64 {
        let makespan = match self.last_busy_step {
            Some(t) => t + 1,
            None => return 1.0,
        };
        let busy: u64 = self.busy_steps_per_node.iter().sum();
        busy as f64 / (makespan as f64 * self.processed_per_node.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_empty_run_is_one() {
        let m = Metrics::new(4);
        assert_eq!(m.utilization(), 1.0);
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut m = Metrics::new(2);
        m.last_busy_step = Some(3); // makespan 4, capacity 8 busy-steps
        m.busy_steps_per_node = vec![4, 2];
        assert!((m.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn total_processed_sums_nodes() {
        let mut m = Metrics::new(3);
        m.processed_per_node = vec![1, 2, 3];
        assert_eq!(m.total_processed(), 6);
    }
}
