//! Aggregate run metrics collected by the engine on every run, regardless of
//! trace level, plus the opt-in per-step [`Observability`] time series.

use serde::{Deserialize, Serialize};

/// Aggregate counters for one simulation run.
///
/// These are cheap to maintain (O(1) per message / per step), so the engine
/// always collects them; detailed per-event data lives in
/// [`crate::trace::Trace`] and is opt-in.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Total number of *logical* messages sent over all links and steps. A
    /// count-coalesced arena entry ([`crate::Coalesce`]) contributes its
    /// [`crate::Payload::run_len`], so the counter is representation-
    /// independent: the same stream reports the same number whether it was
    /// sent one unit message at a time or as run-length entries.
    pub messages_sent: u64,
    /// Total job-units × hops moved. One job travelling `d` hops contributes
    /// `d` (this is the total communication volume of the schedule).
    pub job_hops: u64,
    /// Units of work processed by each node.
    pub processed_per_node: Vec<u64>,
    /// Number of steps in which each node processed work.
    pub busy_steps_per_node: Vec<u64>,
    /// The largest total job payload in flight at the end of any step.
    pub peak_inflight_jobs: u64,
    /// Last step index in which any node processed work (`None` if the
    /// instance was empty).
    pub last_busy_step: Option<u64>,
    /// Number of steps actually simulated.
    pub steps: u64,
    /// Fault injection: logical-message × step drop events on downed links
    /// (each step a queued message is refused by a dropping link counts
    /// once; coalesced runs count [`crate::Payload::run_len`]).
    pub messages_dropped: u64,
    /// Fault injection: logical-message × step hold events for non-drop
    /// reasons (delay epochs and bandwidth backlog).
    pub messages_delayed: u64,
    /// Fault injection: logical messages that departed only after at least
    /// one failed attempt (the retry rule succeeding).
    pub messages_retried: u64,
}

impl Metrics {
    pub(crate) fn new(m: usize) -> Self {
        Metrics {
            processed_per_node: vec![0; m],
            busy_steps_per_node: vec![0; m],
            ..Metrics::default()
        }
    }

    /// Total units of work processed across all nodes.
    pub fn total_processed(&self) -> u64 {
        self.processed_per_node.iter().sum()
    }

    /// Mean node utilization over the makespan: busy steps / (m × makespan).
    /// Returns 1.0 for an empty run (vacuously fully utilized).
    pub fn utilization(&self) -> f64 {
        let makespan = match self.last_busy_step {
            Some(t) => t + 1,
            None => return 1.0,
        };
        let busy: u64 = self.busy_steps_per_node.iter().sum();
        busy as f64 / (makespan as f64 * self.processed_per_node.len() as f64)
    }
}

/// One step of the opt-in observability time series.
///
/// Every counter is an exact integer so samples from the sequential and
/// arc-parallel executors compare bit-for-bit; derived floating-point views
/// (imbalance, utilization) are computed on demand from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepSample {
    /// Step index.
    pub t: u64,
    /// Job payload delivered to nodes at the start of this step (sent during
    /// step `t - 1`).
    pub delivered_payload: u64,
    /// Job payload put in flight during this step (delivered at `t + 1`).
    pub sent_payload: u64,
    /// Logical messages sent during this step (control and job-carrying
    /// alike; coalesced runs count [`crate::Payload::run_len`] each).
    pub messages: u64,
    /// Work units processed during this step.
    pub processed: u64,
    /// Payload that stopped travelling this step: delivered to some node and
    /// not forwarded onward (the bucket algorithms' "drop-off").
    pub dropped_off: u64,
    /// Largest resident backlog ([`crate::Node::pending_work`]) on any node
    /// at the end of this step.
    pub max_pending: u64,
    /// Total resident backlog across all nodes at the end of this step.
    pub total_pending: u64,
    /// Messages refused by downed links during this step (fault injection).
    pub link_dropped: u64,
    /// Messages held back by delay epochs or bandwidth backlog during this
    /// step (fault injection).
    pub link_delayed: u64,
    /// Messages that departed this step after at least one failed attempt
    /// (fault injection).
    pub link_retried: u64,
}

impl StepSample {
    /// Folds another partial sample for the same step into this one (used to
    /// merge per-arc partials from the parallel executor). Both samples must
    /// cover disjoint node sets of the same step.
    pub(crate) fn absorb(&mut self, other: &StepSample) {
        debug_assert_eq!(self.t, other.t);
        self.delivered_payload += other.delivered_payload;
        self.sent_payload += other.sent_payload;
        self.messages += other.messages;
        self.processed += other.processed;
        self.dropped_off += other.dropped_off;
        self.max_pending = self.max_pending.max(other.max_pending);
        self.total_pending += other.total_pending;
        self.link_dropped += other.link_dropped;
        self.link_delayed += other.link_delayed;
        self.link_retried += other.link_retried;
    }
}

/// Cumulative per-link counters, indexed by the *sending* node. The
/// clockwise entry of node `i` describes the directed link `i → i + 1`; the
/// counterclockwise entry the link `i → i - 1`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Logical messages sent clockwise by each node (a coalesced run counts
    /// [`crate::Payload::run_len`], not 1 — the series is identical whichever
    /// representation carried the units).
    pub cw_messages: Vec<u64>,
    /// Logical messages sent counterclockwise by each node (run-length
    /// weighted, like `cw_messages`).
    pub ccw_messages: Vec<u64>,
    /// Job payload sent clockwise by each node.
    pub cw_payload: Vec<u64>,
    /// Job payload sent counterclockwise by each node.
    pub ccw_payload: Vec<u64>,
    /// Steps in which each node's clockwise link carried at least one
    /// message.
    pub cw_busy_steps: Vec<u64>,
    /// Steps in which each node's counterclockwise link carried at least one
    /// message.
    pub ccw_busy_steps: Vec<u64>,
}

impl LinkStats {
    fn new(m: usize) -> Self {
        LinkStats {
            cw_messages: vec![0; m],
            ccw_messages: vec![0; m],
            cw_payload: vec![0; m],
            ccw_payload: vec![0; m],
            cw_busy_steps: vec![0; m],
            ccw_busy_steps: vec![0; m],
        }
    }
}

/// Opt-in per-step observability of a run ([`crate::EngineConfig::observe`]).
///
/// Collected identically by [`crate::Engine::run`] and
/// [`crate::Engine::par_run`]: all counters are integers accumulated per node
/// or per step, so the parallel executor's per-arc partials merge back to
/// exactly the sequential result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observability {
    /// Ring size.
    pub num_processors: usize,
    /// One sample per simulated step, in step order.
    pub samples: Vec<StepSample>,
    /// Cumulative per-link counters.
    pub links: LinkStats,
    /// Cumulative payload dropped off (delivered and not forwarded) at each
    /// node.
    pub dropoffs_per_node: Vec<u64>,
}

impl Observability {
    /// An empty observability record for an `m`-ring.
    pub(crate) fn new(m: usize) -> Self {
        Observability {
            num_processors: m,
            samples: Vec::new(),
            links: LinkStats::new(m),
            dropoffs_per_node: vec![0; m],
        }
    }

    /// Records one node's sends during the current step.
    pub(crate) fn record_sends(
        &mut self,
        node: usize,
        cw_messages: u64,
        cw_payload: u64,
        ccw_messages: u64,
        ccw_payload: u64,
    ) {
        if cw_messages > 0 {
            self.links.cw_messages[node] += cw_messages;
            self.links.cw_payload[node] += cw_payload;
            self.links.cw_busy_steps[node] += 1;
        }
        if ccw_messages > 0 {
            self.links.ccw_messages[node] += ccw_messages;
            self.links.ccw_payload[node] += ccw_payload;
            self.links.ccw_busy_steps[node] += 1;
        }
    }

    /// Merges a per-arc partial whose first sample describes global step
    /// `t_base` (a resumed run's arcs start mid-timeline). All counters are
    /// *added*, so the base may already carry the pre-`t_base` history; on a
    /// fresh merge (`t_base == 0` into an empty record) this is identical to
    /// stitching.
    pub(crate) fn absorb_arc_at(&mut self, lo: usize, part: &Observability, t_base: u64) {
        let t_base = t_base as usize;
        while self.samples.len() < t_base + part.samples.len() {
            let t = self.samples.len() as u64;
            self.samples.push(StepSample {
                t,
                ..StepSample::default()
            });
        }
        for (mine, theirs) in self.samples[t_base..].iter_mut().zip(&part.samples) {
            mine.absorb(theirs);
        }
        let k = part.dropoffs_per_node.len();
        for (i, j) in (lo..lo + k).zip(0..k) {
            self.dropoffs_per_node[i] += part.dropoffs_per_node[j];
            self.links.cw_messages[i] += part.links.cw_messages[j];
            self.links.ccw_messages[i] += part.links.ccw_messages[j];
            self.links.cw_payload[i] += part.links.cw_payload[j];
            self.links.ccw_payload[i] += part.links.ccw_payload[j];
            self.links.cw_busy_steps[i] += part.links.cw_busy_steps[j];
            self.links.ccw_busy_steps[i] += part.links.ccw_busy_steps[j];
        }
    }

    /// Per-step load imbalance: `max_i pending_i − mean pending` at the end
    /// of each step.
    pub fn imbalance_series(&self) -> Vec<f64> {
        let m = self.num_processors.max(1) as f64;
        self.samples
            .iter()
            .map(|s| s.max_pending as f64 - s.total_pending as f64 / m)
            .collect()
    }

    /// Largest per-step load imbalance over the run (0 for an empty run).
    pub fn peak_imbalance(&self) -> f64 {
        self.imbalance_series().into_iter().fold(0.0, f64::max)
    }

    /// Per-step job payload in flight (what was sent during each step).
    pub fn inflight_series(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.sent_payload).collect()
    }

    /// Per-step fault dynamics: `(dropped, delayed, retried)` message
    /// counts for every simulated step (all zeros without a fault plan).
    pub fn fault_series(&self) -> Vec<(u64, u64, u64)> {
        self.samples
            .iter()
            .map(|s| (s.link_dropped, s.link_delayed, s.link_retried))
            .collect()
    }

    /// Fraction of steps in which each node's links carried at least one
    /// message, averaged over both directions. Empty runs report all zeros.
    pub fn link_utilization(&self) -> Vec<f64> {
        let steps = self.samples.len() as f64;
        if steps == 0.0 {
            return vec![0.0; self.num_processors];
        }
        (0..self.num_processors)
            .map(|i| {
                (self.links.cw_busy_steps[i] + self.links.ccw_busy_steps[i]) as f64 / (2.0 * steps)
            })
            .collect()
    }

    /// Serializes the record as JSON (hand-written: the build environment's
    /// serde is a no-op shim, and the format is simple enough to emit
    /// directly).
    pub fn to_json(&self) -> String {
        fn u64s(v: &[u64]) -> String {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        }
        let samples: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"t\":{},\"delivered_payload\":{},\"sent_payload\":{},\
                     \"messages\":{},\"processed\":{},\"dropped_off\":{},\
                     \"max_pending\":{},\"total_pending\":{},\
                     \"link_dropped\":{},\"link_delayed\":{},\"link_retried\":{}}}",
                    s.t,
                    s.delivered_payload,
                    s.sent_payload,
                    s.messages,
                    s.processed,
                    s.dropped_off,
                    s.max_pending,
                    s.total_pending,
                    s.link_dropped,
                    s.link_delayed,
                    s.link_retried
                )
            })
            .collect();
        format!(
            "{{\"num_processors\":{},\"samples\":[{}],\"links\":{{\
             \"cw_messages\":{},\"ccw_messages\":{},\"cw_payload\":{},\
             \"ccw_payload\":{},\"cw_busy_steps\":{},\"ccw_busy_steps\":{}}},\
             \"dropoffs_per_node\":{}}}",
            self.num_processors,
            samples.join(","),
            u64s(&self.links.cw_messages),
            u64s(&self.links.ccw_messages),
            u64s(&self.links.cw_payload),
            u64s(&self.links.ccw_payload),
            u64s(&self.links.cw_busy_steps),
            u64s(&self.links.ccw_busy_steps),
            u64s(&self.dropoffs_per_node)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_empty_run_is_one() {
        let m = Metrics::new(4);
        assert_eq!(m.utilization(), 1.0);
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut m = Metrics::new(2);
        m.last_busy_step = Some(3); // makespan 4, capacity 8 busy-steps
        m.busy_steps_per_node = vec![4, 2];
        assert!((m.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn total_processed_sums_nodes() {
        let mut m = Metrics::new(3);
        m.processed_per_node = vec![1, 2, 3];
        assert_eq!(m.total_processed(), 6);
    }

    #[test]
    fn imbalance_is_max_minus_mean() {
        let mut o = Observability::new(4);
        o.samples.push(StepSample {
            t: 0,
            max_pending: 10,
            total_pending: 16,
            ..StepSample::default()
        });
        // 10 - 16/4 = 6
        assert_eq!(o.imbalance_series(), vec![6.0]);
        assert_eq!(o.peak_imbalance(), 6.0);
    }

    #[test]
    fn arc_merge_stitches_nodes_and_sums_steps() {
        let mut whole = Observability::new(4);
        let mut left = Observability::new(2);
        let mut right = Observability::new(2);
        left.record_sends(0, 2, 5, 0, 0);
        right.record_sends(1, 1, 1, 1, 0);
        left.samples.push(StepSample {
            t: 0,
            sent_payload: 5,
            max_pending: 3,
            total_pending: 4,
            ..StepSample::default()
        });
        right.samples.push(StepSample {
            t: 0,
            sent_payload: 1,
            max_pending: 7,
            total_pending: 7,
            ..StepSample::default()
        });
        whole.absorb_arc_at(0, &left, 0);
        whole.absorb_arc_at(2, &right, 0);
        assert_eq!(whole.samples[0].sent_payload, 6);
        assert_eq!(whole.samples[0].max_pending, 7);
        assert_eq!(whole.samples[0].total_pending, 11);
        assert_eq!(whole.links.cw_messages, vec![2, 0, 0, 1]);
        assert_eq!(whole.links.ccw_messages, vec![0, 0, 0, 1]);
    }

    #[test]
    fn json_round_trips_basic_shape() {
        let mut o = Observability::new(2);
        o.samples.push(StepSample {
            t: 0,
            processed: 2,
            ..StepSample::default()
        });
        o.dropoffs_per_node = vec![1, 0];
        let json = o.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"num_processors\":2"));
        assert!(json.contains("\"processed\":2"));
        assert!(json.contains("\"dropoffs_per_node\":[1,0]"));
    }
}
