//! Compact binary trace files (`RINGTRACE`) and their JSON mirror.
//!
//! Full-detail traces grow with (steps × messages); serialising them as JSON
//! is the scale bottleneck once rings reach 10^6 nodes. This module stores a
//! complete run — header, fault plan, metrics, and the full event log — in a
//! length-prefixed binary format that is typically 10–30× smaller than the
//! equivalent JSON:
//!
//! * event timestamps are delta-encoded (wrapping `u64` difference from the
//!   previous event) and written as LEB128 varints, so the common "same step
//!   or next step" case costs one byte;
//! * the event discriminant, send direction, and drop kind fold into a
//!   single tag byte;
//! * fractional-ledger shadows stay fixed-width `f64::to_bits` words, so
//!   replay is bit-exact.
//!
//! The file layout mirrors the `RINGSNAP` checkpoint discipline
//! ([`crate::checkpoint`]): magic bytes, a little-endian `u32` version, the
//! payload, and a trailing FNV-1a 64-bit checksum over everything before it.
//! Decoding fails closed with a typed [`TraceFileError`] — truncated,
//! bit-flipped, wrong-magic, or future-version files are rejected before any
//! payload is interpreted, and no input panics.
//!
//! Crucially the oracle needs **no changes** to replay a binary trace:
//! [`TraceFile::to_report`] reconstitutes the exact [`RunReport`] the engine
//! produced (same events, same metrics, `observability` elided), and
//! [`TraceFile::check`] feeds it to the unmodified [`crate::oracle`]. The
//! format is a transport, not a semantic layer.

use std::fmt;
use std::path::Path;

use crate::checkpoint::fnv1a;
use crate::engine::RunReport;
use crate::fault::{FaultPlan, LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};
use crate::metrics::Metrics;
use crate::oracle::{check_report, OracleViolation};
use crate::topology::Direction;
use crate::trace::{DropKind, Event, Trace, TraceLevel};

/// Magic bytes opening every binary trace file.
pub const TRACE_MAGIC: [u8; 9] = *b"RINGTRACE";

/// Base trace format version: ring traces (cw/ccw sends only) are written
/// at this version, byte-identically to every build since it was pinned.
pub const TRACE_VERSION: u32 = 1;

/// Trace format version for topology-generic (fabric) traces: version 2
/// adds the [`Event::SentOn`] tag, which records sends by local port
/// number instead of ring direction. Writers only emit it when a `SentOn`
/// event is actually present — traces of ring runs keep version 1, so
/// their golden byte images are untouched. Decoders accept
/// `1..=TRACE_VERSION_FABRIC` and reject anything newer.
pub const TRACE_VERSION_FABRIC: u32 = 2;

/// Why a trace file failed to decode. Every branch is fail-closed: a file
/// that does not decode cleanly yields an error, never a partial trace and
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The input ended before a complete value could be read.
    UnexpectedEof,
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's version is not one this build understands.
    BadVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The FNV-1a trailer does not match the file contents.
    BadChecksum,
    /// The payload is structurally invalid (the checksum matched, so this
    /// indicates an encoder bug or a deliberately malformed file).
    Corrupt(&'static str),
    /// A JSON trace failed to parse at the given byte offset.
    Json {
        /// Byte offset of the first offending character.
        offset: usize,
        /// What went wrong.
        msg: &'static str,
    },
    /// An underlying filesystem error.
    Io(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::UnexpectedEof => write!(f, "trace file truncated"),
            TraceFileError::BadMagic => write!(f, "not a RINGTRACE file (bad magic)"),
            TraceFileError::BadVersion { found } => write!(
                f,
                "unsupported trace version {found} (this build reads <= {TRACE_VERSION_FABRIC})"
            ),
            TraceFileError::BadChecksum => write!(f, "trace checksum mismatch (file corrupted)"),
            TraceFileError::Corrupt(what) => write!(f, "corrupt trace payload: {what}"),
            TraceFileError::Json { offset, msg } => {
                write!(f, "invalid JSON trace at byte {offset}: {msg}")
            }
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// A self-contained recorded run: everything the oracle needs to re-derive
/// every safety property, plus the provenance string the CLI displays.
///
/// Fields are public so tests can build (or deliberately corrupt) traces
/// directly; the engine-facing constructor is [`TraceFile::from_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Ring size of the recorded run.
    pub m: usize,
    /// Total units of work in the recorded instance.
    pub total_work: u64,
    /// Reported makespan.
    pub makespan: u64,
    /// Free-form provenance (scenario name, algorithm, executor). Not part
    /// of [`TraceFile::diff`]: two executors producing identical runs keep
    /// different labels.
    pub meta: String,
    /// Aggregate counters of the run.
    pub metrics: Metrics,
    /// The fault plan the run executed under, if any. Stored so the oracle
    /// can re-check fault legality from the file alone.
    pub faults: Option<FaultPlan>,
    /// Detail level the trace was recorded at.
    pub level: TraceLevel,
    /// The event log, in engine order.
    pub events: Vec<Event>,
}

/// The step index an event occurred in.
pub fn event_step(ev: &Event) -> u64 {
    match *ev {
        Event::Processed { t, .. }
        | Event::Sent { t, .. }
        | Event::SentOn { t, .. }
        | Event::DroppedOff { t, .. } => t,
    }
}

/// The step index an oracle violation points at, when it has one (aggregate
/// violations like a total-work mismatch have no single step).
pub fn violation_step(v: &OracleViolation) -> Option<u64> {
    match v {
        OracleViolation::Overwork { step, .. }
        | OracleViolation::ProcessedWhileStalled { step, .. }
        | OracleViolation::SentOnDownLink { step, .. }
        | OracleViolation::BandwidthExceeded { step, .. }
        | OracleViolation::NegativeBalance { step, .. }
        | OracleViolation::I1Exceeded { step, .. }
        | OracleViolation::I2Exceeded { step, .. }
        | OracleViolation::NonMonotoneLedger { step, .. } => Some(*step),
        OracleViolation::TraceUnavailable
        | OracleViolation::TotalMismatch { .. }
        | OracleViolation::MakespanMismatch { .. }
        | OracleViolation::DropAccountingMismatch { .. } => None,
    }
}

/// The first point at which two traces disagree (see [`TraceFile::diff`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDiff {
    /// A header field differs; both sides rendered for display.
    Header {
        /// Name of the differing field.
        field: &'static str,
        /// Left value.
        left: String,
        /// Right value.
        right: String,
    },
    /// The event logs diverge at `index` (`None` = that side's log ended).
    Event {
        /// Index into the event logs.
        index: usize,
        /// Step of the first differing event (minimum of the two sides).
        step: u64,
        /// Left event, if any.
        left: Option<Event>,
        /// Right event, if any.
        right: Option<Event>,
    },
}

impl TraceFile {
    /// Captures a finished run. Ring size and total work are derived from
    /// the report's per-node metrics, so the caller only supplies what the
    /// report cannot know: the fault plan and a provenance label.
    pub fn from_report(report: &RunReport, faults: Option<&FaultPlan>, meta: &str) -> Self {
        TraceFile {
            m: report.metrics.processed_per_node.len(),
            total_work: report.metrics.processed_per_node.iter().sum(),
            makespan: report.makespan,
            meta: meta.to_string(),
            metrics: report.metrics.clone(),
            faults: faults.cloned(),
            level: report.trace.level(),
            events: report.trace.events().to_vec(),
        }
    }

    /// Reconstitutes the [`RunReport`] this trace was captured from
    /// (observability time series are not stored and come back as `None`).
    /// The oracle replays this report with zero format-specific changes.
    pub fn to_report(&self) -> RunReport {
        RunReport {
            makespan: self.makespan,
            metrics: self.metrics.clone(),
            trace: Trace::from_events(self.level, self.events.clone()),
            observability: None,
        }
    }

    /// Replays the trace through the unmodified [`crate::oracle`], returning
    /// every violation it finds (empty = the run checks out).
    pub fn check(&self) -> Vec<OracleViolation> {
        check_report(&self.to_report(), self.m, self.faults.as_ref())
    }

    /// One-line summary for `ringsched trace info`.
    pub fn summary(&self) -> String {
        let faults = match &self.faults {
            Some(p) => format!("{}L+{}P", p.link_faults().len(), p.proc_faults().len()),
            None => "none".to_string(),
        };
        format!(
            "m={} total_work={} makespan={} steps={} events={} level={} faults={} meta={:?}",
            self.m,
            self.total_work,
            self.makespan,
            self.metrics.steps,
            self.events.len(),
            match self.level {
                TraceLevel::Off => "off",
                TraceLevel::Full => "full",
            },
            faults,
            self.meta,
        )
    }

    /// The first point at which two traces disagree, or `None` if they
    /// describe the same run. Headers (ring size, totals, metrics, faults)
    /// are compared before events; [`TraceFile::meta`] is provenance and is
    /// deliberately excluded, so the same run captured under different
    /// executors diffs clean.
    pub fn diff(&self, other: &TraceFile) -> Option<TraceDiff> {
        let header = |field, l: &dyn fmt::Debug, r: &dyn fmt::Debug| {
            Some(TraceDiff::Header {
                field,
                left: format!("{l:?}"),
                right: format!("{r:?}"),
            })
        };
        if self.m != other.m {
            return header("m", &self.m, &other.m);
        }
        if self.total_work != other.total_work {
            return header("total_work", &self.total_work, &other.total_work);
        }
        if self.makespan != other.makespan {
            return header("makespan", &self.makespan, &other.makespan);
        }
        if self.level != other.level {
            return header("level", &self.level, &other.level);
        }
        if self.faults != other.faults {
            return header("faults", &self.faults, &other.faults);
        }
        if self.metrics != other.metrics {
            return header("metrics", &self.metrics, &other.metrics);
        }
        let n = self.events.len().max(other.events.len());
        for i in 0..n {
            let l = self.events.get(i).copied();
            let r = other.events.get(i).copied();
            if l != r {
                let step = match (&l, &r) {
                    (Some(a), Some(b)) => event_step(a).min(event_step(b)),
                    (Some(a), None) => event_step(a),
                    (None, Some(b)) => event_step(b),
                    (None, None) => unreachable!(),
                };
                return Some(TraceDiff::Event {
                    index: i,
                    step,
                    left: l,
                    right: r,
                });
            }
        }
        None
    }

    /// A copy restricted to events in the step range `[from, until)`, for
    /// time-travel inspection. The header (makespan, metrics, totals) still
    /// describes the *whole* run, so a slice is for reading, not for oracle
    /// replay; its `meta` records the window.
    pub fn slice(&self, from: u64, until: u64) -> TraceFile {
        let mut out = self.clone();
        out.events = self
            .events
            .iter()
            .filter(|e| {
                let t = event_step(e);
                from <= t && t < until
            })
            .copied()
            .collect();
        out.meta = format!("{} [slice {from}..{until})", self.meta);
        out
    }

    /// FNV-1a digest of the canonical binary encoding: a stable fingerprint
    /// for golden pins and cross-executor comparisons. `meta` is part of the
    /// bytes, so digest equality is stricter than [`TraceFile::diff`].
    pub fn digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// The format version this trace serialises at: [`TRACE_VERSION`]
    /// unless the event log uses the fabric-only [`Event::SentOn`] tag,
    /// which needs [`TRACE_VERSION_FABRIC`]. Keying the version on content
    /// rather than provenance keeps every ring trace — old or new — at the
    /// pinned version-1 byte image.
    pub fn wire_version(&self) -> u32 {
        if self
            .events
            .iter()
            .any(|e| matches!(e, Event::SentOn { .. }))
        {
            TRACE_VERSION_FABRIC
        } else {
            TRACE_VERSION
        }
    }

    // ---------------------------------------------------------------- binary

    /// Serialises to the `RINGTRACE` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.events.len() * 6);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&self.wire_version().to_le_bytes());
        put_vu64(&mut buf, self.m as u64);
        put_vu64(&mut buf, self.total_work);
        put_vu64(&mut buf, self.makespan);
        put_vu64(&mut buf, self.meta.len() as u64);
        buf.extend_from_slice(self.meta.as_bytes());
        buf.push(match self.level {
            TraceLevel::Off => 0,
            TraceLevel::Full => 1,
        });
        match &self.faults {
            None => buf.push(0),
            Some(plan) => {
                buf.push(1);
                encode_plan(&mut buf, plan);
            }
        }
        encode_metrics(&mut buf, &self.metrics);
        put_vu64(&mut buf, self.events.len() as u64);
        let mut prev_t = 0u64;
        for ev in &self.events {
            prev_t = encode_event(&mut buf, ev, prev_t);
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes a `RINGTRACE` file. Magic, version, and checksum are checked
    /// before any payload is interpreted; every failure is a typed
    /// [`TraceFileError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceFile, TraceFileError> {
        let header = TRACE_MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            if bytes.len() >= TRACE_MAGIC.len() && bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
                return Err(TraceFileError::BadMagic);
            }
            return Err(TraceFileError::UnexpectedEof);
        }
        if bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = u32::from_le_bytes(
            bytes[TRACE_MAGIC.len()..header]
                .try_into()
                .expect("4 version bytes"),
        );
        if !(TRACE_VERSION..=TRACE_VERSION_FABRIC).contains(&version) {
            return Err(TraceFileError::BadVersion { found: version });
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 trailer bytes"));
        if fnv1a(&bytes[..body_end]) != stored {
            return Err(TraceFileError::BadChecksum);
        }
        let mut r = Reader::new(&bytes[header..body_end]);
        let m = r.vu64()? as usize;
        let total_work = r.vu64()?;
        let makespan = r.vu64()?;
        let meta_len = r.vu64()? as usize;
        let meta = String::from_utf8(r.bytes(meta_len)?.to_vec())
            .map_err(|_| TraceFileError::Corrupt("meta is not UTF-8"))?;
        let level = match r.u8()? {
            0 => TraceLevel::Off,
            1 => TraceLevel::Full,
            _ => return Err(TraceFileError::Corrupt("unknown trace level")),
        };
        let faults = match r.u8()? {
            0 => None,
            1 => Some(decode_plan(&mut r)?),
            _ => return Err(TraceFileError::Corrupt("unknown fault-plan flag")),
        };
        let metrics = decode_metrics(&mut r, m)?;
        let n_events = r.vu64()? as usize;
        // Every event costs at least 3 bytes; reject length prefixes that
        // could not possibly fit (guards allocation on corrupt input).
        if n_events > r.remaining() {
            return Err(TraceFileError::Corrupt("event count overruns buffer"));
        }
        let mut events = Vec::with_capacity(n_events);
        let mut prev_t = 0u64;
        for _ in 0..n_events {
            let (ev, t) = decode_event(&mut r, prev_t)?;
            prev_t = t;
            events.push(ev);
        }
        r.finish()?;
        Ok(TraceFile {
            m,
            total_work,
            makespan,
            meta,
            metrics,
            faults,
            level,
            events,
        })
    }

    /// Writes the binary encoding to `path`.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| TraceFileError::Io(e.to_string()))
    }

    /// Reads and decodes a binary trace from `path`.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<TraceFile, TraceFileError> {
        let bytes = std::fs::read(path).map_err(|e| TraceFileError::Io(e.to_string()))?;
        TraceFile::from_bytes(&bytes)
    }

    // ------------------------------------------------------------------ json

    /// Renders the trace as compact JSON — the legacy full-trace
    /// representation the binary format replaces. Fractional ledgers are
    /// emitted as their `f64::to_bits` integers, so the JSON round trip is
    /// exactly as bit-faithful as the binary one.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.events.len() * 48);
        s.push_str("{\"format\":\"ringtrace\",\"version\":");
        s.push_str(&self.wire_version().to_string());
        s.push_str(",\"m\":");
        s.push_str(&self.m.to_string());
        s.push_str(",\"total_work\":");
        s.push_str(&self.total_work.to_string());
        s.push_str(",\"makespan\":");
        s.push_str(&self.makespan.to_string());
        s.push_str(",\"meta\":");
        json_string(&mut s, &self.meta);
        s.push_str(",\"level\":");
        s.push_str(match self.level {
            TraceLevel::Off => "\"off\"",
            TraceLevel::Full => "\"full\"",
        });
        s.push_str(",\"faults\":");
        match &self.faults {
            None => s.push_str("null"),
            Some(plan) => plan_to_json(&mut s, plan),
        }
        s.push_str(",\"metrics\":");
        metrics_to_json(&mut s, &self.metrics);
        s.push_str(",\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            event_to_json(&mut s, ev);
        }
        s.push_str("]}");
        s
    }

    /// Parses a trace from the JSON produced by [`TraceFile::to_json`].
    pub fn from_json(text: &str) -> Result<TraceFile, TraceFileError> {
        let value = json::parse(text)?;
        let obj = value.as_obj("trace root")?;
        if obj.get_str("format")? != "ringtrace" {
            return Err(TraceFileError::Corrupt("format is not \"ringtrace\""));
        }
        let version = obj.get_u64("version")?;
        if !(u64::from(TRACE_VERSION)..=u64::from(TRACE_VERSION_FABRIC)).contains(&version) {
            return Err(TraceFileError::BadVersion {
                found: version.min(u64::from(u32::MAX)) as u32,
            });
        }
        let m = obj.get_u64("m")? as usize;
        let level = match obj.get_str("level")? {
            "off" => TraceLevel::Off,
            "full" => TraceLevel::Full,
            _ => return Err(TraceFileError::Corrupt("unknown trace level")),
        };
        let faults = match obj.get("faults")? {
            json::Value::Null => None,
            v => Some(plan_from_json(v)?),
        };
        let metrics = metrics_from_json(obj.get("metrics")?, m)?;
        let mut events = Vec::new();
        for ev in obj.get("events")?.as_arr("events")? {
            events.push(event_from_json(ev)?);
        }
        Ok(TraceFile {
            m,
            total_work: obj.get_u64("total_work")?,
            makespan: obj.get_u64("makespan")?,
            meta: obj.get_str("meta")?.to_string(),
            metrics,
            faults,
            level,
            events,
        })
    }
}

// --------------------------------------------------------------- primitives

pub(crate) fn put_vu64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceFileError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(TraceFileError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn vu64(&mut self) -> Result<u64, TraceFileError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(TraceFileError::Corrupt("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceFileError::Corrupt("varint too long"));
            }
        }
    }

    pub(crate) fn u64_fixed(&mut self) -> Result<u64, TraceFileError> {
        let bytes = self.bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceFileError> {
        if self.remaining() < n {
            return Err(TraceFileError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn finish(&self) -> Result<(), TraceFileError> {
        if self.remaining() != 0 {
            return Err(TraceFileError::Corrupt("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ------------------------------------------------------------- event codec

// Event tags fold the discriminant with the send direction / drop kind so
// the common events cost one tag byte plus a few varints.
const TAG_PROCESSED: u8 = 0;
const TAG_SENT_CW: u8 = 1;
const TAG_SENT_CCW: u8 = 2;
const TAG_DROP_REGULAR: u8 = 3;
const TAG_DROP_BALANCING: u8 = 4;
const TAG_DROP_FORCED: u8 = 5;
// Version-2 (fabric) only: a send keyed by local port number.
const TAG_SENT_ON: u8 = 6;

/// Encodes one event; returns its step for the next event's delta base.
/// Deltas are *wrapping*, so even non-monotone hand-built traces round-trip
/// exactly (they just cost a long varint).
pub(crate) fn encode_event(buf: &mut Vec<u8>, ev: &Event, prev_t: u64) -> u64 {
    match *ev {
        Event::Processed { t, node, units } => {
            buf.push(TAG_PROCESSED);
            put_vu64(buf, t.wrapping_sub(prev_t));
            put_vu64(buf, node as u64);
            put_vu64(buf, units);
            t
        }
        Event::Sent {
            t,
            node,
            dir,
            job_units,
        } => {
            buf.push(match dir {
                Direction::Cw => TAG_SENT_CW,
                Direction::Ccw => TAG_SENT_CCW,
            });
            put_vu64(buf, t.wrapping_sub(prev_t));
            put_vu64(buf, node as u64);
            put_vu64(buf, job_units);
            t
        }
        Event::SentOn {
            t,
            node,
            port,
            job_units,
        } => {
            buf.push(TAG_SENT_ON);
            put_vu64(buf, t.wrapping_sub(prev_t));
            put_vu64(buf, node as u64);
            put_vu64(buf, port as u64);
            put_vu64(buf, job_units);
            t
        }
        Event::DroppedOff {
            t,
            node,
            bucket,
            units,
            frac_bits,
            cum_drop_frac_bits,
            cum_accept_frac_bits,
            p_max_bucket,
            p_max_node,
            kind,
        } => {
            buf.push(match kind {
                DropKind::Regular => TAG_DROP_REGULAR,
                DropKind::Balancing => TAG_DROP_BALANCING,
                DropKind::Forced => TAG_DROP_FORCED,
            });
            put_vu64(buf, t.wrapping_sub(prev_t));
            put_vu64(buf, node as u64);
            put_vu64(buf, bucket);
            put_vu64(buf, units);
            buf.extend_from_slice(&frac_bits.to_le_bytes());
            buf.extend_from_slice(&cum_drop_frac_bits.to_le_bytes());
            buf.extend_from_slice(&cum_accept_frac_bits.to_le_bytes());
            put_vu64(buf, p_max_bucket);
            put_vu64(buf, p_max_node);
            t
        }
    }
}

pub(crate) fn decode_event(
    r: &mut Reader<'_>,
    prev_t: u64,
) -> Result<(Event, u64), TraceFileError> {
    let tag = r.u8()?;
    let t = prev_t.wrapping_add(r.vu64()?);
    let node = r.vu64()? as usize;
    let ev = match tag {
        TAG_PROCESSED => Event::Processed {
            t,
            node,
            units: r.vu64()?,
        },
        TAG_SENT_CW | TAG_SENT_CCW => Event::Sent {
            t,
            node,
            dir: if tag == TAG_SENT_CW {
                Direction::Cw
            } else {
                Direction::Ccw
            },
            job_units: r.vu64()?,
        },
        TAG_SENT_ON => Event::SentOn {
            t,
            node,
            port: r.vu64()? as usize,
            job_units: r.vu64()?,
        },
        TAG_DROP_REGULAR | TAG_DROP_BALANCING | TAG_DROP_FORCED => Event::DroppedOff {
            t,
            node,
            bucket: r.vu64()?,
            units: r.vu64()?,
            frac_bits: r.u64_fixed()?,
            cum_drop_frac_bits: r.u64_fixed()?,
            cum_accept_frac_bits: r.u64_fixed()?,
            p_max_bucket: r.vu64()?,
            p_max_node: r.vu64()?,
            kind: match tag {
                TAG_DROP_REGULAR => DropKind::Regular,
                TAG_DROP_BALANCING => DropKind::Balancing,
                _ => DropKind::Forced,
            },
        },
        _ => return Err(TraceFileError::Corrupt("unknown event tag")),
    };
    Ok((ev, t))
}

// -------------------------------------------------------- fault-plan codec

const LINK_DROP: u8 = 0;
const LINK_DELAY: u8 = 1;
const LINK_BANDWIDTH: u8 = 2;
const PROC_STALL: u8 = 0;
const PROC_SLOWDOWN: u8 = 1;

pub(crate) fn encode_plan(buf: &mut Vec<u8>, plan: &FaultPlan) {
    put_vu64(buf, plan.link_faults().len() as u64);
    for f in plan.link_faults() {
        put_vu64(buf, f.node as u64);
        buf.push(match f.dir {
            Direction::Cw => 0,
            Direction::Ccw => 1,
        });
        put_vu64(buf, f.from);
        put_vu64(buf, f.until);
        match f.kind {
            LinkFaultKind::Drop => buf.push(LINK_DROP),
            LinkFaultKind::Delay(d) => {
                buf.push(LINK_DELAY);
                put_vu64(buf, d);
            }
            LinkFaultKind::Bandwidth(c) => {
                buf.push(LINK_BANDWIDTH);
                put_vu64(buf, c);
            }
        }
    }
    put_vu64(buf, plan.proc_faults().len() as u64);
    for f in plan.proc_faults() {
        put_vu64(buf, f.node as u64);
        put_vu64(buf, f.from);
        put_vu64(buf, f.until);
        match f.kind {
            ProcFaultKind::Stall => buf.push(PROC_STALL),
            ProcFaultKind::Slowdown(k) => {
                buf.push(PROC_SLOWDOWN);
                put_vu64(buf, k);
            }
        }
    }
}

pub(crate) fn decode_plan(r: &mut Reader<'_>) -> Result<FaultPlan, TraceFileError> {
    let mut plan = FaultPlan::new();
    let n_link = r.vu64()? as usize;
    if n_link > r.remaining() {
        return Err(TraceFileError::Corrupt("link-fault count overruns buffer"));
    }
    for _ in 0..n_link {
        let node = r.vu64()? as usize;
        let dir = match r.u8()? {
            0 => Direction::Cw,
            1 => Direction::Ccw,
            _ => return Err(TraceFileError::Corrupt("unknown link direction")),
        };
        let from = r.vu64()?;
        let until = r.vu64()?;
        let kind = match r.u8()? {
            LINK_DROP => LinkFaultKind::Drop,
            LINK_DELAY => LinkFaultKind::Delay(r.vu64()?),
            LINK_BANDWIDTH => LinkFaultKind::Bandwidth(r.vu64()?),
            _ => return Err(TraceFileError::Corrupt("unknown link-fault kind")),
        };
        plan.add_link_fault(LinkFault {
            node,
            dir,
            from,
            until,
            kind,
        });
    }
    let n_proc = r.vu64()? as usize;
    if n_proc > r.remaining() {
        return Err(TraceFileError::Corrupt("proc-fault count overruns buffer"));
    }
    for _ in 0..n_proc {
        let node = r.vu64()? as usize;
        let from = r.vu64()?;
        let until = r.vu64()?;
        let kind = match r.u8()? {
            PROC_STALL => ProcFaultKind::Stall,
            PROC_SLOWDOWN => ProcFaultKind::Slowdown(r.vu64()?),
            _ => return Err(TraceFileError::Corrupt("unknown proc-fault kind")),
        };
        plan.add_proc_fault(ProcFault {
            node,
            from,
            until,
            kind,
        });
    }
    Ok(plan)
}

// ----------------------------------------------------------- metrics codec

pub(crate) fn encode_metrics(buf: &mut Vec<u8>, metrics: &Metrics) {
    put_vu64(buf, metrics.messages_sent);
    put_vu64(buf, metrics.job_hops);
    put_vu64(buf, metrics.processed_per_node.len() as u64);
    for &v in &metrics.processed_per_node {
        put_vu64(buf, v);
    }
    for &v in &metrics.busy_steps_per_node {
        put_vu64(buf, v);
    }
    put_vu64(buf, metrics.peak_inflight_jobs);
    match metrics.last_busy_step {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            put_vu64(buf, t);
        }
    }
    put_vu64(buf, metrics.steps);
    put_vu64(buf, metrics.messages_dropped);
    put_vu64(buf, metrics.messages_delayed);
    put_vu64(buf, metrics.messages_retried);
}

pub(crate) fn decode_metrics(r: &mut Reader<'_>, m: usize) -> Result<Metrics, TraceFileError> {
    let messages_sent = r.vu64()?;
    let job_hops = r.vu64()?;
    let n = r.vu64()? as usize;
    if n != m {
        return Err(TraceFileError::Corrupt("per-node metrics disagree with m"));
    }
    if n > r.remaining() {
        return Err(TraceFileError::Corrupt("node count overruns buffer"));
    }
    let mut processed_per_node = Vec::with_capacity(n);
    for _ in 0..n {
        processed_per_node.push(r.vu64()?);
    }
    let mut busy_steps_per_node = Vec::with_capacity(n);
    for _ in 0..n {
        busy_steps_per_node.push(r.vu64()?);
    }
    let peak_inflight_jobs = r.vu64()?;
    let last_busy_step = match r.u8()? {
        0 => None,
        1 => Some(r.vu64()?),
        _ => return Err(TraceFileError::Corrupt("unknown last-busy flag")),
    };
    Ok(Metrics {
        messages_sent,
        job_hops,
        processed_per_node,
        busy_steps_per_node,
        peak_inflight_jobs,
        last_busy_step,
        steps: r.vu64()?,
        messages_dropped: r.vu64()?,
        messages_delayed: r.vu64()?,
        messages_retried: r.vu64()?,
    })
}

// ------------------------------------------------------------- json writer

fn json_string(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn dir_name(dir: Direction) -> &'static str {
    match dir {
        Direction::Cw => "cw",
        Direction::Ccw => "ccw",
    }
}

fn plan_to_json(s: &mut String, plan: &FaultPlan) {
    s.push_str("{\"links\":[");
    for (i, f) in plan.link_faults().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (kind, value) = match f.kind {
            LinkFaultKind::Drop => ("drop", None),
            LinkFaultKind::Delay(d) => ("delay", Some(d)),
            LinkFaultKind::Bandwidth(c) => ("cap", Some(c)),
        };
        s.push_str(&format!(
            "{{\"node\":{},\"dir\":\"{}\",\"from\":{},\"until\":{},\"kind\":\"{}\"",
            f.node,
            dir_name(f.dir),
            f.from,
            f.until,
            kind
        ));
        if let Some(v) = value {
            s.push_str(&format!(",\"value\":{v}"));
        }
        s.push('}');
    }
    s.push_str("],\"procs\":[");
    for (i, f) in plan.proc_faults().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (kind, value) = match f.kind {
            ProcFaultKind::Stall => ("stall", None),
            ProcFaultKind::Slowdown(k) => ("slow", Some(k)),
        };
        s.push_str(&format!(
            "{{\"node\":{},\"from\":{},\"until\":{},\"kind\":\"{}\"",
            f.node, f.from, f.until, kind
        ));
        if let Some(v) = value {
            s.push_str(&format!(",\"value\":{v}"));
        }
        s.push('}');
    }
    s.push_str("]}");
}

fn metrics_to_json(s: &mut String, metrics: &Metrics) {
    s.push_str(&format!(
        "{{\"messages_sent\":{},\"job_hops\":{},\"processed_per_node\":[",
        metrics.messages_sent, metrics.job_hops
    ));
    for (i, v) in metrics.processed_per_node.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push_str("],\"busy_steps_per_node\":[");
    for (i, v) in metrics.busy_steps_per_node.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push_str(&format!(
        "],\"peak_inflight_jobs\":{},\"last_busy_step\":",
        metrics.peak_inflight_jobs
    ));
    match metrics.last_busy_step {
        None => s.push_str("null"),
        Some(t) => s.push_str(&t.to_string()),
    }
    s.push_str(&format!(
        ",\"steps\":{},\"messages_dropped\":{},\"messages_delayed\":{},\"messages_retried\":{}}}",
        metrics.steps, metrics.messages_dropped, metrics.messages_delayed, metrics.messages_retried
    ));
}

fn event_to_json(s: &mut String, ev: &Event) {
    match *ev {
        Event::Processed { t, node, units } => {
            s.push_str(&format!(
                "{{\"type\":\"processed\",\"t\":{t},\"node\":{node},\"units\":{units}}}"
            ));
        }
        Event::Sent {
            t,
            node,
            dir,
            job_units,
        } => {
            s.push_str(&format!(
                "{{\"type\":\"sent\",\"t\":{t},\"node\":{node},\"dir\":\"{}\",\"job_units\":{job_units}}}",
                dir_name(dir)
            ));
        }
        Event::SentOn {
            t,
            node,
            port,
            job_units,
        } => {
            s.push_str(&format!(
                "{{\"type\":\"sent_on\",\"t\":{t},\"node\":{node},\"port\":{port},\"job_units\":{job_units}}}"
            ));
        }
        Event::DroppedOff {
            t,
            node,
            bucket,
            units,
            frac_bits,
            cum_drop_frac_bits,
            cum_accept_frac_bits,
            p_max_bucket,
            p_max_node,
            kind,
        } => {
            let kind = match kind {
                DropKind::Regular => "regular",
                DropKind::Balancing => "balancing",
                DropKind::Forced => "forced",
            };
            s.push_str(&format!(
                "{{\"type\":\"dropped_off\",\"t\":{t},\"node\":{node},\"bucket\":{bucket},\
                 \"units\":{units},\"frac_bits\":{frac_bits},\
                 \"cum_drop_frac_bits\":{cum_drop_frac_bits},\
                 \"cum_accept_frac_bits\":{cum_accept_frac_bits},\
                 \"p_max_bucket\":{p_max_bucket},\"p_max_node\":{p_max_node},\
                 \"kind\":\"{kind}\"}}"
            ));
        }
    }
}

// ------------------------------------------------------------- json reader

mod json {
    //! A minimal JSON reader scoped to the trace schema: `null`, unsigned
    //! integers, strings, arrays, and objects. Not a general-purpose parser
    //! (no floats, no booleans — the schema never produces them).

    use super::TraceFileError;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Value {
        /// `null`.
        Null,
        /// An unsigned integer (the schema has no floats or negatives).
        Num(u64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(super) fn as_obj(
            &self,
            what: &'static str,
        ) -> Result<&Vec<(String, Value)>, TraceFileError> {
            match self {
                Value::Obj(fields) => Ok(fields),
                _ => Err(TraceFileError::Corrupt(what)),
            }
        }

        pub(super) fn as_arr(&self, what: &'static str) -> Result<&[Value], TraceFileError> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(TraceFileError::Corrupt(what)),
            }
        }

        pub(super) fn as_u64(&self, what: &'static str) -> Result<u64, TraceFileError> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(TraceFileError::Corrupt(what)),
            }
        }

        pub(super) fn as_str(&self, what: &'static str) -> Result<&str, TraceFileError> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(TraceFileError::Corrupt(what)),
            }
        }
    }

    /// Field lookup on a parsed object.
    pub(super) trait ObjExt {
        /// The value of `key`, or a corrupt-trace error.
        fn get(&self, key: &'static str) -> Result<&Value, TraceFileError>;
        /// The value of `key` as a u64.
        fn get_u64(&self, key: &'static str) -> Result<u64, TraceFileError>;
        /// The value of `key` as a string slice.
        fn get_str(&self, key: &'static str) -> Result<&str, TraceFileError>;
    }

    impl ObjExt for Vec<(String, Value)> {
        fn get(&self, key: &'static str) -> Result<&Value, TraceFileError> {
            self.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(TraceFileError::Corrupt("missing field"))
        }

        fn get_u64(&self, key: &'static str) -> Result<u64, TraceFileError> {
            self.get(key)?.as_u64("field is not a number")
        }

        fn get_str(&self, key: &'static str) -> Result<&str, TraceFileError> {
            self.get(key)?.as_str("field is not a string")
        }
    }

    pub(super) fn parse(text: &str) -> Result<Value, TraceFileError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing input after value"));
        }
        Ok(value)
    }

    fn err(offset: usize, msg: &'static str) -> TraceFileError {
        TraceFileError::Json { offset, msg }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(
        bytes: &[u8],
        pos: &mut usize,
        c: u8,
        msg: &'static str,
    ) -> Result<(), TraceFileError> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, msg))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, TraceFileError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'n') => {
                if bytes[*pos..].starts_with(b"null") {
                    *pos += 4;
                    Ok(Value::Null)
                } else {
                    Err(err(*pos, "expected null"))
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(err(*pos, "expected , or ] in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':', "expected : after object key")?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(err(*pos, "expected , or } in object")),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                let mut n: u64 = 0;
                while let Some(d) = bytes.get(*pos).filter(|b| b.is_ascii_digit()) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d - b'0')))
                        .ok_or_else(|| err(start, "integer overflows u64"))?;
                    *pos += 1;
                }
                Ok(Value::Num(n))
            }
            Some(_) => Err(err(*pos, "unexpected character")),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, TraceFileError> {
        expect(bytes, pos, b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(*pos, "bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "\\u escape is not a scalar"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "unknown escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the writer never splits one).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

use json::ObjExt;

fn dir_from_json(name: &str) -> Result<Direction, TraceFileError> {
    match name {
        "cw" => Ok(Direction::Cw),
        "ccw" => Ok(Direction::Ccw),
        _ => Err(TraceFileError::Corrupt("unknown direction")),
    }
}

fn plan_from_json(value: &json::Value) -> Result<FaultPlan, TraceFileError> {
    let obj = value.as_obj("faults is not an object")?;
    let mut plan = FaultPlan::new();
    for f in obj.get("links")?.as_arr("links is not an array")? {
        let f = f.as_obj("link fault is not an object")?;
        let kind = match f.get_str("kind")? {
            "drop" => LinkFaultKind::Drop,
            "delay" => LinkFaultKind::Delay(f.get_u64("value")?),
            "cap" => LinkFaultKind::Bandwidth(f.get_u64("value")?),
            _ => return Err(TraceFileError::Corrupt("unknown link-fault kind")),
        };
        plan.add_link_fault(LinkFault {
            node: f.get_u64("node")? as usize,
            dir: dir_from_json(f.get_str("dir")?)?,
            from: f.get_u64("from")?,
            until: f.get_u64("until")?,
            kind,
        });
    }
    for f in obj.get("procs")?.as_arr("procs is not an array")? {
        let f = f.as_obj("proc fault is not an object")?;
        let kind = match f.get_str("kind")? {
            "stall" => ProcFaultKind::Stall,
            "slow" => ProcFaultKind::Slowdown(f.get_u64("value")?),
            _ => return Err(TraceFileError::Corrupt("unknown proc-fault kind")),
        };
        plan.add_proc_fault(ProcFault {
            node: f.get_u64("node")? as usize,
            from: f.get_u64("from")?,
            until: f.get_u64("until")?,
            kind,
        });
    }
    Ok(plan)
}

fn metrics_from_json(value: &json::Value, m: usize) -> Result<Metrics, TraceFileError> {
    let obj = value.as_obj("metrics is not an object")?;
    let nums = |key: &'static str| -> Result<Vec<u64>, TraceFileError> {
        obj.get(key)?
            .as_arr("per-node metric is not an array")?
            .iter()
            .map(|v| v.as_u64("per-node metric is not a number"))
            .collect()
    };
    let processed_per_node = nums("processed_per_node")?;
    let busy_steps_per_node = nums("busy_steps_per_node")?;
    if processed_per_node.len() != m || busy_steps_per_node.len() != m {
        return Err(TraceFileError::Corrupt("per-node metrics disagree with m"));
    }
    Ok(Metrics {
        messages_sent: obj.get_u64("messages_sent")?,
        job_hops: obj.get_u64("job_hops")?,
        processed_per_node,
        busy_steps_per_node,
        peak_inflight_jobs: obj.get_u64("peak_inflight_jobs")?,
        last_busy_step: match obj.get("last_busy_step")? {
            json::Value::Null => None,
            v => Some(v.as_u64("last_busy_step is not a number")?),
        },
        steps: obj.get_u64("steps")?,
        messages_dropped: obj.get_u64("messages_dropped")?,
        messages_delayed: obj.get_u64("messages_delayed")?,
        messages_retried: obj.get_u64("messages_retried")?,
    })
}

fn event_from_json(value: &json::Value) -> Result<Event, TraceFileError> {
    let obj = value.as_obj("event is not an object")?;
    let t = obj.get_u64("t")?;
    let node = obj.get_u64("node")? as usize;
    match obj.get_str("type")? {
        "processed" => Ok(Event::Processed {
            t,
            node,
            units: obj.get_u64("units")?,
        }),
        "sent" => Ok(Event::Sent {
            t,
            node,
            dir: dir_from_json(obj.get_str("dir")?)?,
            job_units: obj.get_u64("job_units")?,
        }),
        "sent_on" => Ok(Event::SentOn {
            t,
            node,
            port: obj.get_u64("port")? as usize,
            job_units: obj.get_u64("job_units")?,
        }),
        "dropped_off" => Ok(Event::DroppedOff {
            t,
            node,
            bucket: obj.get_u64("bucket")?,
            units: obj.get_u64("units")?,
            frac_bits: obj.get_u64("frac_bits")?,
            cum_drop_frac_bits: obj.get_u64("cum_drop_frac_bits")?,
            cum_accept_frac_bits: obj.get_u64("cum_accept_frac_bits")?,
            p_max_bucket: obj.get_u64("p_max_bucket")?,
            p_max_node: obj.get_u64("p_max_node")?,
            kind: match obj.get_str("kind")? {
                "regular" => DropKind::Regular,
                "balancing" => DropKind::Balancing,
                "forced" => DropKind::Forced,
                _ => return Err(TraceFileError::Corrupt("unknown drop kind")),
            },
        }),
        _ => Err(TraceFileError::Corrupt("unknown event type")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Node, NodeCtx, Payload, StepIo};
    use crate::instance::Instance;

    /// A hand-built trace exercising every event kind, tag, and fault
    /// family. Not oracle-consistent — codec tests only; the workspace-level
    /// `trace_oracle` suite round-trips real §6 algorithm runs.
    fn sample_trace() -> TraceFile {
        let plan = FaultPlan::parse(
            "drop:3cw@2..5;delay=2:0ccw@1..3;cap=1:7cw@3..9;stall:1@0..4;slow=3:2@8..40",
            8,
        )
        .unwrap();
        let mut events = Vec::new();
        for t in 0..40u64 {
            events.push(Event::Processed {
                t,
                node: (t as usize) % 8,
                units: 1,
            });
            events.push(Event::Sent {
                t,
                node: (t as usize + 3) % 8,
                dir: if t % 2 == 0 {
                    Direction::Cw
                } else {
                    Direction::Ccw
                },
                job_units: t % 5,
            });
            if t % 4 == 0 {
                events.push(Event::DroppedOff {
                    t,
                    node: (t as usize + 5) % 8,
                    bucket: t / 4,
                    units: 1,
                    frac_bits: (0.25f64 * t as f64).to_bits(),
                    cum_drop_frac_bits: (0.5f64 + t as f64).to_bits(),
                    cum_accept_frac_bits: (0.75f64 + t as f64).to_bits(),
                    p_max_bucket: t % 3,
                    p_max_node: t % 7,
                    kind: match t % 3 {
                        0 => DropKind::Regular,
                        1 => DropKind::Balancing,
                        _ => DropKind::Forced,
                    },
                });
            }
        }
        let metrics = Metrics {
            messages_sent: 40,
            job_hops: 77,
            processed_per_node: vec![5; 8],
            busy_steps_per_node: vec![5; 8],
            peak_inflight_jobs: 4,
            last_busy_step: Some(39),
            steps: 40,
            messages_dropped: 3,
            messages_delayed: 2,
            messages_retried: 1,
        };
        TraceFile {
            m: 8,
            total_work: 40,
            makespan: 40,
            meta: "unit-test \"sample\"\nwith escapes".to_string(),
            metrics,
            faults: Some(plan),
            level: TraceLevel::Full,
            events,
        }
    }

    struct LocalOnly {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    #[test]
    fn captured_engine_run_is_oracle_clean_after_round_trip() {
        let inst = Instance::from_loads(vec![4, 0, 2, 1]);
        let nodes: Vec<LocalOnly> = inst
            .loads()
            .iter()
            .map(|&x| LocalOnly { remaining: x })
            .collect();
        let config = EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, inst.total_work(), config).run().unwrap();
        let tf = TraceFile::from_report(&report, None, "local-only");
        assert_eq!(tf.m, 4);
        assert_eq!(tf.total_work, 7);
        assert!(tf.check().is_empty());
        let back = TraceFile::from_bytes(&tf.to_bytes()).unwrap();
        assert!(back.check().is_empty());
        assert_eq!(back.to_report(), {
            let mut r = report.clone();
            r.observability = None;
            r
        });
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let tf = sample_trace();
        let bytes = tf.to_bytes();
        let back = TraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(tf, back);
        assert_eq!(tf.digest(), back.digest());
    }

    #[test]
    fn binary_beats_json_by_a_wide_margin() {
        let tf = sample_trace();
        let binary = tf.to_bytes().len();
        let json = tf.to_json().len();
        assert!(
            binary * 4 <= json,
            "binary {binary} bytes vs json {json} bytes"
        );
    }

    #[test]
    fn json_round_trip_is_exact() {
        let tf = sample_trace();
        let back = TraceFile::from_json(&tf.to_json()).unwrap();
        assert_eq!(tf, back);
    }

    /// A `SentOn` event (topology-generic send) promotes the file to the
    /// fabric version; everything else stays at the pinned ring version.
    #[test]
    fn sent_on_events_bump_the_wire_version() {
        let mut tf = sample_trace();
        assert_eq!(tf.wire_version(), TRACE_VERSION);
        tf.events.push(Event::SentOn {
            t: 41,
            node: 2,
            port: 3,
            job_units: 5,
        });
        assert_eq!(tf.wire_version(), TRACE_VERSION_FABRIC);
        let bytes = tf.to_bytes();
        assert_eq!(
            u32::from_le_bytes(
                bytes[TRACE_MAGIC.len()..TRACE_MAGIC.len() + 4]
                    .try_into()
                    .unwrap()
            ),
            TRACE_VERSION_FABRIC
        );
        let back = TraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(tf, back);
        let back = TraceFile::from_json(&tf.to_json()).unwrap();
        assert_eq!(tf, back);
    }

    #[test]
    fn corruption_fails_closed() {
        let tf = sample_trace();
        let bytes = tf.to_bytes();

        // Truncations at every prefix length: typed error, never a panic.
        for len in 0..bytes.len() {
            let err = TraceFile::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceFileError::UnexpectedEof
                        | TraceFileError::BadChecksum
                        | TraceFileError::Corrupt(_)
                ),
                "prefix {len}: {err:?}"
            );
        }

        // Any single bit flip in the body is caught by the checksum (or the
        // magic/version checks that precede it).
        for byte in [0, 5, 12, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x40;
            assert!(TraceFile::from_bytes(&bad).is_err(), "flip at {byte}");
        }

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            TraceFile::from_bytes(&bad).unwrap_err(),
            TraceFileError::BadMagic
        );

        // Future version (checksum fixed up so only the version differs).
        let mut future = bytes.clone();
        future[TRACE_MAGIC.len()..TRACE_MAGIC.len() + 4]
            .copy_from_slice(&(TRACE_VERSION_FABRIC + 1).to_le_bytes());
        let body_end = future.len() - 8;
        let sum = fnv1a(&future[..body_end]);
        future[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            TraceFile::from_bytes(&future).unwrap_err(),
            TraceFileError::BadVersion {
                found: TRACE_VERSION_FABRIC + 1
            }
        );
    }

    #[test]
    fn diff_ignores_meta_but_not_events() {
        let tf = sample_trace();
        let mut relabeled = tf.clone();
        relabeled.meta = "same run, different executor".to_string();
        assert_eq!(tf.diff(&relabeled), None);
        assert_ne!(tf.digest(), relabeled.digest(), "digest does cover meta");

        let mut tampered = tf.clone();
        let last = tampered.events.len() - 1;
        match &mut tampered.events[last] {
            Event::Processed { units, .. }
            | Event::Sent {
                job_units: units, ..
            }
            | Event::SentOn {
                job_units: units, ..
            } => *units += 1,
            Event::DroppedOff { units, .. } => *units += 1,
        }
        match tf.diff(&tampered) {
            Some(TraceDiff::Event { index, .. }) => assert_eq!(index, last),
            other => panic!("expected event diff, got {other:?}"),
        }

        let mut shorter = tf.clone();
        shorter.events.pop();
        assert!(matches!(
            tf.diff(&shorter),
            Some(TraceDiff::Event { right: None, .. })
        ));
    }

    #[test]
    fn slice_keeps_only_the_window() {
        let tf = sample_trace();
        let lo = tf.makespan / 3;
        let hi = 2 * tf.makespan / 3;
        let sliced = tf.slice(lo, hi);
        assert!(!sliced.events.is_empty());
        for ev in &sliced.events {
            let t = event_step(ev);
            assert!(lo <= t && t < hi);
        }
        assert!(sliced.meta.contains("slice"));
    }

    #[test]
    fn violation_step_extracts_where_it_can() {
        assert_eq!(
            violation_step(&OracleViolation::Overwork {
                node: 1,
                step: 9,
                units: 2
            }),
            Some(9)
        );
        assert_eq!(
            violation_step(&OracleViolation::TotalMismatch {
                processed: 1,
                expected: 2
            }),
            None
        );
    }
}
