//! Versioned checkpoint/restore for engine runs.
//!
//! A [`Snapshot`] captures the *complete* state of an [`crate::Engine`] at a
//! step boundary: the double-buffered message arenas, the per-link fault
//! queues (hold/retry attempts, delay readiness, bandwidth backlog), every
//! node's policy state (via [`crate::Node::save_state`]), the accumulated
//! metrics, trace, and observability series, and the fault plan itself.
//! Resuming from a snapshot ([`crate::Engine::resume`]) continues the run and
//! produces a [`crate::RunReport`] **bit-for-bit identical** to the
//! uninterrupted run — the property the workspace's resume-equivalence
//! proptests assert across algorithms, fault plans, and shard counts.
//!
//! Two design points keep snapshots small and self-describing:
//!
//! * **The fault plan needs no RNG state.** Every fault predicate is a pure
//!   function of `(node, link, step)` ([`crate::FaultPlan`]); seeded plans
//!   expand to explicit epoch lists at construction. The snapshot therefore
//!   stores the plan's epochs plus the current step — nothing else — and the
//!   resumed run replays the identical fault schedule.
//! * **Messages are opaque blobs.** The snapshot container is not generic
//!   over the message type; each message is serialized through the
//!   [`Persist`] trait into a length-prefixed blob. The container can be
//!   inspected (header, metrics, step) without knowing the policy's types.
//!
//! The wire format is a workspace-local little-endian binary codec
//! ([`Encoder`]/[`Decoder`]) — no external serialization crates — framed by
//! the [`SNAPSHOT_MAGIC`] tag, a format version, and a trailing FNV-1a
//! checksum. Corrupted or truncated images fail closed with a typed
//! [`CheckpointError`]; decoding never panics.

use std::collections::VecDeque;

use crate::fault::{FaultPlan, LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};
use crate::metrics::{LinkStats, Metrics, Observability, StepSample};
use crate::topology::Direction;
use crate::trace::{DropKind, Event, TraceLevel};

/// Leading magic bytes of every serialized snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RINGSNAP";

/// Current snapshot format version. Bumped on any codec change; readers
/// reject versions they do not know ([`CheckpointError::BadVersion`]).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Typed checkpoint/restore failures. Every decode path reports one of
/// these — corrupted snapshots fail closed, they never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the decoder finished.
    UnexpectedEof,
    /// The leading bytes are not [`SNAPSHOT_MAGIC`] — not a snapshot file.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    BadVersion {
        /// The version tag found in the file.
        found: u32,
    },
    /// The trailing checksum does not match the payload — the image was
    /// corrupted in storage or transit.
    BadChecksum,
    /// Structurally invalid content (bad enum tag, trailing bytes, an
    /// out-of-range count, ...).
    Corrupt(&'static str),
    /// The node or message type does not support persistence (the default
    /// [`crate::Node::save_state`] / [`crate::Node::restore_state`]).
    Unsupported(&'static str),
    /// The snapshot does not fit what it is being restored into (wrong ring
    /// size, wrong total work, ...).
    Mismatch(String),
    /// An I/O failure while writing or reading a snapshot (message only —
    /// kept `Clone`/`Eq` so it can travel inside [`crate::SimError`]).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::UnexpectedEof => write!(f, "snapshot ended unexpectedly"),
            CheckpointError::BadMagic => write!(f, "not a ring snapshot (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(
                    f,
                    "unknown snapshot format version {found} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            CheckpointError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupted)"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            CheckpointError::Unsupported(what) => write!(f, "checkpoint unsupported: {what}"),
            CheckpointError::Mismatch(what) => write!(f, "snapshot mismatch: {what}"),
            CheckpointError::Io(what) => write!(f, "snapshot i/o error: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Little-endian binary encoder backing the snapshot codec. Policies write
/// their state through this in [`crate::Node::save_state`] and
/// [`Persist::save`].
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, so round-trips are
    /// bit-exact (the engine's whole equivalence story relies on this).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Little-endian binary decoder over a borrowed byte slice; the counterpart
/// of [`Encoder`]. Every read is bounds-checked and fails with
/// [`CheckpointError::UnexpectedEof`] instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (trailing garbage means the
    /// image does not match the schema that is reading it).
    pub fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written by [`Encoder::usize`]; fails if the value
    /// does not fit the platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Corrupt("usize overflow"))
    }

    /// Reads a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Corrupt("bad bool")),
        }
    }

    /// Reads an `f64` from its bit pattern (bit-exact).
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CheckpointError::UnexpectedEof);
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CheckpointError::Corrupt("invalid utf-8"))
    }
}

/// A message type that can round-trip through the snapshot codec.
///
/// Implementations must be bit-exact: `load(save(m)) == m` in every field
/// the policy can observe, including `f64` bit patterns (use
/// [`Encoder::f64`]/[`Decoder::f64`]). The engine requires this bound only
/// on the checkpoint entry points ([`crate::Engine::on_checkpoint`],
/// [`crate::Engine::resume`]); plain runs stay bound-free.
pub trait Persist: Sized {
    /// Serializes `self` into the encoder.
    fn save(&self, enc: &mut Encoder);

    /// Decodes one value, consuming exactly what [`Persist::save`] wrote.
    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError>;
}

impl Persist for Direction {
    fn save(&self, enc: &mut Encoder) {
        enc.u8(match self {
            Direction::Cw => 0,
            Direction::Ccw => 1,
        });
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        match dec.u8()? {
            0 => Ok(Direction::Cw),
            1 => Ok(Direction::Ccw),
            _ => Err(CheckpointError::Corrupt("bad direction tag")),
        }
    }
}

impl Persist for crate::instance::Job {
    fn save(&self, enc: &mut Encoder) {
        enc.u64(self.id.0);
        enc.usize(self.origin);
        enc.u64(self.size);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::instance::Job {
            id: crate::instance::JobId(dec.u64()?),
            origin: dec.usize()?,
            size: dec.u64()?,
        })
    }
}

/// One entry of a serialized per-link fault queue: the staged message blob
/// plus its departure bookkeeping (see the engine's hold-and-retry rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedBlob {
    /// Earliest step the message may depart (push step + link delay).
    pub ready: u64,
    /// Failed departure attempts so far.
    pub attempts: u64,
    /// The serialized message.
    pub msg: Vec<u8>,
}

/// A complete, self-describing image of an engine run at a step boundary.
///
/// All `Vec` fields are indexed by node (`m` entries). Message payloads are
/// opaque [`Persist`] blobs, so the container itself is not generic; the
/// typed arenas are reconstructed by [`crate::Engine::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Ring size.
    pub m: usize,
    /// Total work units of the instance.
    pub total_work: u64,
    /// The step boundary this snapshot was taken at (the next step to run).
    pub t: u64,
    /// Work units processed so far.
    pub processed: u64,
    /// Logical messages that entered the arenas in round `t - 1` (the step
    /// compression gate; zero means every inbox is empty at `t`).
    pub prev_round_departed: u64,
    /// Trace level of the interrupted run.
    pub trace_level: TraceLevel,
    /// The deterministic fault schedule, if one was installed. Pure in
    /// `(node, link, step)`, so no RNG state accompanies it — replaying it
    /// from step `t` is exact.
    pub faults: Option<FaultPlan>,
    /// Metrics accumulated through step `t - 1`.
    pub metrics: Metrics,
    /// Trace events recorded through step `t - 1`, in engine order.
    pub events: Vec<Event>,
    /// Observability series through step `t - 1` (`None` if not collected).
    pub observability: Option<Observability>,
    /// Per-node policy state ([`crate::Node::save_state`] blobs).
    pub nodes: Vec<Vec<u8>>,
    /// Clockwise message arena: for each receiving node, the messages
    /// delivered at step `t`, as [`Persist`] blobs in arrival order.
    pub arena_cw: Vec<Vec<Vec<u8>>>,
    /// Counterclockwise message arena (same layout as `arena_cw`).
    pub arena_ccw: Vec<Vec<Vec<u8>>>,
    /// Per-node clockwise link queue under fault injection (FIFO order).
    pub queue_cw: Vec<Vec<StagedBlob>>,
    /// Per-node counterclockwise link queue (same layout as `queue_cw`).
    pub queue_ccw: Vec<Vec<StagedBlob>>,
    /// Free-form application metadata (the CLI stores the flags needed to
    /// rebuild the policy nodes; the engine never interprets it).
    pub app_meta: String,
}

impl Snapshot {
    /// One-line human summary (used by the CLI).
    pub fn summary(&self) -> String {
        format!(
            "step {} · {}/{} units processed · m = {} · {} trace events{}",
            self.t,
            self.processed,
            self.total_work,
            self.m,
            self.events.len(),
            if self.faults.is_some() {
                " · fault plan attached"
            } else {
                ""
            }
        )
    }

    /// Serializes the snapshot: magic, version, payload, FNV-1a checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        enc.u32(SNAPSHOT_VERSION);
        self.encode_payload(&mut enc);
        let sum = fnv1a(&enc.buf);
        enc.u64(sum);
        enc.into_bytes()
    }

    /// Decodes a snapshot, verifying magic, version, and checksum. Fails
    /// closed with a typed [`CheckpointError`] on any defect.
    pub fn from_bytes(data: &[u8]) -> Result<Snapshot, CheckpointError> {
        if data.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::UnexpectedEof);
        }
        if data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(CheckpointError::BadChecksum);
        }
        let mut dec = Decoder::new(&body[SNAPSHOT_MAGIC.len()..]);
        let version = dec.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let snap = Snapshot::decode_payload(&mut dec)?;
        dec.finish()?;
        Ok(snap)
    }

    /// Writes the serialized snapshot to a file.
    pub fn write_to_file(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from_file(path: &std::path::Path) -> Result<Snapshot, CheckpointError> {
        let data = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Snapshot::from_bytes(&data)
    }

    fn encode_payload(&self, enc: &mut Encoder) {
        enc.usize(self.m);
        enc.u64(self.total_work);
        enc.u64(self.t);
        enc.u64(self.processed);
        enc.u64(self.prev_round_departed);
        enc.u8(match self.trace_level {
            TraceLevel::Off => 0,
            TraceLevel::Full => 1,
        });
        match &self.faults {
            None => enc.bool(false),
            Some(plan) => {
                enc.bool(true);
                encode_fault_plan(enc, plan);
            }
        }
        encode_metrics(enc, &self.metrics);
        enc.usize(self.events.len());
        for ev in &self.events {
            encode_event(enc, ev);
        }
        match &self.observability {
            None => enc.bool(false),
            Some(obs) => {
                enc.bool(true);
                encode_observability(enc, obs);
            }
        }
        for blob in &self.nodes {
            enc.bytes(blob);
        }
        for arena in [&self.arena_cw, &self.arena_ccw] {
            for cell in arena.iter() {
                enc.usize(cell.len());
                for msg in cell {
                    enc.bytes(msg);
                }
            }
        }
        for queue in [&self.queue_cw, &self.queue_ccw] {
            for cell in queue.iter() {
                enc.usize(cell.len());
                for staged in cell {
                    enc.u64(staged.ready);
                    enc.u64(staged.attempts);
                    enc.bytes(&staged.msg);
                }
            }
        }
        enc.str(&self.app_meta);
    }

    fn decode_payload(dec: &mut Decoder<'_>) -> Result<Snapshot, CheckpointError> {
        let m = dec.usize()?;
        if m == 0 {
            return Err(CheckpointError::Corrupt("zero ring size"));
        }
        let total_work = dec.u64()?;
        let t = dec.u64()?;
        let processed = dec.u64()?;
        let prev_round_departed = dec.u64()?;
        let trace_level = match dec.u8()? {
            0 => TraceLevel::Off,
            1 => TraceLevel::Full,
            _ => return Err(CheckpointError::Corrupt("bad trace level")),
        };
        let faults = if dec.bool()? {
            Some(decode_fault_plan(dec)?)
        } else {
            None
        };
        let metrics = decode_metrics(dec, m)?;
        let n_events = dec.usize()?;
        let mut events = Vec::new();
        for _ in 0..n_events {
            events.push(decode_event(dec)?);
        }
        let observability = if dec.bool()? {
            Some(decode_observability(dec, m)?)
        } else {
            None
        };
        let mut nodes = Vec::with_capacity(m);
        for _ in 0..m {
            nodes.push(dec.bytes()?.to_vec());
        }
        let decode_arena = |dec: &mut Decoder<'_>| -> Result<Vec<Vec<Vec<u8>>>, CheckpointError> {
            let mut arena = Vec::with_capacity(m);
            for _ in 0..m {
                let n = dec.usize()?;
                let mut cell = Vec::new();
                for _ in 0..n {
                    cell.push(dec.bytes()?.to_vec());
                }
                arena.push(cell);
            }
            Ok(arena)
        };
        let arena_cw = decode_arena(dec)?;
        let arena_ccw = decode_arena(dec)?;
        let decode_queue =
            |dec: &mut Decoder<'_>| -> Result<Vec<Vec<StagedBlob>>, CheckpointError> {
                let mut queue = Vec::with_capacity(m);
                for _ in 0..m {
                    let n = dec.usize()?;
                    let mut cell = Vec::new();
                    for _ in 0..n {
                        cell.push(StagedBlob {
                            ready: dec.u64()?,
                            attempts: dec.u64()?,
                            msg: dec.bytes()?.to_vec(),
                        });
                    }
                    queue.push(cell);
                }
                Ok(queue)
            };
        let queue_cw = decode_queue(dec)?;
        let queue_ccw = decode_queue(dec)?;
        let app_meta = dec.str()?;
        Ok(Snapshot {
            m,
            total_work,
            t,
            processed,
            prev_round_departed,
            trace_level,
            faults,
            metrics,
            events,
            observability,
            nodes,
            arena_cw,
            arena_ccw,
            queue_cw,
            queue_ccw,
            app_meta,
        })
    }
}

/// Decodes a `Vec<M>` arena cell back into typed messages, requiring every
/// blob to be fully consumed.
pub(crate) fn load_msgs<M: Persist>(blobs: &[Vec<u8>]) -> Result<Vec<M>, CheckpointError> {
    let mut out = Vec::with_capacity(blobs.len());
    for blob in blobs {
        let mut dec = Decoder::new(blob);
        let msg = M::load(&mut dec)?;
        dec.finish()?;
        out.push(msg);
    }
    Ok(out)
}

/// Serializes one message through a monomorphized save hook.
pub(crate) fn save_msg_blob<M>(save: fn(&M, &mut Encoder), msg: &M) -> Vec<u8> {
    let mut enc = Encoder::new();
    save(msg, &mut enc);
    enc.into_bytes()
}

/// FNV-1a 64-bit checksum (tiny, dependency-free, and plenty for detecting
/// storage corruption — this is an integrity check, not a MAC). Shared with
/// the binary trace format in [`crate::tracefile`].
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_u64s(enc: &mut Encoder, v: &[u64]) {
    for &x in v {
        enc.u64(x);
    }
}

fn decode_u64s(dec: &mut Decoder<'_>, n: usize) -> Result<Vec<u64>, CheckpointError> {
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(dec.u64()?);
    }
    Ok(v)
}

pub(crate) fn encode_metrics(enc: &mut Encoder, m: &Metrics) {
    enc.u64(m.messages_sent);
    enc.u64(m.job_hops);
    encode_u64s(enc, &m.processed_per_node);
    encode_u64s(enc, &m.busy_steps_per_node);
    enc.u64(m.peak_inflight_jobs);
    match m.last_busy_step {
        None => enc.bool(false),
        Some(t) => {
            enc.bool(true);
            enc.u64(t);
        }
    }
    enc.u64(m.steps);
    enc.u64(m.messages_dropped);
    enc.u64(m.messages_delayed);
    enc.u64(m.messages_retried);
}

pub(crate) fn decode_metrics(dec: &mut Decoder<'_>, m: usize) -> Result<Metrics, CheckpointError> {
    Ok(Metrics {
        messages_sent: dec.u64()?,
        job_hops: dec.u64()?,
        processed_per_node: decode_u64s(dec, m)?,
        busy_steps_per_node: decode_u64s(dec, m)?,
        peak_inflight_jobs: dec.u64()?,
        last_busy_step: if dec.bool()? { Some(dec.u64()?) } else { None },
        steps: dec.u64()?,
        messages_dropped: dec.u64()?,
        messages_delayed: dec.u64()?,
        messages_retried: dec.u64()?,
    })
}

pub(crate) fn encode_event(enc: &mut Encoder, ev: &Event) {
    match *ev {
        Event::Processed { t, node, units } => {
            enc.u8(0);
            enc.u64(t);
            enc.usize(node);
            enc.u64(units);
        }
        Event::Sent {
            t,
            node,
            dir,
            job_units,
        } => {
            enc.u8(1);
            enc.u64(t);
            enc.usize(node);
            dir.save(enc);
            enc.u64(job_units);
        }
        Event::DroppedOff {
            t,
            node,
            bucket,
            units,
            frac_bits,
            cum_drop_frac_bits,
            cum_accept_frac_bits,
            p_max_bucket,
            p_max_node,
            kind,
        } => {
            enc.u8(2);
            enc.u64(t);
            enc.usize(node);
            enc.u64(bucket);
            enc.u64(units);
            enc.u64(frac_bits);
            enc.u64(cum_drop_frac_bits);
            enc.u64(cum_accept_frac_bits);
            enc.u64(p_max_bucket);
            enc.u64(p_max_node);
            enc.u8(match kind {
                DropKind::Regular => 0,
                DropKind::Balancing => 1,
                DropKind::Forced => 2,
            });
        }
        // Fabric-only (never present in ring snapshots, so tag 3 does not
        // perturb any version-1 byte image).
        Event::SentOn {
            t,
            node,
            port,
            job_units,
        } => {
            enc.u8(3);
            enc.u64(t);
            enc.usize(node);
            enc.usize(port);
            enc.u64(job_units);
        }
    }
}

pub(crate) fn decode_event(dec: &mut Decoder<'_>) -> Result<Event, CheckpointError> {
    match dec.u8()? {
        0 => Ok(Event::Processed {
            t: dec.u64()?,
            node: dec.usize()?,
            units: dec.u64()?,
        }),
        1 => Ok(Event::Sent {
            t: dec.u64()?,
            node: dec.usize()?,
            dir: Direction::load(dec)?,
            job_units: dec.u64()?,
        }),
        2 => Ok(Event::DroppedOff {
            t: dec.u64()?,
            node: dec.usize()?,
            bucket: dec.u64()?,
            units: dec.u64()?,
            frac_bits: dec.u64()?,
            cum_drop_frac_bits: dec.u64()?,
            cum_accept_frac_bits: dec.u64()?,
            p_max_bucket: dec.u64()?,
            p_max_node: dec.u64()?,
            kind: match dec.u8()? {
                0 => DropKind::Regular,
                1 => DropKind::Balancing,
                2 => DropKind::Forced,
                _ => return Err(CheckpointError::Corrupt("bad drop kind")),
            },
        }),
        3 => Ok(Event::SentOn {
            t: dec.u64()?,
            node: dec.usize()?,
            port: dec.usize()?,
            job_units: dec.u64()?,
        }),
        _ => Err(CheckpointError::Corrupt("bad event tag")),
    }
}

fn encode_sample(enc: &mut Encoder, s: &StepSample) {
    enc.u64(s.t);
    enc.u64(s.delivered_payload);
    enc.u64(s.sent_payload);
    enc.u64(s.messages);
    enc.u64(s.processed);
    enc.u64(s.dropped_off);
    enc.u64(s.max_pending);
    enc.u64(s.total_pending);
    enc.u64(s.link_dropped);
    enc.u64(s.link_delayed);
    enc.u64(s.link_retried);
}

fn decode_sample(dec: &mut Decoder<'_>) -> Result<StepSample, CheckpointError> {
    Ok(StepSample {
        t: dec.u64()?,
        delivered_payload: dec.u64()?,
        sent_payload: dec.u64()?,
        messages: dec.u64()?,
        processed: dec.u64()?,
        dropped_off: dec.u64()?,
        max_pending: dec.u64()?,
        total_pending: dec.u64()?,
        link_dropped: dec.u64()?,
        link_delayed: dec.u64()?,
        link_retried: dec.u64()?,
    })
}

fn encode_observability(enc: &mut Encoder, o: &Observability) {
    enc.usize(o.num_processors);
    enc.usize(o.samples.len());
    for s in &o.samples {
        encode_sample(enc, s);
    }
    encode_u64s(enc, &o.links.cw_messages);
    encode_u64s(enc, &o.links.ccw_messages);
    encode_u64s(enc, &o.links.cw_payload);
    encode_u64s(enc, &o.links.ccw_payload);
    encode_u64s(enc, &o.links.cw_busy_steps);
    encode_u64s(enc, &o.links.ccw_busy_steps);
    encode_u64s(enc, &o.dropoffs_per_node);
}

fn decode_observability(dec: &mut Decoder<'_>, m: usize) -> Result<Observability, CheckpointError> {
    let num_processors = dec.usize()?;
    if num_processors != m {
        return Err(CheckpointError::Corrupt("observability ring size mismatch"));
    }
    let n = dec.usize()?;
    let mut samples = Vec::new();
    for _ in 0..n {
        samples.push(decode_sample(dec)?);
    }
    Ok(Observability {
        num_processors,
        samples,
        links: LinkStats {
            cw_messages: decode_u64s(dec, m)?,
            ccw_messages: decode_u64s(dec, m)?,
            cw_payload: decode_u64s(dec, m)?,
            ccw_payload: decode_u64s(dec, m)?,
            cw_busy_steps: decode_u64s(dec, m)?,
            ccw_busy_steps: decode_u64s(dec, m)?,
        },
        dropoffs_per_node: decode_u64s(dec, m)?,
    })
}

pub(crate) fn encode_fault_plan(enc: &mut Encoder, plan: &FaultPlan) {
    enc.usize(plan.link_faults().len());
    for f in plan.link_faults() {
        enc.usize(f.node);
        f.dir.save(enc);
        enc.u64(f.from);
        enc.u64(f.until);
        match f.kind {
            LinkFaultKind::Drop => enc.u8(0),
            LinkFaultKind::Delay(d) => {
                enc.u8(1);
                enc.u64(d);
            }
            LinkFaultKind::Bandwidth(c) => {
                enc.u8(2);
                enc.u64(c);
            }
        }
    }
    enc.usize(plan.proc_faults().len());
    for f in plan.proc_faults() {
        enc.usize(f.node);
        enc.u64(f.from);
        enc.u64(f.until);
        match f.kind {
            ProcFaultKind::Stall => enc.u8(0),
            ProcFaultKind::Slowdown(k) => {
                enc.u8(1);
                enc.u64(k);
            }
        }
    }
}

pub(crate) fn decode_fault_plan(dec: &mut Decoder<'_>) -> Result<FaultPlan, CheckpointError> {
    let mut plan = FaultPlan::new();
    let n_link = dec.usize()?;
    for _ in 0..n_link {
        let node = dec.usize()?;
        let dir = Direction::load(dec)?;
        let from = dec.u64()?;
        let until = dec.u64()?;
        let kind = match dec.u8()? {
            0 => LinkFaultKind::Drop,
            1 => LinkFaultKind::Delay(dec.u64()?),
            2 => LinkFaultKind::Bandwidth(dec.u64()?),
            _ => return Err(CheckpointError::Corrupt("bad link fault tag")),
        };
        plan.add_link_fault(LinkFault {
            node,
            dir,
            from,
            until,
            kind,
        });
    }
    let n_proc = dec.usize()?;
    for _ in 0..n_proc {
        let node = dec.usize()?;
        let from = dec.u64()?;
        let until = dec.u64()?;
        let kind = match dec.u8()? {
            0 => ProcFaultKind::Stall,
            1 => ProcFaultKind::Slowdown(dec.u64()?),
            _ => return Err(CheckpointError::Corrupt("bad proc fault tag")),
        };
        plan.add_proc_fault(ProcFault {
            node,
            from,
            until,
            kind,
        });
    }
    Ok(plan)
}

/// Reconstructs a typed fault-queue cell from its serialized form.
pub(crate) fn load_queue<M: Persist>(
    blobs: &[StagedBlob],
) -> Result<VecDeque<(u64, u64, M)>, CheckpointError> {
    let mut q = VecDeque::with_capacity(blobs.len());
    for staged in blobs {
        let mut dec = Decoder::new(&staged.msg);
        let msg = M::load(&mut dec)?;
        dec.finish()?;
        q.push_back((staged.ready, staged.attempts, msg));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        let mut metrics = Metrics {
            processed_per_node: vec![2, 0],
            busy_steps_per_node: vec![2, 0],
            ..Metrics::default()
        };
        metrics.steps = 3;
        metrics.last_busy_step = Some(1);
        Snapshot {
            m: 2,
            total_work: 5,
            t: 3,
            processed: 2,
            prev_round_departed: 1,
            trace_level: TraceLevel::Full,
            faults: Some(FaultPlan::random(2, 8, 7)),
            metrics,
            events: vec![
                Event::Processed {
                    t: 0,
                    node: 0,
                    units: 1,
                },
                Event::Sent {
                    t: 1,
                    node: 0,
                    dir: Direction::Ccw,
                    job_units: 3,
                },
            ],
            observability: None,
            nodes: vec![vec![1, 2, 3], vec![]],
            arena_cw: vec![vec![vec![9, 9]], vec![]],
            arena_ccw: vec![vec![], vec![]],
            queue_cw: vec![
                vec![StagedBlob {
                    ready: 4,
                    attempts: 1,
                    msg: vec![8],
                }],
                vec![],
            ],
            queue_ccw: vec![vec![], vec![]],
            app_meta: "alg=b1".to_string(),
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = tiny_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn header_is_magic_then_version() {
        let bytes = tiny_snapshot().to_bytes();
        assert_eq!(&bytes[..8], b"RINGSNAP");
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            SNAPSHOT_VERSION
        );
    }

    #[test]
    fn corruption_fails_closed() {
        let bytes = tiny_snapshot().to_bytes();
        // Truncation.
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::UnexpectedEof | CheckpointError::BadChecksum
                ),
                "cut at {cut}: {err:?}"
            );
        }
        // Bit flips anywhere are caught by the checksum (or the magic).
        for i in [0, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Snapshot::from_bytes(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = tiny_snapshot().to_bytes();
        bytes[8] = 0xFF; // mangle the version field…
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum); // …but fix the checksum
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(CheckpointError::BadVersion { found: _ })
        ));
    }

    #[test]
    fn decoder_rejects_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.u64(1);
        enc.u8(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u64().unwrap(), 1);
        assert!(dec.finish().is_err());
        assert_eq!(dec.u8().unwrap(), 0);
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, 1.77, f64::NAN, f64::INFINITY, 1e-300] {
            let mut enc = Encoder::new();
            enc.f64(v);
            let bytes = enc.into_bytes();
            let got = Decoder::new(&bytes).f64().unwrap();
            assert_eq!(v.to_bits(), got.to_bits());
        }
    }
}
