//! Independent validation of a recorded run (legacy facade).
//!
//! The heavy lifting now lives in [`crate::oracle`], which also understands
//! fault plans and the I1/I2/A1/A2 drop ledgers. [`validate_run`] remains
//! the stable, instance-aware entry point used throughout the test suite:
//! it runs the oracle fault-free and maps the result onto the original
//! coarse [`Violation`] vocabulary.
//!
//! Checks performed (require [`crate::TraceLevel::Full`]):
//!
//! 1. **Unit speed** — no node processes more than one unit in any step.
//! 2. **Conservation / causality** — replaying sends, deliveries (one step
//!    later), and processing from the trace, no node's resident work ever
//!    goes negative. A negative balance means a node processed or forwarded
//!    work before it could have physically arrived.
//! 3. **Completion** — total processed equals the instance's total work.
//! 4. **Makespan consistency** — the reported makespan is one past the last
//!    processing event.

use crate::engine::RunReport;
use crate::instance::Instance;
use crate::oracle::{check_run, OracleViolation};

/// A violation of the machine model found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The trace was not recorded at full detail, so it cannot be validated.
    TraceUnavailable,
    /// A node processed more than one unit in one step.
    Overwork {
        /// Offending node.
        node: usize,
        /// Step index.
        step: u64,
        /// Units processed in that step.
        units: u64,
    },
    /// A node's replayed resident work went negative: it used work it could
    /// not yet have had.
    NegativeBalance {
        /// Offending node.
        node: usize,
        /// Step index at which the balance went negative.
        step: u64,
        /// The (negative) balance, as processed+sent minus initial+received.
        deficit: i128,
    },
    /// Total processed work differs from the instance total.
    TotalMismatch {
        /// Processed according to the trace.
        processed: u64,
        /// Instance total.
        expected: u64,
    },
    /// Reported makespan disagrees with the last processing event.
    MakespanMismatch {
        /// Makespan in the report.
        reported: u64,
        /// Makespan derived from the trace.
        derived: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TraceUnavailable => {
                write!(f, "run was not recorded with TraceLevel::Full")
            }
            Violation::Overwork { node, step, units } => {
                write!(f, "node {node} processed {units} units in step {step}")
            }
            Violation::NegativeBalance {
                node,
                step,
                deficit,
            } => write!(
                f,
                "node {node} work balance went negative ({deficit}) at step {step}"
            ),
            Violation::TotalMismatch {
                processed,
                expected,
            } => {
                write!(f, "processed {processed} units, instance has {expected}")
            }
            Violation::MakespanMismatch { reported, derived } => {
                write!(f, "reported makespan {reported}, trace says {derived}")
            }
        }
    }
}

/// Validates a recorded run against its instance. Returns all violations
/// found (empty = valid).
///
/// This is the fault-free facade over [`crate::oracle::check_run`]; oracle
/// findings outside the legacy vocabulary (ledger overruns, fault
/// illegality) cannot occur without a fault plan and audited drop events
/// from a misbehaving policy, and are dropped from the mapping.
pub fn validate_run(instance: &Instance, report: &RunReport) -> Vec<Violation> {
    check_run(instance, report, None)
        .into_iter()
        .filter_map(|v| match v {
            OracleViolation::TraceUnavailable => Some(Violation::TraceUnavailable),
            OracleViolation::Overwork { node, step, units } => {
                Some(Violation::Overwork { node, step, units })
            }
            OracleViolation::NegativeBalance {
                node,
                step,
                deficit,
            } => Some(Violation::NegativeBalance {
                node,
                step,
                deficit,
            }),
            OracleViolation::TotalMismatch {
                processed,
                expected,
            } => Some(Violation::TotalMismatch {
                processed,
                expected,
            }),
            OracleViolation::MakespanMismatch { reported, derived } => {
                Some(Violation::MakespanMismatch { reported, derived })
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Node, NodeCtx, Payload, StepIo};

    /// Minimal honest policy: process local work, never communicate.
    struct LocalOnly {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    fn run_local(loads: Vec<u64>) -> (Instance, RunReport) {
        let inst = Instance::from_loads(loads.clone());
        let nodes: Vec<LocalOnly> = loads.iter().map(|&x| LocalOnly { remaining: x }).collect();
        let config = EngineConfig {
            trace: crate::trace::TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, inst.total_work(), config).run().unwrap();
        (inst, report)
    }

    #[test]
    fn honest_run_validates() {
        let (inst, report) = run_local(vec![4, 0, 2]);
        assert!(validate_run(&inst, &report).is_empty());
    }

    #[test]
    fn off_trace_cannot_be_validated() {
        let inst = Instance::from_loads(vec![1]);
        let nodes = vec![LocalOnly { remaining: 1 }];
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(
            validate_run(&inst, &report),
            vec![Violation::TraceUnavailable]
        );
    }

    #[test]
    fn wrong_instance_is_detected() {
        let (_, report) = run_local(vec![4, 0, 2]);
        // Validate against an instance with a different total.
        let other = Instance::from_loads(vec![4, 0, 1]);
        let violations = validate_run(&other, &report);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::TotalMismatch { .. })));
        // Node 2 processed 2 units but `other` only gives it 1 — the replay
        // must also flag the causality hole.
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NegativeBalance { node: 2, .. })));
    }
}
