//! Independent validation of a recorded run.
//!
//! The engine already enforces the machine model online; this module
//! re-derives the key invariants *from the recorded trace alone*, so that a
//! bug in a policy (or in the engine's own accounting) that fabricates,
//! duplicates, or teleports work is caught by an independent code path.
//!
//! Checks performed (require [`crate::TraceLevel::Full`]):
//!
//! 1. **Unit speed** — no node processes more than one unit in any step.
//! 2. **Conservation / causality** — replaying sends, deliveries (one step
//!    later), and processing from the trace, no node's resident work ever
//!    goes negative. A negative balance means a node processed or forwarded
//!    work before it could have physically arrived.
//! 3. **Completion** — total processed equals the instance's total work.
//! 4. **Makespan consistency** — the reported makespan is one past the last
//!    processing event.

use crate::engine::RunReport;
use crate::instance::Instance;
use crate::topology::{Direction, RingTopology};
use crate::trace::{Event, TraceLevel};

/// A violation of the machine model found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The trace was not recorded at full detail, so it cannot be validated.
    TraceUnavailable,
    /// A node processed more than one unit in one step.
    Overwork {
        /// Offending node.
        node: usize,
        /// Step index.
        step: u64,
        /// Units processed in that step.
        units: u64,
    },
    /// A node's replayed resident work went negative: it used work it could
    /// not yet have had.
    NegativeBalance {
        /// Offending node.
        node: usize,
        /// Step index at which the balance went negative.
        step: u64,
        /// The (negative) balance, as processed+sent minus initial+received.
        deficit: i128,
    },
    /// Total processed work differs from the instance total.
    TotalMismatch {
        /// Processed according to the trace.
        processed: u64,
        /// Instance total.
        expected: u64,
    },
    /// Reported makespan disagrees with the last processing event.
    MakespanMismatch {
        /// Makespan in the report.
        reported: u64,
        /// Makespan derived from the trace.
        derived: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TraceUnavailable => {
                write!(f, "run was not recorded with TraceLevel::Full")
            }
            Violation::Overwork { node, step, units } => {
                write!(f, "node {node} processed {units} units in step {step}")
            }
            Violation::NegativeBalance {
                node,
                step,
                deficit,
            } => write!(
                f,
                "node {node} work balance went negative ({deficit}) at step {step}"
            ),
            Violation::TotalMismatch {
                processed,
                expected,
            } => {
                write!(f, "processed {processed} units, instance has {expected}")
            }
            Violation::MakespanMismatch { reported, derived } => {
                write!(f, "reported makespan {reported}, trace says {derived}")
            }
        }
    }
}

/// Validates a recorded run against its instance. Returns all violations
/// found (empty = valid).
pub fn validate_run(instance: &Instance, report: &RunReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !matches!(report.trace.level(), TraceLevel::Full) {
        return vec![Violation::TraceUnavailable];
    }
    let m = instance.num_processors();
    let topo = RingTopology::new(m);

    // Replay. balance[i] = resident work currently at node i.
    let mut balance: Vec<i128> = instance.loads().iter().map(|&x| x as i128).collect();
    // Deliveries scheduled for the next step: (node, amount).
    let mut arriving_now: Vec<i128> = vec![0; m];
    let mut arriving_next: Vec<i128> = vec![0; m];

    let mut processed_total: u64 = 0;
    let mut last_busy: Option<u64> = None;
    let mut current_step: Option<u64> = None;
    let mut processed_in_step: Vec<u64> = vec![0; m];

    let advance_to = |step: u64,
                      current_step: &mut Option<u64>,
                      balance: &mut Vec<i128>,
                      arriving_now: &mut Vec<i128>,
                      arriving_next: &mut Vec<i128>,
                      processed_in_step: &mut Vec<u64>| {
        // Move time forward to `step`, delivering queued messages at each tick.
        while current_step.map_or(true, |c| c < step) {
            let next = current_step.map_or(0, |c| c + 1);
            if current_step.is_some() {
                // Deliveries sent in the step we are leaving arrive now.
                std::mem::swap(arriving_now, arriving_next);
                for (i, b) in balance.iter_mut().enumerate() {
                    *b += arriving_now[i];
                    arriving_now[i] = 0;
                }
            }
            processed_in_step.iter_mut().for_each(|c| *c = 0);
            *current_step = Some(next);
        }
    };

    for ev in report.trace.events() {
        let t = match ev {
            Event::Processed { t, .. } | Event::Sent { t, .. } => *t,
        };
        advance_to(
            t,
            &mut current_step,
            &mut balance,
            &mut arriving_now,
            &mut arriving_next,
            &mut processed_in_step,
        );
        match *ev {
            Event::Processed { t, node, units } => {
                processed_in_step[node] += units;
                if processed_in_step[node] > 1 {
                    violations.push(Violation::Overwork {
                        node,
                        step: t,
                        units: processed_in_step[node],
                    });
                }
                balance[node] -= units as i128;
                processed_total += units;
                last_busy = Some(t);
                if balance[node] < 0 {
                    violations.push(Violation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
            }
            Event::Sent {
                t,
                node,
                dir,
                job_units,
            } => {
                balance[node] -= job_units as i128;
                if balance[node] < 0 {
                    violations.push(Violation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
                let dest = topo.neighbor(node, dir);
                let _ = Direction::Cw; // dir already encodes destination side
                arriving_next[dest] += job_units as i128;
            }
        }
    }

    if processed_total != instance.total_work() {
        violations.push(Violation::TotalMismatch {
            processed: processed_total,
            expected: instance.total_work(),
        });
    }
    let derived = last_busy.map_or(0, |t| t + 1);
    if derived != report.makespan {
        violations.push(Violation::MakespanMismatch {
            reported: report.makespan,
            derived,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Node, NodeCtx, Payload, StepIo};

    /// Minimal honest policy: process local work, never communicate.
    struct LocalOnly {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    fn run_local(loads: Vec<u64>) -> (Instance, RunReport) {
        let inst = Instance::from_loads(loads.clone());
        let nodes: Vec<LocalOnly> = loads.iter().map(|&x| LocalOnly { remaining: x }).collect();
        let config = EngineConfig {
            trace: crate::trace::TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, inst.total_work(), config).run().unwrap();
        (inst, report)
    }

    #[test]
    fn honest_run_validates() {
        let (inst, report) = run_local(vec![4, 0, 2]);
        assert!(validate_run(&inst, &report).is_empty());
    }

    #[test]
    fn off_trace_cannot_be_validated() {
        let inst = Instance::from_loads(vec![1]);
        let nodes = vec![LocalOnly { remaining: 1 }];
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(
            validate_run(&inst, &report),
            vec![Violation::TraceUnavailable]
        );
    }

    #[test]
    fn wrong_instance_is_detected() {
        let (_, report) = run_local(vec![4, 0, 2]);
        // Validate against an instance with a different total.
        let other = Instance::from_loads(vec![4, 0, 1]);
        let violations = validate_run(&other, &report);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::TotalMismatch { .. })));
        // Node 2 processed 2 units but `other` only gives it 1 — the replay
        // must also flag the causality hole.
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NegativeBalance { node: 2, .. })));
    }
}
