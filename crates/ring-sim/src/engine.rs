//! The synchronous ring execution engine.
//!
//! The engine owns one [`Node`] per processor and advances global time in
//! lock-step rounds. In round `t` every node, in parallel (round-delayed
//! message delivery makes node evaluation order unobservable):
//!
//! 1. receives the messages its two neighbors sent in round `t - 1`,
//! 2. performs one step of its local policy, possibly processing one unit of
//!    work and emitting messages to either neighbor.
//!
//! This is exactly the machine model of §2 of the paper: "In one unit of
//! time … each processor can receive some jobs from each neighbor, send some
//! jobs to each neighbor, and process one unit of work. If a processor sends
//! a job to a neighbor at time t, the neighbor receives the job at time
//! t + 1."
//!
//! The engine enforces the model: it errors if a node processes more than
//! one unit per step, and (with [`LinkCapacity::UnitJobs`], the §7 model) if
//! a node sends more than one job or more than two messages over one link in
//! one step. It also verifies global work conservation at termination.
//!
//! ## Message arenas
//!
//! Messages live in two double-buffered arenas per direction: `cur` holds
//! what was sent last round (this round's inboxes), `next` collects what is
//! sent this round. Policies *drain* their [`Inbox`] (borrowed from `cur`)
//! and push through an [`Outbox`] that writes straight into the receiving
//! node's `next` vector, so the steady-state inner loop moves messages
//! without allocating: all vectors retain their high-water-mark capacity and
//! the buffers swap roles at the end of each round.
//!
//! ## Executors
//!
//! [`Engine::run`] steps nodes `0..m` in index order on one thread.
//! [`Engine::par_run`] shards the ring into contiguous arcs, one scoped
//! thread per arc, exchanging only the per-round boundary messages; because
//! delivery is round-delayed and each `next` vector has exactly one writer
//! per round, the two produce bit-for-bit identical [`RunReport`]s.

use std::collections::VecDeque;

use crate::checkpoint::{self, CheckpointError, Decoder, Encoder, Persist, Snapshot, StagedBlob};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::metrics::{Metrics, Observability, StepSample};
use crate::topology::{Direction, RingTopology};
use crate::trace::{DropKind, Event, Trace, TraceLevel};

/// Anything that can travel over a ring link.
///
/// The engine only needs to know how much *job payload* a message carries so
/// that it can meter link capacity and detect quiescence; the contents are
/// otherwise opaque policy data.
pub trait Payload {
    /// Units of job payload carried by this message (0 for pure control
    /// messages such as the load announcements of the §7 algorithm).
    fn job_units(&self) -> u64;

    /// How many *logical* messages this arena entry stands for.
    ///
    /// The engine's arenas store count-coalesced runs: one entry may
    /// represent `run_len()` identical unit messages (pushed via
    /// [`Outbox::push_n`]). Every meter the engine keeps — `messages_sent`,
    /// link-capacity enforcement, fault drop/delay/retry counters, the
    /// observability link series — counts `run_len()` logical messages per
    /// entry, so a run-coalesced stream reports *identically* to the same
    /// stream sent one unit message at a time. Defaults to 1 (an ordinary
    /// message stands for itself); bucket messages keep the default because
    /// a bucket is one logical message whatever its job count.
    fn run_len(&self) -> u64 {
        1
    }
}

/// A [`Payload`] that can absorb identical copies of itself into one
/// count-coalesced arena entry (the run-length message representation).
///
/// `coalesce(count)` must return a message equivalent to `count` copies of
/// `self` sent back-to-back: its [`Payload::job_units`] must be `count ×
/// self.job_units()` and its [`Payload::run_len`] must be `count ×
/// self.run_len()`. The engine relies on this to keep metrics, traces, and
/// observability bit-identical between the per-unit and coalesced
/// representations.
pub trait Coalesce: Payload + Sized {
    /// Folds `count` copies of `self` into one message.
    fn coalesce(self, count: u64) -> Self;
}

/// Messages delivered to a node at the start of a step, borrowed from the
/// engine's arenas by the side they arrived from.
///
/// Policies either drain the vectors (`drain(..)` keeps the buffer capacity
/// for the next round) or read them by reference; anything left over is
/// discarded by the engine when the step ends.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    /// Messages from the counterclockwise neighbor (`i - 1`), i.e. messages
    /// that were travelling clockwise.
    pub from_ccw: &'a mut Vec<M>,
    /// Messages from the clockwise neighbor (`i + 1`), i.e. messages that
    /// were travelling counterclockwise.
    pub from_cw: &'a mut Vec<M>,
}

impl<M> Inbox<'_, M> {
    /// True iff nothing arrived this step.
    pub fn is_empty(&self) -> bool {
        self.from_ccw.is_empty() && self.from_cw.is_empty()
    }
}

/// A node's outgoing channel for one step, writing directly into the
/// receiving nodes' arena buffers while metering message counts and job
/// payload per direction (the engine reads the meters for link-capacity
/// enforcement, metrics and tracing).
#[derive(Debug)]
pub struct Outbox<'a, M: Payload> {
    to_cw: &'a mut Vec<M>,
    to_ccw: &'a mut Vec<M>,
    cw_messages: u64,
    cw_payload: u64,
    ccw_messages: u64,
    ccw_payload: u64,
}

impl<M: Payload> Outbox<'_, M> {
    /// Appends a message in the given direction (delivered at `t + 1`).
    ///
    /// Meters [`Payload::run_len`] logical messages per call, so a
    /// count-coalesced entry is indistinguishable — in every counter the
    /// engine keeps — from the unit messages it stands for.
    pub fn push(&mut self, dir: Direction, msg: M) {
        let units = msg.job_units();
        let runs = msg.run_len();
        match dir {
            Direction::Cw => {
                self.cw_messages += runs;
                self.cw_payload += units;
                self.to_cw.push(msg);
            }
            Direction::Ccw => {
                self.ccw_messages += runs;
                self.ccw_payload += units;
                self.to_ccw.push(msg);
            }
        }
    }

    /// Appends `count` identical copies of `msg` as **one** count-coalesced
    /// arena entry (one slot whatever `count` is — the run-length message
    /// representation). A no-op when `count == 0`.
    pub fn push_n(&mut self, dir: Direction, msg: M, count: u64)
    where
        M: Coalesce,
    {
        if count == 0 {
            return;
        }
        self.push(dir, msg.coalesce(count));
    }

    /// True iff nothing was sent yet this step.
    pub fn is_empty(&self) -> bool {
        self.cw_messages == 0 && self.ccw_messages == 0
    }

    /// Messages pushed in the given direction this step.
    pub fn messages(&self, dir: Direction) -> u64 {
        match dir {
            Direction::Cw => self.cw_messages,
            Direction::Ccw => self.ccw_messages,
        }
    }

    /// Job payload pushed in the given direction this step.
    pub fn payload(&self, dir: Direction) -> u64 {
        match dir {
            Direction::Cw => self.cw_payload,
            Direction::Ccw => self.ccw_payload,
        }
    }
}

/// One audited drop-off decision by a scheduling policy: how much work a
/// node permanently accepted out of a bucket, together with the cumulative
/// ledgers that justified it under the paper's constraints.
///
/// Policies report these through [`Audit`]; the engine turns them into
/// [`Event::DroppedOff`] trace events that the [`crate::oracle`] re-checks
/// against I1/I2 (unit jobs) or A1/A2 (arbitrary sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropRecord {
    /// Identifier of the bucket the work came from.
    pub bucket: u64,
    /// Integral work units accepted.
    pub int: u64,
    /// Fractional (shadow) work accepted.
    pub frac: f64,
    /// Bucket-cumulative fractional drop *after* this event (the I1/A1
    /// reference level).
    pub cum_drop_frac: f64,
    /// Node-cumulative fractional acceptance *after* this event (the I2/A2
    /// reference level).
    pub cum_accept_frac: f64,
    /// Largest job size the bucket has seen (0 for unit jobs).
    pub p_max_bucket: u64,
    /// Largest job size the node has seen (0 for unit jobs).
    pub p_max_node: u64,
    /// Which invariant family governs this drop.
    pub kind: DropKind,
}

/// Where a node's [`DropRecord`]s go during one step: a borrowed sink when
/// the engine is recording a full trace, or nowhere ([`Audit::off`]) when it
/// is not — policies call [`Audit::record`] unconditionally and the sink
/// decides.
#[derive(Debug)]
pub struct Audit<'a> {
    sink: Option<&'a mut Vec<DropRecord>>,
}

impl<'a> Audit<'a> {
    /// An audit sink that discards everything (used when tracing is off and
    /// by executors that do not audit, such as `ring-net`'s).
    pub fn off() -> Self {
        Audit { sink: None }
    }

    /// An audit sink collecting into `sink`.
    pub fn to(sink: &'a mut Vec<DropRecord>) -> Self {
        Audit { sink: Some(sink) }
    }

    /// True iff records are being kept. Policies may skip building records
    /// when disabled, but [`Audit::record`] is always safe to call.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Reports one drop-off decision.
    #[inline]
    pub fn record(&mut self, rec: DropRecord) {
        if let Some(sink) = self.sink.as_mut() {
            sink.push(rec);
        }
    }
}

/// The borrowed I/O surface a node works through during one step: its
/// [`Inbox`], its [`Outbox`], and the [`Audit`] sink for drop-off records.
///
/// Constructed by the engine over its arenas; alternative executors (such
/// as the thread-per-processor one in `ring-net`) build it over their own
/// buffers via [`StepIo::new`].
#[derive(Debug)]
pub struct StepIo<'a, M: Payload> {
    /// Messages delivered this step.
    pub inbox: Inbox<'a, M>,
    /// Outgoing messages (delivered at `t + 1`).
    pub out: Outbox<'a, M>,
    /// Sink for drop-off audit records (discarding unless the engine is
    /// recording a full trace).
    pub audit: Audit<'a>,
}

impl<'a, M: Payload> StepIo<'a, M> {
    /// Builds a step I/O surface over caller-owned buffers: the two inbox
    /// vectors (messages that arrived from the counterclockwise and the
    /// clockwise neighbor) and the two destination vectors messages travel
    /// into (clockwise and counterclockwise). The audit sink starts
    /// [`Audit::off`].
    pub fn new(
        from_ccw: &'a mut Vec<M>,
        from_cw: &'a mut Vec<M>,
        to_cw: &'a mut Vec<M>,
        to_ccw: &'a mut Vec<M>,
    ) -> Self {
        StepIo {
            inbox: Inbox { from_ccw, from_cw },
            out: Outbox {
                to_cw,
                to_ccw,
                cw_messages: 0,
                cw_payload: 0,
                ccw_messages: 0,
                ccw_payload: 0,
            },
            audit: Audit::off(),
        }
    }
}

/// Read-only per-step context handed to a node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx {
    /// This node's processor index.
    pub id: usize,
    /// The current step (starts at 0).
    pub t: u64,
    /// The ring the node lives on. Policies may use `topo.len()` (the ring
    /// size is public knowledge in the paper's model — e.g. the wrap-around
    /// rule of Lemma 5 needs it) but get no access to other nodes' state.
    pub topo: RingTopology,
}

/// A scheduling policy running on one processor.
///
/// Implementations hold all of the processor's local state: resident jobs,
/// bookkeeping about buckets passing through, neighbor load estimates, etc.
/// They communicate only through the engine-delivered messages, which is
/// what makes the algorithms genuinely distributed.
pub trait Node {
    /// Link message type.
    type Msg: Payload;

    /// Executes one synchronous step: consume the inbox (messages the
    /// neighbors sent in the previous step; empty at `t = 0`), optionally
    /// process one unit of resident work, and emit messages through
    /// `io.out`. Returns the units of work processed this step (the model
    /// allows at most 1).
    fn on_step(&mut self, ctx: &NodeCtx, io: &mut StepIo<'_, Self::Msg>) -> u64;

    /// Units of unprocessed work currently resident on this node (not
    /// counting work in flight). Used for diagnostics and the observability
    /// backlog series; termination is detected by global work conservation.
    fn pending_work(&self) -> u64;

    /// Declares how far ahead this node's behavior is a pure drain — the
    /// contract behind quiescent-span step compression
    /// ([`EngineConfig::compress`]).
    ///
    /// Returning `Some(Quiescence { span, backlog })` at time `now`
    /// promises that, **given empty inboxes for every round in
    /// `now..now + span`**, for each such round `now + j` the node:
    ///
    /// - sends nothing and audits nothing,
    /// - processes exactly one unit iff `j < backlog`,
    /// - reports `pending_work()` after the round equal to its value before
    ///   the span minus `min(backlog, j + 1)`.
    ///
    /// The engine only fast-forwards when *every* node is quiescent and no
    /// messages are in flight or queued, so the empty-inbox premise holds by
    /// construction. Returning `None` (the default) opts the node out and
    /// is always safe.
    fn quiescence(&self, now: u64) -> Option<Quiescence> {
        let _ = now;
        None
    }

    /// Advances the node's internal state by `steps` quiescent rounds, as
    /// if [`Node::on_step`] had been called that many times with empty
    /// inboxes. Called by the engine only after [`Node::quiescence`]
    /// returned a span of at least `steps`; the default (for nodes that
    /// never report quiescence) is unreachable and does nothing.
    fn fast_forward(&mut self, steps: u64) {
        let _ = steps;
    }

    /// Serializes this node's complete policy state into a checkpoint
    /// ([`Engine::on_checkpoint`]). The round-trip contract is bit-exactness:
    /// after [`Node::restore_state`] on a freshly constructed node of the
    /// same configuration, every subsequent step must behave identically —
    /// including `f64` bookkeeping, which must travel as bit patterns
    /// ([`Encoder::f64`]).
    ///
    /// The default refuses ([`CheckpointError::Unsupported`]); nodes opt in.
    /// Plain runs never call this, so opting out costs nothing.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        let _ = enc;
        Err(CheckpointError::Unsupported(
            "node type does not implement save_state",
        ))
    }

    /// Restores the state written by [`Node::save_state`] into `self` (a
    /// freshly constructed node of the same configuration), consuming
    /// exactly the bytes that were written. See [`Engine::resume`].
    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        let _ = dec;
        Err(CheckpointError::Unsupported(
            "node type does not implement restore_state",
        ))
    }
}

/// A node's self-reported quiescence window: see [`Node::quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quiescence {
    /// Number of upcoming rounds (starting at `now`) during which, absent
    /// incoming messages, the node will not send, drop, or change behavior
    /// other than draining its backlog. `u64::MAX` means "indefinitely".
    pub span: u64,
    /// Units of resident work the node will process during the window, one
    /// per round, starting immediately.
    pub backlog: u64,
}

/// Per-link-per-direction-per-step capacity constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkCapacity {
    /// No bound — the model of §2–§6 ("no bounds on the capacity of each
    /// network link", following Awerbuch–Kutten–Peleg).
    Unbounded,
    /// The §7 model: at most one job and one control message per link
    /// direction per step. The paper notes its Figure 1 algorithm briefly
    /// uses two messages per link per step and that this is "not hard to
    /// reduce to one"; we therefore allow at most 2 messages of which at
    /// most one carries job payload.
    UnitJobs,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard step budget; the run errors if exceeded. `None` derives a
    /// generous default from the instance (`4·(n + m) + 64`, widened by
    /// twice the fault-plan horizon when one is set), which is far above
    /// any constant-factor-approximate schedule.
    pub max_steps: Option<u64>,
    /// Link model.
    pub link_capacity: LinkCapacity,
    /// Event recording level.
    pub trace: TraceLevel,
    /// Collect the per-step [`Observability`] time series (off by default:
    /// it costs one `pending_work` call and a payload sum per node per
    /// step).
    pub observe: bool,
    /// Deterministic fault schedule (`None` injects nothing and keeps the
    /// zero-overhead fast path; `Some` of an empty plan takes the fault
    /// path but produces bit-identical results to `None`). Honored
    /// identically by [`Engine::run`] and [`Engine::par_run`].
    pub faults: Option<FaultPlan>,
    /// Quiescent-span step compression: when every node reports (via
    /// [`Node::quiescence`]) that its next state-changing event is `k ≥ 2`
    /// rounds away, no messages are in flight, and the fault plan is
    /// exhausted, the engine fast-forwards the span analytically instead of
    /// looping. Metrics, trace, and observability record the expanded
    /// per-step view, so the [`RunReport`] is bit-for-bit identical to the
    /// uncompressed run (asserted by the workspace's equivalence proptests).
    /// Off by default.
    pub compress: bool,
    /// Snapshot cadence: request a checkpoint at every step boundary `t`
    /// divisible by this value (and after the resume point). Only effective
    /// once a sink is installed via [`Engine::on_checkpoint`]; with the
    /// cadence set, quiescent-span compression caps its spans so fast-
    /// forwarding always lands exactly on the next boundary (the split is
    /// unobservable in the report — see DESIGN.md §11). `None` (default)
    /// never checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Free-form metadata embedded in every snapshot ([`Snapshot::app_meta`]).
    /// The engine never interprets it; the CLI stores the flags needed to
    /// rebuild the policy nodes at resume time.
    pub checkpoint_meta: String,
    /// Locality window for the arc-parallel executor: how many rounds each
    /// arc steps between global synchronization points. Within a window,
    /// arcs exchange boundary messages through round-tagged halo mailboxes
    /// (a neighbor handshake, no global barrier); completion, errors,
    /// checkpoints, compression votes and span pauses are all resolved at
    /// window boundaries, which the engine aligns so the report stays
    /// bit-for-bit identical to [`Engine::run`] for *every* window size.
    /// `None` (default) reads the `RING_WINDOW` environment variable
    /// (`"L"` means "as large as the shortest arc") and otherwise uses a
    /// built-in default. Ignored by the sequential executor.
    pub window: Option<u64>,
    /// Parallel-executor strategy knobs (see [`ParConfig`]). Ignored by the
    /// sequential executor.
    pub par: ParConfig,
}

/// Which parallel executor [`Engine::par_run`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParStrategy {
    /// One scoped thread per shard, each owning a fixed contiguous arc for
    /// the whole run (the PR-6 windowed executor).
    Static,
    /// A work-stealing pool: the ring is cut into more node-range tasks
    /// than threads, workers steal whichever task is runnable, and the
    /// leader recuts the ranges from the ledger's per-node processed
    /// counts when a window exposes imbalance (see DESIGN.md §14). The
    /// report stays bit-identical to [`Engine::run`] for every shard
    /// count, task granularity, steal schedule and rebalance history.
    Steal,
}

/// Tuning for the parallel executor. Every field falls back to an
/// environment variable and then a built-in default, so benches and CI
/// matrices can steer the executor without threading flags everywhere:
/// `RING_PAR_STRAT` (`"static"`/`"steal"`), `RING_REBALANCE` (`0`/`1`),
/// `RING_STEAL_TASKS` (tasks per shard), `RING_STEAL_SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParConfig {
    /// Executor strategy; defaults to [`ParStrategy::Static`].
    pub strategy: Option<ParStrategy>,
    /// Recut task ranges at window boundaries when the ledger shows
    /// imbalance (steal strategy only); defaults to on.
    pub rebalance: Option<bool>,
    /// Node-range tasks per shard (steal strategy only); more tasks give
    /// finer stealing granularity at slightly more handshake overhead.
    /// Defaults to 4.
    pub tasks_per_shard: Option<usize>,
    /// Seed perturbing the steal order (which end of the task queue each
    /// worker pops). Reports are schedule-independent, so this is purely an
    /// adversarial-testing knob. Defaults to 0.
    pub steal_seed: Option<u64>,
    /// Worker threads for the steal executor. Defaults to
    /// `min(shards, tasks, available cores)` — tasks beyond the core count
    /// only add scheduling churn, never throughput. Setting this (or
    /// `RING_PAR_THREADS`) forces a count, which is how CI exercises
    /// oversubscribed interleavings on small runners; reports are
    /// schedule-independent either way.
    pub threads: Option<usize>,
}

impl ParConfig {
    fn env_or<T: std::str::FromStr>(var: &str, default: T) -> T {
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }

    /// The strategy after environment fallback.
    pub fn resolved_strategy(&self) -> ParStrategy {
        self.strategy.unwrap_or_else(|| {
            match std::env::var("RING_PAR_STRAT")
                .ok()
                .as_deref()
                .map(str::trim)
            {
                Some(s) if s.eq_ignore_ascii_case("steal") => ParStrategy::Steal,
                _ => ParStrategy::Static,
            }
        })
    }

    /// Whether window-boundary rebalancing is on, after environment
    /// fallback.
    pub fn resolved_rebalance(&self) -> bool {
        self.rebalance
            .unwrap_or_else(|| Self::env_or::<u64>("RING_REBALANCE", 1) != 0)
    }

    /// Tasks per shard, after environment fallback; clamped to `>= 1`.
    pub fn resolved_tasks_per_shard(&self) -> usize {
        self.tasks_per_shard
            .unwrap_or_else(|| Self::env_or("RING_STEAL_TASKS", 4))
            .max(1)
    }

    /// Steal-order seed, after environment fallback.
    pub fn resolved_steal_seed(&self) -> u64 {
        self.steal_seed
            .unwrap_or_else(|| Self::env_or("RING_STEAL_SEED", 0))
    }

    /// Worker-thread cap for one window's pool, after environment fallback;
    /// `None` means "fit the machine" (cap at the available cores).
    pub fn resolved_threads(&self) -> Option<usize> {
        self.threads
            .map(Some)
            .unwrap_or_else(|| std::env::var("RING_PAR_THREADS").ok()?.trim().parse().ok())
            .map(|n: usize| n.max(1))
    }
}

impl EngineConfig {
    /// Builder-style setter for [`EngineConfig::checkpoint_every`].
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` (a zero cadence is meaningless).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = Some(every);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_steps: None,
            link_capacity: LinkCapacity::Unbounded,
            trace: TraceLevel::Off,
            observe: false,
            faults: None,
            compress: false,
            checkpoint_every: None,
            checkpoint_meta: String::new(),
            window: None,
            par: ParConfig::default(),
        }
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Schedule length: the time at which the last unit of work finished
    /// processing (work processed during step `t` completes at `t + 1`).
    /// Zero for an empty instance.
    pub makespan: u64,
    /// Aggregate counters.
    pub metrics: Metrics,
    /// Event log (empty unless [`TraceLevel::Full`]).
    pub trace: Trace,
    /// Per-step time series (`None` unless [`EngineConfig::observe`]).
    pub observability: Option<Observability>,
}

/// Outcome of a bounded engine span ([`Engine::run_span`] /
/// [`Engine::par_run_span`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Every unit of `total_work` has been processed; the engine is finished
    /// and must not be stepped again. Boxed: a [`RunReport`] dwarfs the
    /// `Paused` variant, and spans pause far more often than they finish.
    Done(Box<RunReport>),
    /// The engine reached the requested step boundary with work still
    /// outstanding. All loop-carried state (arenas, link queues, metrics,
    /// trace, observability) is retained in memory — exactly the state a
    /// checkpoint at this boundary would serialize — so the next
    /// `run_span`/`par_run_span`/`run`/`par_run` call continues
    /// bit-identically, and [`Engine::snapshot`] can persist it.
    Paused {
        /// The step boundary the engine paused at.
        t: u64,
        /// Cumulative units of work processed so far.
        processed: u64,
    },
}

/// What one node did in one metered step (internal).
struct NodeStep {
    work_done: u64,
    cw_messages: u64,
    cw_payload: u64,
    ccw_messages: u64,
    ccw_payload: u64,
}

impl NodeStep {
    /// The step of a node that did not run (stalled by a processor fault).
    fn idle() -> Self {
        NodeStep {
            work_done: 0,
            cw_messages: 0,
            cw_payload: 0,
            ccw_messages: 0,
            ccw_payload: 0,
        }
    }

    fn sent_payload(&self) -> u64 {
        self.cw_payload + self.ccw_payload
    }
}

/// A message staged on a faulty link, waiting to depart.
#[derive(Debug)]
pub(crate) struct Staged<M> {
    /// Earliest step the message may depart (push step + link delay).
    pub(crate) ready: u64,
    /// Failed departure attempts so far (drops and bandwidth refusals).
    pub(crate) attempts: u64,
    pub(crate) msg: M,
}

/// One node's per-direction link queue under fault injection. FIFO: faults
/// reorder nothing, they only hold messages back.
pub(crate) type LinkQueue<M> = VecDeque<Staged<M>>;

/// What actually left a node's link in one direction during one step, plus
/// the fault counters observed while draining the queue.
///
/// All counters are in *logical* messages ([`Payload::run_len`] per arena
/// entry), so per-unit and count-coalesced streams meter identically.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkDeparture {
    /// Logical messages that departed (delivered at `t + 1`).
    pub(crate) messages: u64,
    /// Job payload that departed.
    pub(crate) payload: u64,
    /// Queued logical messages refused because the link was dropping.
    pub(crate) dropped: u64,
    /// Queued logical messages held back by a delay epoch or bandwidth
    /// backlog.
    pub(crate) delayed: u64,
    /// Departed logical messages that had previously failed at least one
    /// attempt.
    pub(crate) retried: u64,
}

/// Drains one node's directed link for one step under a fault plan: newly
/// pushed messages enter the FIFO queue with their delay applied, then the
/// queue head departs into `dest` while the link is up and within its
/// bandwidth cap (head-of-line blocking keeps FIFO order), and everything
/// still eligible but held back is counted as dropped or delayed.
///
/// Pure in `(plan, node, dir, t)` and the queue state, so both executors
/// evaluate it identically. With no active fault this moves every staged
/// message straight through — bit-identical to the un-faulted engine.
pub(crate) fn transmit<M: Payload>(
    plan: &FaultPlan,
    node: usize,
    dir: Direction,
    t: u64,
    staged: &mut Vec<M>,
    queue: &mut LinkQueue<M>,
    dest: &mut Vec<M>,
) -> LinkDeparture {
    let delay = plan.link_delay(node, dir, t);
    for msg in staged.drain(..) {
        queue.push_back(Staged {
            ready: t + delay,
            attempts: 0,
            msg,
        });
    }
    let mut dep = LinkDeparture::default();
    let down = plan.link_down(node, dir, t);
    let cap = plan.link_cap(node, dir, t);
    if !down {
        while let Some(head) = queue.front() {
            if head.ready > t {
                break;
            }
            let units = head.msg.job_units();
            if let Some(cap) = cap {
                if dep.payload + units > cap {
                    break;
                }
            }
            let head = queue.pop_front().expect("front was Some");
            let runs = head.msg.run_len();
            dep.messages += runs;
            dep.payload += units;
            if head.attempts > 0 {
                dep.retried += runs;
            }
            dest.push(head.msg);
        }
    }
    for entry in queue.iter_mut() {
        let runs = entry.msg.run_len();
        if entry.ready <= t {
            entry.attempts += 1;
            if down {
                dep.dropped += runs;
            } else {
                dep.delayed += runs;
            }
        } else {
            dep.delayed += runs;
        }
    }
    dep
}

/// Steps one node over the given buffers and enforces the per-node model
/// rules (unit speed, link capacity), leaving the inbox buffers empty.
/// Shared verbatim by both executors so they cannot drift.
#[allow(clippy::too_many_arguments)] // four directed buffers + ctx is the natural shape
fn drive_node<N: Node>(
    node: &mut N,
    ctx: &NodeCtx,
    from_ccw: &mut Vec<N::Msg>,
    from_cw: &mut Vec<N::Msg>,
    to_cw: &mut Vec<N::Msg>,
    to_ccw: &mut Vec<N::Msg>,
    link_capacity: LinkCapacity,
    audit: Option<&mut Vec<DropRecord>>,
) -> Result<NodeStep, SimError> {
    let mut io = StepIo::new(from_ccw, from_cw, to_cw, to_ccw);
    if let Some(sink) = audit {
        io.audit = Audit::to(sink);
    }
    let work_done = node.on_step(ctx, &mut io);
    let step = NodeStep {
        work_done,
        cw_messages: io.out.cw_messages,
        cw_payload: io.out.cw_payload,
        ccw_messages: io.out.ccw_messages,
        ccw_payload: io.out.ccw_payload,
    };
    // Anything the policy chose not to drain is gone; clearing (not
    // reallocating) keeps the arena capacity for the next round.
    from_ccw.clear();
    from_cw.clear();
    if step.work_done > 1 {
        return Err(SimError::Overwork {
            node: ctx.id,
            step: ctx.t,
            units: step.work_done,
        });
    }
    if link_capacity == LinkCapacity::UnitJobs {
        for (messages, payload) in [
            (step.cw_messages, step.cw_payload),
            (step.ccw_messages, step.ccw_payload),
        ] {
            if payload > 1 || messages > 2 {
                return Err(SimError::LinkCapacityExceeded {
                    node: ctx.id,
                    step: ctx.t,
                    job_units: payload,
                    messages: messages as usize,
                });
            }
        }
    }
    Ok(step)
}

fn payload_of<M: Payload>(msgs: &[M]) -> u64 {
    msgs.iter().map(Payload::job_units).sum()
}

/// The per-node fault state one step of [`step_node_and_links`] works
/// through: the plan, the node's two directed link queues, and the two
/// staging buffers sends are metered out of (shared across nodes — always
/// drained within the step).
struct FaultLinks<'a, M> {
    plan: &'a FaultPlan,
    queue_cw: &'a mut LinkQueue<M>,
    queue_ccw: &'a mut LinkQueue<M>,
    stage_cw: &'a mut Vec<M>,
    stage_ccw: &'a mut Vec<M>,
}

/// Steps one node and drains its two directed links for one round — the
/// single per-node kernel shared by [`Engine::run`] and the arc-parallel
/// executor (previously copy-adapted between the two).
///
/// Without fault state the node writes straight into the destination
/// arenas and the departures mirror its outbox meters; with fault state the
/// node stages its sends and [`transmit`] meters them onto the (possibly
/// degraded) links, which keep draining even while their owner is stalled.
#[allow(clippy::too_many_arguments)] // the four directed buffers + ctx is the natural shape
fn step_node_and_links<N: Node>(
    node: &mut N,
    ctx: &NodeCtx,
    from_ccw: &mut Vec<N::Msg>,
    from_cw: &mut Vec<N::Msg>,
    to_cw: &mut Vec<N::Msg>,
    to_ccw: &mut Vec<N::Msg>,
    link_capacity: LinkCapacity,
    audit: Option<&mut Vec<DropRecord>>,
    faults: Option<FaultLinks<'_, N::Msg>>,
) -> Result<(NodeStep, LinkDeparture, LinkDeparture), SimError> {
    match faults {
        Some(f) => {
            let step = if f.plan.node_runs(ctx.id, ctx.t) {
                drive_node(
                    node,
                    ctx,
                    from_ccw,
                    from_cw,
                    f.stage_cw,
                    f.stage_ccw,
                    link_capacity,
                    audit,
                )?
            } else {
                NodeStep::idle()
            };
            // Links drain even while their owner is stalled.
            let dep_cw = transmit(
                f.plan,
                ctx.id,
                Direction::Cw,
                ctx.t,
                f.stage_cw,
                f.queue_cw,
                to_cw,
            );
            let dep_ccw = transmit(
                f.plan,
                ctx.id,
                Direction::Ccw,
                ctx.t,
                f.stage_ccw,
                f.queue_ccw,
                to_ccw,
            );
            Ok((step, dep_cw, dep_ccw))
        }
        None => {
            let step = drive_node(
                node,
                ctx,
                from_ccw,
                from_cw,
                to_cw,
                to_ccw,
                link_capacity,
                audit,
            )?;
            let dep_cw = LinkDeparture {
                messages: step.cw_messages,
                payload: step.cw_payload,
                ..LinkDeparture::default()
            };
            let dep_ccw = LinkDeparture {
                messages: step.ccw_messages,
                payload: step.ccw_payload,
                ..LinkDeparture::default()
            };
            Ok((step, dep_cw, dep_ccw))
        }
    }
}

/// Collects the quiescence declarations of a contiguous run of nodes into
/// `backlogs` (cleared first; one entry per node). Returns
/// `(min_span, max_backlog)`, or `None` if any node declines or reports a
/// zero span — in which case `backlogs` is meaningless.
fn arc_quiescence<N: Node>(nodes: &[N], now: u64, backlogs: &mut Vec<u64>) -> Option<(u64, u64)> {
    backlogs.clear();
    let mut min_span = u64::MAX;
    let mut max_backlog = 0u64;
    for n in nodes {
        let q = n.quiescence(now)?;
        if q.span == 0 {
            return None;
        }
        min_span = min_span.min(q.span);
        max_backlog = max_backlog.max(q.backlog);
        backlogs.push(q.backlog);
    }
    Some((min_span, max_backlog))
}

/// Number of rounds to fast-forward given the merged quiescence state and
/// the remaining step budget, or `None` when compression is not worth a
/// span (`k < 2`). Capping at `max_backlog` (when any node still holds
/// work) makes completion land exactly on the span's last round, so the
/// post-span conservation check observes the same states the per-round
/// loop would.
fn compression_k(min_span: u64, max_backlog: u64, budget: u64) -> Option<u64> {
    let mut k = min_span.min(budget);
    if max_backlog > 0 {
        k = k.min(max_backlog);
    }
    (k >= 2).then_some(k)
}

/// Emits the `Processed` events a compressed span would have recorded:
/// round-major, node-ascending — exactly the per-round loop's order (quiet
/// rounds carry no sends or drop-offs). Output-sensitive: total work is
/// O(events emitted).
fn synthesize_quiet_trace(
    t0: u64,
    k: u64,
    node_base: usize,
    backlogs: &[u64],
    mut emit: impl FnMut(Event),
) {
    let mut active: Vec<(usize, u64)> = backlogs
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(i, &b)| (node_base + i, b.min(k)))
        .collect();
    for j in 0..k {
        if active.is_empty() {
            break;
        }
        for &(node, _) in &active {
            emit(Event::Processed {
                t: t0 + j,
                node,
                units: 1,
            });
        }
        active.retain(|&(_, b)| b > j + 1);
    }
}

/// Pushes the `k` per-step observability samples a compressed span would
/// have recorded. `p0[i]` is node `i`'s `pending_work()` entering the span
/// (capture it *before* fast-forwarding). Quiet rounds deliver, send, and
/// drop nothing, so every sample field except `t`, `processed`,
/// `max_pending`, and `total_pending` is zero; those follow from the
/// backlogs alone: in round `t0 + j` node `i` has processed
/// `min(b_i, j + 1)` units. Runs in O(m log m + k + events).
fn synthesize_quiet_samples(
    t0: u64,
    k: u64,
    p0: &[u64],
    backlogs: &[u64],
    samples: &mut Vec<StepSample>,
) {
    let m = p0.len();
    // Per-round processed counts c_j = #{i : b_i > j} via a difference
    // array over the span.
    let mut diff = vec![0i64; k as usize + 1];
    for &b in backlogs {
        let d = b.min(k);
        if d > 0 {
            diff[0] += 1;
            diff[d as usize] -= 1;
        }
    }
    // For max_pending: with τ = j + 1, node i reports p0_i − τ while still
    // draining (b_i ≥ τ) and the constant p0_i − b_i once done. Sweep nodes
    // in backlog order with a suffix max of p0 over the still-draining set.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_unstable_by_key(|&i| backlogs[i]);
    let mut suffix_max = vec![0u64; m + 1];
    for idx in (0..m).rev() {
        suffix_max[idx] = suffix_max[idx + 1].max(p0[order[idx]]);
    }
    let total0: u64 = p0.iter().sum();
    let mut done_max = 0u64;
    let mut ptr = 0usize;
    let mut active = 0i64;
    let mut cum_processed = 0u64;
    for j in 0..k {
        active += diff[j as usize];
        let c = active as u64;
        cum_processed += c;
        let tau = j + 1;
        while ptr < m && backlogs[order[ptr]] < tau {
            let i = order[ptr];
            done_max = done_max.max(p0[i].saturating_sub(backlogs[i]));
            ptr += 1;
        }
        samples.push(StepSample {
            t: t0 + j,
            processed: c,
            max_pending: done_max.max(suffix_max[ptr].saturating_sub(tau)),
            total_pending: total0 - cum_processed,
            ..StepSample::default()
        });
    }
}

/// The snapshot-sink callback installed by [`Engine::on_checkpoint`].
type SnapshotSink = dyn FnMut(&Snapshot) -> Result<(), CheckpointError> + Send;

/// The installed checkpoint hook: a monomorphized message serializer
/// (captured as a plain fn pointer so [`Node::Msg`]`: Persist` is required
/// only at installation, never on plain runs) plus the snapshot sink.
struct CheckpointHook<M> {
    save_msg: fn(&M, &mut Encoder),
    sink: Box<SnapshotSink>,
}

/// Mid-run state decoded from a [`Snapshot`], consumed by the next
/// [`Engine::run`] / [`Engine::par_run`] call in place of the fresh-start
/// initialization.
struct ResumeState<M> {
    t0: u64,
    prev_round_departed: u64,
    cur_cw: Vec<Vec<M>>,
    cur_ccw: Vec<Vec<M>>,
    queue_cw: Vec<LinkQueue<M>>,
    queue_ccw: Vec<LinkQueue<M>>,
    metrics: Metrics,
    trace: Trace,
    obs: Option<Observability>,
}

/// The synchronous executor.
pub struct Engine<N: Node> {
    topo: RingTopology,
    nodes: Vec<N>,
    total_work: u64,
    config: EngineConfig,
    checkpoint: Option<CheckpointHook<N::Msg>>,
    resume: Option<ResumeState<N::Msg>>,
    /// Set when a run completed (a [`RunReport`] was produced): the nodes
    /// are drained and the loop-carried state is gone, so stepping or
    /// snapshotting again would silently fabricate a fresh-start image.
    finished: bool,
}

impl<N: Node> Engine<N> {
    /// Creates an engine over one node per processor.
    ///
    /// `total_work` is the number of work units the nodes collectively hold;
    /// the run terminates when exactly this much has been processed.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, total_work: u64, config: EngineConfig) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let topo = RingTopology::new(nodes.len());
        Engine {
            topo,
            nodes,
            total_work,
            config,
            checkpoint: None,
            resume: None,
            finished: false,
        }
    }

    /// Installs a checkpoint sink. Together with
    /// [`EngineConfig::checkpoint_every`], this makes [`Engine::run`] and
    /// [`Engine::par_run`] hand a canonical [`Snapshot`] to `sink` at every
    /// cadence boundary; a sink error aborts the run with
    /// [`SimError::Checkpoint`] rather than continue past a missing
    /// snapshot. Both executors produce byte-identical snapshots at the same
    /// boundary, whatever the shard count.
    pub fn on_checkpoint<F>(&mut self, sink: F) -> &mut Self
    where
        N::Msg: Persist,
        F: FnMut(&Snapshot) -> Result<(), CheckpointError> + Send + 'static,
    {
        fn save_via_persist<M: Persist>(msg: &M, enc: &mut Encoder) {
            msg.save(enc);
        }
        self.checkpoint = Some(CheckpointHook {
            save_msg: save_via_persist::<N::Msg>,
            sink: Box::new(sink),
        });
        self
    }

    /// Reconstructs an engine mid-run from a [`Snapshot`].
    ///
    /// `nodes` must be freshly constructed with the same configuration as
    /// the interrupted run (the CLI rebuilds them from
    /// [`Snapshot::app_meta`]); their mutable state is overwritten via
    /// [`Node::restore_state`]. The snapshot is self-describing for
    /// everything that must match bit-for-bit — trace level, observability,
    /// and the fault plan are taken from it, overriding `config` — while
    /// executor-only choices (`max_steps`, `compress`, `link_capacity`,
    /// `checkpoint_every`) stay with the caller.
    ///
    /// The subsequent [`Engine::run`] or [`Engine::par_run`] (any shard
    /// count, independent of the saving run's) continues from step
    /// [`Snapshot::t`] and returns a [`RunReport`] **bit-for-bit identical**
    /// to the uninterrupted run's.
    pub fn resume(
        nodes: Vec<N>,
        config: EngineConfig,
        snap: &Snapshot,
    ) -> Result<Self, CheckpointError>
    where
        N::Msg: Persist,
    {
        let m = snap.m;
        if nodes.len() != m {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot is for a {m}-node ring, got {} nodes",
                nodes.len()
            )));
        }
        if snap.nodes.len() != m
            || snap.arena_cw.len() != m
            || snap.arena_ccw.len() != m
            || snap.queue_cw.len() != m
            || snap.queue_ccw.len() != m
            || snap.metrics.processed_per_node.len() != m
            || snap.metrics.busy_steps_per_node.len() != m
        {
            return Err(CheckpointError::Corrupt(
                "snapshot vectors disagree with its ring size",
            ));
        }
        if snap.processed >= snap.total_work {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot describes a finished run ({}/{} units processed)",
                snap.processed, snap.total_work
            )));
        }
        if snap.metrics.total_processed() != snap.processed || snap.metrics.steps != snap.t {
            return Err(CheckpointError::Corrupt(
                "snapshot metrics disagree with its header",
            ));
        }
        let mut nodes = nodes;
        for (node, blob) in nodes.iter_mut().zip(&snap.nodes) {
            let mut dec = Decoder::new(blob);
            node.restore_state(&mut dec)?;
            dec.finish()?;
        }
        let mut config = config;
        config.trace = snap.trace_level;
        config.observe = snap.observability.is_some();
        config.faults = snap.faults.clone();

        let mut cur_cw = Vec::with_capacity(m);
        for cell in &snap.arena_cw {
            cur_cw.push(checkpoint::load_msgs::<N::Msg>(cell)?);
        }
        let mut cur_ccw = Vec::with_capacity(m);
        for cell in &snap.arena_ccw {
            cur_ccw.push(checkpoint::load_msgs::<N::Msg>(cell)?);
        }
        let mut queue_cw: Vec<LinkQueue<N::Msg>> = Vec::new();
        let mut queue_ccw: Vec<LinkQueue<N::Msg>> = Vec::new();
        if config.faults.is_some() {
            for cell in &snap.queue_cw {
                queue_cw.push(load_link_queue::<N::Msg>(cell)?);
            }
            for cell in &snap.queue_ccw {
                queue_ccw.push(load_link_queue::<N::Msg>(cell)?);
            }
        } else if snap
            .queue_cw
            .iter()
            .chain(&snap.queue_ccw)
            .any(|cell| !cell.is_empty())
        {
            return Err(CheckpointError::Corrupt(
                "snapshot stages fault-queue messages but carries no fault plan",
            ));
        }

        let resume = ResumeState {
            t0: snap.t,
            prev_round_departed: snap.prev_round_departed,
            cur_cw,
            cur_ccw,
            queue_cw,
            queue_ccw,
            metrics: snap.metrics.clone(),
            trace: Trace::from_events(snap.trace_level, snap.events.clone()),
            obs: snap.observability.clone(),
        };
        Ok(Engine {
            topo: RingTopology::new(m),
            nodes,
            total_work: snap.total_work,
            config,
            checkpoint: None,
            resume: Some(resume),
            finished: false,
        })
    }

    /// Immutable access to the nodes (e.g. to inspect final policy state).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Consumes the engine, returning the nodes (typically called after
    /// [`Engine::run`] to harvest per-node policy statistics).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    fn max_steps(&self) -> u64 {
        self.config.max_steps.unwrap_or_else(|| {
            let base = 4 * (self.total_work + self.topo.len() as u64) + 64;
            // A fault plan can only slow things down while it is active, so
            // widen the default budget by a multiple of its horizon.
            let slack = self.config.faults.as_ref().map_or(0, |p| 2 * p.horizon());
            base + slack
        })
    }

    /// Replays the finished run through the [`crate::oracle`] and panics on
    /// any violation — every traced engine run in the test suite is checked
    /// (the `self-check` feature is enabled by the workspace's
    /// dev-dependencies, so `cargo test` exercises it while release builds
    /// stay clean).
    #[cfg(feature = "self-check")]
    fn self_check(&self, report: &RunReport) {
        if !matches!(self.config.trace, TraceLevel::Full) {
            return;
        }
        let violations =
            crate::oracle::check_report(report, self.topo.len(), self.config.faults.as_ref());
        assert!(
            violations.is_empty(),
            "oracle rejected an engine run: {violations:?}"
        );
    }

    #[cfg(not(feature = "self-check"))]
    #[inline]
    fn self_check(&self, _report: &RunReport) {}

    fn empty_report(&self) -> RunReport {
        let m = self.topo.len();
        RunReport {
            makespan: 0,
            metrics: Metrics::new(m),
            trace: Trace::new(self.config.trace),
            observability: self.config.observe.then(|| Observability::new(m)),
        }
    }

    /// Runs the simulation to completion on the calling thread.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        match self.run_bounded(None)? {
            SpanOutcome::Done(report) => Ok(*report),
            SpanOutcome::Paused { .. } => unreachable!("unbounded run cannot pause"),
        }
    }

    /// The step the engine will execute next: 0 for a fresh engine, the
    /// boundary step for one paused by [`Engine::run_span`] or reconstructed
    /// by [`Engine::resume`]. Meaningless after a run completed.
    pub fn t(&self) -> u64 {
        self.resume.as_ref().map_or(0, |r| r.t0)
    }

    /// Units of work processed so far (0 for a fresh engine; meaningful while
    /// paused or resumed, before the run completes).
    pub fn processed(&self) -> u64 {
        self.resume
            .as_ref()
            .map_or(0, |r| r.metrics.total_processed())
    }

    /// The total work the run terminates at (see [`Engine::add_work`]).
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Mutable access to the nodes. Intended for callers driving the engine
    /// in bounded spans ([`Engine::run_span`]): between spans — i.e. while
    /// the engine is paused at a step boundary — a serving layer may fold
    /// newly admitted work into the policy nodes (e.g.
    /// `DynamicNode` arrival injection). Every unit of resident work added
    /// this way MUST be declared through [`Engine::add_work`], or the run
    /// will fail its conservation checks.
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Raises the termination target by `delta` units, matching work injected
    /// into the nodes between spans (see [`Engine::nodes_mut`]).
    pub fn add_work(&mut self, delta: u64) {
        self.total_work += delta;
    }

    /// Replaces the `app_meta` string recorded in subsequently produced
    /// snapshots (cadence checkpoints and [`Engine::snapshot`]). Long-lived
    /// callers use this to keep application bookkeeping current right
    /// before snapshotting at a drain boundary.
    pub fn set_checkpoint_meta(&mut self, meta: String) {
        self.config.checkpoint_meta = meta;
    }

    /// Serializes the engine's complete state at its current step boundary
    /// into a canonical [`Snapshot`] — the same bytes a cadence checkpoint
    /// there would produce ([`EngineConfig::checkpoint_every`]), so
    /// [`Engine::resume`] restores it bit-identically. Valid while the
    /// engine is paused ([`SpanOutcome::Paused`], or reconstructed by
    /// [`Engine::resume`] and not yet stepped) and on a fresh, never-run
    /// engine (the step-0 image). Fails with
    /// [`CheckpointError::Unsupported`] once a run has completed: the
    /// nodes are drained and there is no mid-run state left to save.
    pub fn snapshot(&self) -> Result<Snapshot, CheckpointError>
    where
        N::Msg: Persist,
    {
        fn save_via_persist<M: Persist>(msg: &M, enc: &mut Encoder) {
            msg.save(enc);
        }
        if self.finished {
            return Err(CheckpointError::Unsupported(
                "the run has completed; there is no mid-run state to snapshot",
            ));
        }
        let snap = |t0: u64,
                    prev: u64,
                    metrics: &Metrics,
                    events: &[Event],
                    obs: Option<&Observability>,
                    cur_cw: &[Vec<N::Msg>],
                    cur_ccw: &[Vec<N::Msg>],
                    queue_cw: &[LinkQueue<N::Msg>],
                    queue_ccw: &[LinkQueue<N::Msg>]| {
            build_snapshot(
                save_via_persist::<N::Msg>,
                &self.nodes,
                self.total_work,
                t0,
                prev,
                self.config.trace,
                self.config.faults.as_ref(),
                metrics,
                events,
                obs,
                cur_cw,
                cur_ccw,
                queue_cw,
                queue_ccw,
                &self.config.checkpoint_meta,
            )
        };
        match self.resume.as_ref() {
            Some(r) => snap(
                r.t0,
                r.prev_round_departed,
                &r.metrics,
                r.trace.events(),
                r.obs.as_ref(),
                &r.cur_cw,
                &r.cur_ccw,
                &r.queue_cw,
                &r.queue_ccw,
            ),
            None => {
                // Never stepped: the fresh-start image, mirroring what
                // `run_bounded` would initialize at t = 0.
                let m = self.topo.len();
                let qm = if self.config.faults.is_some() { m } else { 0 };
                let empty_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
                let empty_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
                let queues_cw: Vec<LinkQueue<N::Msg>> = (0..qm).map(|_| VecDeque::new()).collect();
                let queues_ccw: Vec<LinkQueue<N::Msg>> = (0..qm).map(|_| VecDeque::new()).collect();
                let metrics = Metrics::new(m);
                let obs = self.config.observe.then(|| Observability::new(m));
                snap(
                    0,
                    0,
                    &metrics,
                    &[],
                    obs.as_ref(),
                    &empty_cw,
                    &empty_ccw,
                    &queues_cw,
                    &queues_ccw,
                )
            }
        }
    }

    /// Runs the simulation on the calling thread until either every unit of
    /// work is processed or step `pause_at` is reached, whichever comes
    /// first. On pause the engine retains its complete mid-run state in
    /// memory (the in-memory analogue of a checkpoint at that boundary) and
    /// the next `run_span`/`run` call continues from it — the eventual
    /// [`RunReport`] is **bit-for-bit identical** to an uninterrupted run,
    /// however many pauses were taken (asserted by the workspace's
    /// span-equivalence proptests). A `pause_at` at or before the current
    /// step pauses immediately without simulating.
    pub fn run_span(&mut self, pause_at: u64) -> Result<SpanOutcome, SimError> {
        if self.total_work == 0 {
            return Ok(SpanOutcome::Done(Box::new(self.empty_report())));
        }
        if pause_at <= self.t() {
            return Ok(SpanOutcome::Paused {
                t: self.t(),
                processed: self.processed(),
            });
        }
        self.run_bounded(Some(pause_at))
    }

    fn run_bounded(&mut self, pause_at: Option<u64>) -> Result<SpanOutcome, SimError> {
        assert!(
            !self.finished,
            "engine already completed a run; construct a new one"
        );
        let m = self.topo.len();
        let max_steps = self.max_steps();

        if self.total_work == 0 {
            return Ok(SpanOutcome::Done(Box::new(self.empty_report())));
        }

        // Fault state: per-node per-direction link queues plus two scratch
        // buffers nodes stage their sends into before `transmit` meters them
        // onto the (possibly degraded) links. Allocated only when a plan is
        // set; without one the arenas are written directly.
        let plan = self.config.faults.clone();
        let qm = if plan.is_some() { m } else { 0 };

        // Double-buffered message arenas, indexed by *receiving* node:
        // `cur_cw[i]` holds clockwise-travelling messages node `i` receives
        // this round (sent by `i - 1` last round); `next_*` collect this
        // round's sends. The pairs swap roles each round; every vector keeps
        // its capacity, so the steady-state loop does not allocate. A resume
        // replaces the fresh-start state with the snapshot's mid-run image;
        // `next_*` are empty at every step boundary, so they always start
        // fresh.
        let resume = self.resume.take();
        let start_t = resume.as_ref().map_or(0, |r| r.t0);
        let mut next_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut next_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let (
            mut metrics,
            mut trace,
            mut obs,
            mut cur_cw,
            mut cur_ccw,
            mut queue_cw,
            mut queue_ccw,
            mut prev_round_departed,
        ) = match resume {
            Some(r) => (
                r.metrics,
                r.trace,
                r.obs,
                r.cur_cw,
                r.cur_ccw,
                r.queue_cw,
                r.queue_ccw,
                r.prev_round_departed,
            ),
            None => (
                Metrics::new(m),
                Trace::new(self.config.trace),
                self.config.observe.then(|| Observability::new(m)),
                (0..m).map(|_| Vec::new()).collect(),
                (0..m).map(|_| Vec::new()).collect(),
                (0..qm).map(|_| VecDeque::new()).collect(),
                (0..qm).map(|_| VecDeque::new()).collect(),
                0u64,
            ),
        };
        let mut stage_cw: Vec<N::Msg> = Vec::new();
        let mut stage_ccw: Vec<N::Msg> = Vec::new();
        let record_audit = matches!(self.config.trace, TraceLevel::Full);
        let mut audit_buf: Vec<DropRecord> = Vec::new();

        // Step-compression state: how many logical messages entered the
        // arenas last round (sends + stall carryovers; zero means every
        // inbox is empty this round), the first step at which the fault
        // plan is provably inert, and a reusable backlog scratch buffer.
        let compress = self.config.compress;
        let fault_horizon = plan.as_ref().map_or(0, |p| p.horizon());
        let mut quiet_backlogs: Vec<u64> = Vec::new();

        // Checkpoints fire only when both a cadence and a sink are set.
        let cp_every = match (self.config.checkpoint_every, self.checkpoint.as_ref()) {
            (Some(k), Some(_)) => Some(k),
            _ => None,
        };

        let mut processed_total: u64 = metrics.total_processed();
        let mut t: u64 = start_t;
        loop {
            if t >= max_steps {
                return Err(SimError::ExceededMaxSteps {
                    max_steps,
                    processed: processed_total,
                    total: self.total_work,
                });
            }

            // Span boundary: pack the loop-carried state back into the
            // engine (the in-memory analogue of the checkpoint below — the
            // loop state here *is* the step-`t` image) and hand control back
            // to the caller. Completion is checked at the end of round t-1,
            // so a finished run never pauses.
            if pause_at == Some(t) {
                self.resume = Some(ResumeState {
                    t0: t,
                    prev_round_departed,
                    cur_cw,
                    cur_ccw,
                    queue_cw,
                    queue_ccw,
                    metrics,
                    trace,
                    obs,
                });
                return Ok(SpanOutcome::Paused {
                    t,
                    processed: processed_total,
                });
            }

            // Checkpoint boundary: every state the loop carries is exactly
            // the step-`t` image here (next arenas empty, metrics.steps == t,
            // all trace events < t), so the snapshot is self-contained.
            if let Some(every) = cp_every {
                if t > start_t && t % every == 0 {
                    let hook = self.checkpoint.as_mut().expect("gated on hook presence");
                    let snap = build_snapshot(
                        hook.save_msg,
                        &self.nodes,
                        self.total_work,
                        t,
                        prev_round_departed,
                        self.config.trace,
                        plan.as_ref(),
                        &metrics,
                        trace.events(),
                        obs.as_ref(),
                        &cur_cw,
                        &cur_ccw,
                        &queue_cw,
                        &queue_ccw,
                        &self.config.checkpoint_meta,
                    );
                    let result = snap.and_then(|snap| (hook.sink)(&snap));
                    if let Err(error) = result {
                        return Err(SimError::Checkpoint { step: t, error });
                    }
                }
            }

            // Quiescent-span step compression: nothing in flight, no link
            // queue occupied, the fault plan exhausted, and every node
            // declaring its future a pure local drain — fast-forward the
            // span analytically while recording the expanded per-step view
            // (see DESIGN.md §10). The checks short-circuit, so the common
            // busy round pays one integer compare.
            if compress
                && prev_round_departed == 0
                && t >= fault_horizon
                && queue_cw.iter().all(VecDeque::is_empty)
                && queue_ccw.iter().all(VecDeque::is_empty)
            {
                // A compressed span must not jump over a checkpoint
                // boundary, so its budget is additionally capped at the
                // distance to the next one; a boundary landing inside a
                // quiescent span simply splits it, which the synthesized
                // trace/metrics make unobservable in the final report.
                let mut budget = max_steps - t;
                if let Some(every) = cp_every {
                    budget = budget.min(every - t % every);
                }
                if let Some(p) = pause_at {
                    // A quiet span must likewise land exactly on the pause
                    // boundary (p > t here: the pause check above returned).
                    budget = budget.min(p - t);
                }
                if let Some(k) = arc_quiescence(&self.nodes, t, &mut quiet_backlogs)
                    .and_then(|(span, max_b)| compression_k(span, max_b, budget))
                {
                    let max_b = quiet_backlogs.iter().copied().max().unwrap_or(0);
                    if record_audit {
                        synthesize_quiet_trace(t, k, 0, &quiet_backlogs, |e| trace.record(e));
                    }
                    if let Some(o) = obs.as_mut() {
                        let p0: Vec<u64> = self.nodes.iter().map(|n| n.pending_work()).collect();
                        synthesize_quiet_samples(t, k, &p0, &quiet_backlogs, &mut o.samples);
                    }
                    for (i, &b) in quiet_backlogs.iter().enumerate() {
                        let d = b.min(k);
                        if d > 0 {
                            metrics.processed_per_node[i] += d;
                            metrics.busy_steps_per_node[i] += d;
                            processed_total += d;
                        }
                    }
                    if max_b > 0 {
                        // k ≤ max_b, so the deepest node is busy in every
                        // compressed round, including the last.
                        metrics.last_busy_step = Some(t + k - 1);
                    }
                    for node in self.nodes.iter_mut() {
                        node.fast_forward(k);
                    }
                    t += k;
                    metrics.steps = t;
                    if processed_total > self.total_work {
                        return Err(SimError::WorkMiscount {
                            processed: processed_total,
                            total: self.total_work,
                        });
                    }
                    if processed_total == self.total_work {
                        debug_assert!(
                            self.nodes.iter().all(|n| n.pending_work() == 0),
                            "all work processed but a node still reports pending work"
                        );
                        let makespan = metrics.last_busy_step.expect("work was processed") + 1;
                        let report = RunReport {
                            makespan,
                            metrics,
                            trace,
                            observability: obs,
                        };
                        self.self_check(&report);
                        self.finished = true;
                        return Ok(SpanOutcome::Done(Box::new(report)));
                    }
                    continue;
                }
            }

            let mut round_departed: u64 = 0;

            // A stalled processor does not consume its inbox: carry the
            // undelivered messages over to its next step before anyone
            // writes this round's sends (so they stay in front).
            if let Some(plan) = plan.as_ref() {
                for i in 0..m {
                    if !plan.node_runs(i, t) {
                        round_departed += (cur_cw[i].len() + cur_ccw[i].len()) as u64;
                        next_cw[i].append(&mut cur_cw[i]);
                        next_ccw[i].append(&mut cur_ccw[i]);
                    }
                }
            }

            let mut inflight_payload: u64 = 0;
            let mut sample = StepSample {
                t,
                ..StepSample::default()
            };
            for i in 0..m {
                let ctx = NodeCtx {
                    id: i,
                    t,
                    topo: self.topo,
                };
                let delivered = if obs.is_some() {
                    payload_of(&cur_cw[i]) + payload_of(&cur_ccw[i])
                } else {
                    0
                };
                let dest_cw = self.topo.neighbor(i, Direction::Cw);
                let dest_ccw = self.topo.neighbor(i, Direction::Ccw);
                // The four arenas are distinct containers, so borrowing one
                // element of each is disjoint for every m (including the
                // self-delivery of a singleton ring). Staging through
                // `FaultLinks` keeps one writer per destination slot even
                // when a plan reroutes departures through link queues.
                let (step, dep_cw, dep_ccw) = {
                    let faults = plan.as_ref().map(|plan| FaultLinks {
                        plan,
                        queue_cw: &mut queue_cw[i],
                        queue_ccw: &mut queue_ccw[i],
                        stage_cw: &mut stage_cw,
                        stage_ccw: &mut stage_ccw,
                    });
                    step_node_and_links(
                        &mut self.nodes[i],
                        &ctx,
                        &mut cur_cw[i],
                        &mut cur_ccw[i],
                        &mut next_cw[dest_cw],
                        &mut next_ccw[dest_ccw],
                        self.config.link_capacity,
                        record_audit.then_some(&mut audit_buf),
                        faults,
                    )?
                };

                round_departed += dep_cw.messages + dep_ccw.messages;

                // Per-cell event order: DroppedOff*, Processed, Sent cw,
                // Sent ccw (the oracle and the arc merge rely on it).
                for rec in audit_buf.drain(..) {
                    trace.record(Event::DroppedOff {
                        t,
                        node: i,
                        bucket: rec.bucket,
                        units: rec.int,
                        frac_bits: rec.frac.to_bits(),
                        cum_drop_frac_bits: rec.cum_drop_frac.to_bits(),
                        cum_accept_frac_bits: rec.cum_accept_frac.to_bits(),
                        p_max_bucket: rec.p_max_bucket,
                        p_max_node: rec.p_max_node,
                        kind: rec.kind,
                    });
                }
                if step.work_done > 0 {
                    processed_total += step.work_done;
                    metrics.processed_per_node[i] += step.work_done;
                    metrics.busy_steps_per_node[i] += 1;
                    metrics.last_busy_step = Some(t);
                    trace.record(Event::Processed {
                        t,
                        node: i,
                        units: step.work_done,
                    });
                }
                for (dir, dep) in [(Direction::Cw, dep_cw), (Direction::Ccw, dep_ccw)] {
                    metrics.messages_dropped += dep.dropped;
                    metrics.messages_delayed += dep.delayed;
                    metrics.messages_retried += dep.retried;
                    sample.link_dropped += dep.dropped;
                    sample.link_delayed += dep.delayed;
                    sample.link_retried += dep.retried;
                    if dep.messages == 0 {
                        continue;
                    }
                    metrics.messages_sent += dep.messages;
                    metrics.job_hops += dep.payload;
                    inflight_payload += dep.payload;
                    trace.record(Event::Sent {
                        t,
                        node: i,
                        dir,
                        job_units: dep.payload,
                    });
                }
                if let Some(o) = obs.as_mut() {
                    o.record_sends(
                        i,
                        dep_cw.messages,
                        dep_cw.payload,
                        dep_ccw.messages,
                        dep_ccw.payload,
                    );
                    // Drop-off is a *policy* notion (delivered payload the
                    // node chose to keep), so it is metered on what the node
                    // pushed, not on what the faulty link let through.
                    let dropped = delivered.saturating_sub(step.sent_payload());
                    o.dropoffs_per_node[i] += dropped;
                    let pending = self.nodes[i].pending_work();
                    sample.delivered_payload += delivered;
                    sample.sent_payload += dep_cw.payload + dep_ccw.payload;
                    sample.messages += dep_cw.messages + dep_ccw.messages;
                    sample.processed += step.work_done;
                    sample.dropped_off += dropped;
                    sample.max_pending = sample.max_pending.max(pending);
                    sample.total_pending += pending;
                }
            }
            metrics.peak_inflight_jobs = metrics.peak_inflight_jobs.max(inflight_payload);
            if let Some(o) = obs.as_mut() {
                o.samples.push(sample);
            }

            std::mem::swap(&mut cur_cw, &mut next_cw);
            std::mem::swap(&mut cur_ccw, &mut next_ccw);
            // next_* now hold the cleared previous-round vectors.
            prev_round_departed = round_departed;

            t += 1;
            metrics.steps = t;

            if processed_total > self.total_work {
                return Err(SimError::WorkMiscount {
                    processed: processed_total,
                    total: self.total_work,
                });
            }
            if processed_total == self.total_work {
                debug_assert!(
                    self.nodes.iter().all(|n| n.pending_work() == 0),
                    "all work processed but a node still reports pending work"
                );
                let makespan = metrics.last_busy_step.expect("work was processed") + 1;
                let report = RunReport {
                    makespan,
                    metrics,
                    trace,
                    observability: obs,
                };
                self.self_check(&report);
                self.finished = true;
                return Ok(SpanOutcome::Done(Box::new(report)));
            }
        }
    }

    /// Runs the simulation to completion on `shards` scoped threads, each
    /// owning one contiguous arc of the ring.
    ///
    /// The executor exploits ring locality: a message moves one hop per
    /// round, so inside a *locality window* of `k` rounds (see
    /// [`EngineConfig::window`]) each thread only ever synchronizes with
    /// its two neighbors, through round-tagged halo mailboxes carrying the
    /// boundary send history — no global barrier. Global coordination
    /// (completion detection, error resolution, checkpoint snapshots,
    /// compression votes) happens at window boundaries, which the engine
    /// aligns with every barrier-based protocol's cadence; rounds computed
    /// past a completion are rolled back. Because message delivery is
    /// round-delayed, node evaluation order is unobservable, and every
    /// arena slot still has exactly one writer per round — so the result is
    /// **bit-for-bit identical** to [`Engine::run`] for every window size:
    /// same [`RunReport`] (metrics, trace and observability included), same
    /// error on invalid policies. The equivalence is asserted across the
    /// paper's §6 algorithm catalog by the workspace's property tests.
    ///
    /// `shards` is clamped to the ring size; `shards <= 1` delegates to
    /// [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn par_run(&mut self, shards: usize) -> Result<RunReport, SimError>
    where
        N: Send,
        N::Msg: Send,
    {
        match self.par_run_bounded(None, shards)? {
            SpanOutcome::Done(report) => Ok(*report),
            SpanOutcome::Paused { .. } => unreachable!("unbounded run cannot pause"),
        }
    }

    /// The parallel counterpart of [`Engine::run_span`]: advances the ring
    /// on `shards` scoped threads until completion or step `pause_at`,
    /// whichever comes first. Pausing, like checkpointing, happens at a
    /// barrier-aligned step boundary; the reassembled whole-ring state is
    /// identical to what a sequential span leaves behind, so spans may
    /// freely alternate executors and shard counts — the eventual report is
    /// bit-for-bit identical regardless (asserted by the workspace's
    /// span-equivalence proptests).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn par_run_span(&mut self, pause_at: u64, shards: usize) -> Result<SpanOutcome, SimError>
    where
        N: Send,
        N::Msg: Send,
    {
        if self.total_work == 0 {
            return Ok(SpanOutcome::Done(Box::new(self.empty_report())));
        }
        if pause_at <= self.t() {
            return Ok(SpanOutcome::Paused {
                t: self.t(),
                processed: self.processed(),
            });
        }
        self.par_run_bounded(Some(pause_at), shards)
    }

    fn par_run_bounded(
        &mut self,
        pause_at: Option<u64>,
        shards: usize,
    ) -> Result<SpanOutcome, SimError>
    where
        N: Send,
        N::Msg: Send,
    {
        assert!(shards > 0, "need at least one shard");
        assert!(
            !self.finished,
            "engine already completed a run; construct a new one"
        );
        let m = self.topo.len();
        let shards = shards.min(m);
        if shards == 1 {
            return self.run_bounded(pause_at);
        }
        if self.total_work == 0 {
            return Ok(SpanOutcome::Done(Box::new(self.empty_report())));
        }
        let max_steps = self.max_steps();
        let resume = self.resume.take();

        let sharded = match self.config.par.resolved_strategy() {
            ParStrategy::Static => par::run_sharded(
                &mut self.nodes,
                self.topo,
                self.total_work,
                max_steps,
                &self.config,
                shards,
                resume,
                self.checkpoint.as_mut(),
                pause_at,
            ),
            ParStrategy::Steal => par::run_stolen(
                &mut self.nodes,
                self.topo,
                self.total_work,
                max_steps,
                &self.config,
                shards,
                resume,
                self.checkpoint.as_mut(),
                pause_at,
            ),
        };
        match sharded? {
            par::Sharded::Done(report) => {
                self.self_check(&report);
                self.finished = true;
                Ok(SpanOutcome::Done(Box::new(report)))
            }
            par::Sharded::Paused(state) => {
                let t = state.t0;
                let processed = state.metrics.total_processed();
                self.resume = Some(state);
                Ok(SpanOutcome::Paused { t, processed })
            }
        }
    }
}

/// Decodes one snapshot link queue back into the engine's staged form.
fn load_link_queue<M: Persist>(blobs: &[StagedBlob]) -> Result<LinkQueue<M>, CheckpointError> {
    Ok(checkpoint::load_queue::<M>(blobs)?
        .into_iter()
        .map(|(ready, attempts, msg)| Staged {
            ready,
            attempts,
            msg,
        })
        .collect())
}

/// Serializes the complete engine state at a step boundary into a canonical
/// [`Snapshot`]. Shared by the sequential executor (whole-ring call) and —
/// piecewise, via `par::arc_image` + `par::stitch_snapshot` — the parallel
/// one, which is why the per-collection encodings live in
/// [`crate::checkpoint`] rather than inline here.
#[allow(clippy::too_many_arguments)]
fn build_snapshot<N: Node>(
    save_msg: fn(&N::Msg, &mut Encoder),
    nodes: &[N],
    total_work: u64,
    t: u64,
    prev_round_departed: u64,
    trace_level: TraceLevel,
    faults: Option<&FaultPlan>,
    metrics: &Metrics,
    events: &[Event],
    obs: Option<&Observability>,
    cur_cw: &[Vec<N::Msg>],
    cur_ccw: &[Vec<N::Msg>],
    queue_cw: &[LinkQueue<N::Msg>],
    queue_ccw: &[LinkQueue<N::Msg>],
    app_meta: &str,
) -> Result<Snapshot, CheckpointError> {
    let m = nodes.len();
    let mut node_blobs = Vec::with_capacity(m);
    for node in nodes {
        let mut enc = Encoder::new();
        node.save_state(&mut enc)?;
        node_blobs.push(enc.into_bytes());
    }
    let arena = |cells: &[Vec<N::Msg>]| -> Vec<Vec<Vec<u8>>> {
        cells
            .iter()
            .map(|cell| {
                cell.iter()
                    .map(|msg| checkpoint::save_msg_blob(save_msg, msg))
                    .collect()
            })
            .collect()
    };
    let queues = |queues: &[LinkQueue<N::Msg>]| -> Vec<Vec<StagedBlob>> {
        let mut out: Vec<Vec<StagedBlob>> = queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|s| StagedBlob {
                        ready: s.ready,
                        attempts: s.attempts,
                        msg: checkpoint::save_msg_blob(save_msg, &s.msg),
                    })
                    .collect()
            })
            .collect();
        // The fault-free path allocates no queues; the snapshot still
        // carries one (empty) entry per node so its shape is canonical.
        out.resize_with(m, Vec::new);
        out
    };
    Ok(Snapshot {
        m,
        total_work,
        t,
        processed: metrics.total_processed(),
        prev_round_departed,
        trace_level,
        faults: faults.cloned(),
        metrics: metrics.clone(),
        events: events.to_vec(),
        observability: obs.cloned(),
        nodes: node_blobs,
        arena_cw: arena(cur_cw),
        arena_ccw: arena(cur_ccw),
        queue_cw: queues(queue_cw),
        queue_ccw: queues(queue_ccw),
        app_meta: app_meta.to_string(),
    })
}

/// The arc-parallel executor internals.
mod par {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    /// Everything one arc accumulates locally; merged deterministically
    /// after the threads join. `Clone` because a checkpoint boundary
    /// snapshots the partial mid-run (see `arc_image`).
    #[derive(Clone)]
    struct ArcPartial {
        lo: usize,
        processed_per_node: Vec<u64>,
        busy_steps_per_node: Vec<u64>,
        messages_sent: u64,
        job_hops: u64,
        messages_dropped: u64,
        messages_delayed: u64,
        messages_retried: u64,
        last_busy: Option<u64>,
        /// Payload this arc put in flight in each round (for the global
        /// per-round peak).
        sent_payload_per_round: Vec<u64>,
        events: Vec<Event>,
        obs: Option<Observability>,
    }

    /// What `run_sharded` resolved to: a finished report, or — when a
    /// `pause_at` boundary was reached first — the whole-ring mid-run image
    /// the engine keeps for the next span (the same state a checkpoint at
    /// that boundary would serialize).
    pub(super) enum Sharded<M> {
        Done(RunReport),
        Paused(ResumeState<M>),
    }

    /// Everything one arc hands back when its loop exits: the metric/trace
    /// partial plus the loop-carried state (`run_sharded` needs the link
    /// queues and departure count to rebuild a [`ResumeState`] on pause;
    /// completed runs drop them).
    struct ArcOutcome<M> {
        partial: ArcPartial,
        queue_cw: Vec<LinkQueue<M>>,
        queue_ccw: Vec<LinkQueue<M>>,
        prev_departed: u64,
        paused: bool,
    }

    /// Shared per-round quiescence ballot (see the compression block in
    /// `run_arc`). Every arc merges its local candidacy under the lock,
    /// then reads the merged state back after the vote barrier; `tag` is
    /// the round the entry describes, and the first arc to write a new
    /// round resets the merge. The span to fast-forward is then a pure
    /// function of the merged state, so every arc computes the same `k`
    /// and the per-round barrier counts stay uniform.
    struct Vote {
        tag: u64,
        quiet: bool,
        min_span: u64,
        max_backlog: u64,
    }

    /// Error found by an arc, keyed for "first error wins" merging: the
    /// sequential engine fails at the smallest `(step, node)` violation, so
    /// the parallel one must too.
    type Flagged = (u64, usize, SimError);

    fn merge_flag(slot: &Mutex<Option<Flagged>>, cand: Flagged) {
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some((t, node, _)) if (*t, *node) <= (cand.0, cand.1) => {}
            _ => *slot = Some(cand),
        }
    }

    /// Pads its contents to a cache line so independently-written shared
    /// counters (the halo round counters) do not false-share.
    #[repr(align(64))]
    struct CachePadded<T>(T);

    /// One direction of one arc boundary: a round-tagged halo mailbox.
    ///
    /// The producer arc appends its boundary-crossing sends for round `t`
    /// (when there are any) and then publishes `done = t + 1`; the consumer
    /// spins (then yields) until `done` covers the round it needs and
    /// drains every entry tagged `<= t` into its inbox. Adjacent arcs are
    /// mutually rate-limited through these counters — neither can start
    /// round `t + 1` before the other has finished `t` — so the queue never
    /// holds more than two undrained entries, and the `free` list recycles
    /// their buffers to keep the steady state allocation-free. An arc that
    /// stops mid-window (in-round error) publishes `u64::MAX` so neighbors
    /// never block on it; whatever they compute past the error round is
    /// discarded with the rest of the run at the window boundary.
    struct Halo<M> {
        done: CachePadded<AtomicU64>,
        slots: Mutex<HaloSlots<M>>,
    }

    struct HaloSlots<M> {
        queue: VecDeque<(u64, Vec<M>)>,
        free: Vec<Vec<M>>,
    }

    impl<M> Halo<M> {
        fn new(t0: u64) -> Self {
            Halo {
                done: CachePadded(AtomicU64::new(t0)),
                slots: Mutex::new(HaloSlots {
                    queue: VecDeque::new(),
                    free: Vec::new(),
                }),
            }
        }

        /// Producer side: round `t` is complete; `out` held its boundary
        /// sends (drained here, capacity kept).
        fn publish(&self, t: u64, out: &mut Vec<M>) {
            if !out.is_empty() {
                let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
                let mut buf = slots.free.pop().unwrap_or_default();
                buf.append(out);
                slots.queue.push_back((t, buf));
            }
            self.done.0.store(t + 1, Ordering::Release);
        }

        /// Producer side: stop publishing without ever blocking the
        /// consumer.
        fn abandon(&self) {
            self.done.0.store(u64::MAX, Ordering::Release);
        }

        /// Consumer side: wait until the producer has finished round `t`.
        fn await_round(&self, t: u64) {
            let need = t + 1;
            let mut spins = 0u32;
            while self.done.0.load(Ordering::Acquire) < need {
                spins = spins.wrapping_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }

        /// Consumer side, non-blocking: has the producer finished round
        /// `t`? An abandoned halo (`u64::MAX`) reads as ready so consumers
        /// never wait on a failed producer.
        fn ready(&self, t: u64) -> bool {
            self.done.0.load(Ordering::Acquire) > t
        }

        /// Consumer side, non-blocking: the first round the producer has
        /// *not* finished. Every round below this is drainable.
        fn done_round(&self) -> u64 {
            self.done.0.load(Ordering::Acquire)
        }

        /// Consumer side: the earliest round whose drain would deliver
        /// content (`u64::MAX` when the queue holds nothing). Entries are
        /// tagged in round order, so everything below this round drains
        /// empty.
        fn first_pending(&self) -> u64 {
            let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.queue.front().map_or(u64::MAX, |e| e.0)
        }

        /// Producer side: rounds up to (excluding) `done` completed with no
        /// boundary sends — one release store covers the whole quiet span.
        fn publish_span(&self, done: u64) {
            self.done.0.store(done, Ordering::Release);
        }

        /// Consumer side: move every entry for rounds `<= t` into `dest`.
        fn drain_into(&self, t: u64, dest: &mut Vec<M>) {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            while slots.queue.front().is_some_and(|e| e.0 <= t) {
                let (_, mut buf) = slots.queue.pop_front().expect("front checked");
                dest.append(&mut buf);
                if slots.free.len() < 4 {
                    slots.free.push(buf);
                }
            }
        }
    }

    /// The shared completion ledger: per-round processed sums for the
    /// current window plus the committed total (`cum_base`) of every window
    /// before it. Written once per arc per *window* (not per round — this
    /// replaces the old per-step shared atomic); the boundary scan over it
    /// reproduces the sequential engine's end-of-round bookkeeping exactly.
    /// Tagged like the compression ballot: the first arc committing a new
    /// window folds the previous one into `cum_base` and resets.
    struct Ledger {
        tag: u64,
        cum_base: u64,
        rounds: Vec<u64>,
    }

    impl Ledger {
        fn commit(&mut self, win_start: u64, round_processed: &[u64]) {
            if self.tag != win_start {
                self.cum_base += self.rounds.drain(..).sum::<u64>();
                self.tag = win_start;
            }
            if self.rounds.len() < round_processed.len() {
                self.rounds.resize(round_processed.len(), 0);
            }
            for (dst, src) in self.rounds.iter_mut().zip(round_processed) {
                *dst += src;
            }
        }
    }

    /// What a window boundary resolved to. Every arc computes this from the
    /// same post-barrier ledger and flag state, so all arcs agree without
    /// reading each other's conclusion.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum Boundary {
        /// No terminal event inside the window; open the next one.
        Advance,
        /// All work accounted for at the end of round `last_round`; rounds
        /// after it are overrun and must be rolled back.
        Done { last_round: u64 },
        /// An in-round error stops the run; the shared flag holds it.
        Fail,
        /// Work conservation violated at a round boundary; `processed` is
        /// the cumulative total the sequential engine would report.
        Miscount { processed: u64 },
    }

    /// Resolves the window `[win_start, win_start + rounds.len())` with the
    /// sequential engine's per-round precedence: an in-round error at round
    /// `t` beats that round's end-of-round checks, and the conservation
    /// check (`> total`) precedes the completion check (`== total`). A flag
    /// at a round *after* completion is an overrun artifact — the
    /// sequential engine would have stopped before reaching it — and is
    /// voided by the caller. Returns the resolution plus the processed
    /// total at the stopping point (or the window end).
    fn resolve_window(
        win_start: u64,
        cum_base: u64,
        rounds: &[u64],
        flag: Option<(u64, usize)>,
        total_work: u64,
    ) -> (Boundary, u64) {
        let mut cum = cum_base;
        for (r, &p) in rounds.iter().enumerate() {
            let t = win_start + r as u64;
            if flag.is_some_and(|(ft, _)| ft == t) {
                return (Boundary::Fail, cum);
            }
            cum += p;
            if cum > total_work {
                return (Boundary::Miscount { processed: cum }, cum);
            }
            if cum == total_work {
                return (Boundary::Done { last_round: t }, cum);
            }
        }
        debug_assert!(flag.is_none(), "error flag past its own window");
        (Boundary::Advance, cum)
    }

    /// Per-round rollback frame, ring-buffered over the current window.
    ///
    /// Completion is only detected at the window boundary, so an arc may
    /// overrun the completing round by up to a window. Overrun rounds can
    /// still touch observable state — zero-payload control messages (load
    /// probes) keep circulating after the last unit of work is done — so
    /// each round logs what it changed: scalar counter snapshots (restored
    /// wholesale from the first discarded frame) plus sparse per-node
    /// deltas (reverse-applied frame by frame). Work deltas are logged too,
    /// defensively: for contract-abiding policies no overrun round
    /// processes anything.
    #[derive(Default)]
    struct RoundUndo {
        events_len: usize,
        samples_len: usize,
        rounds_len: usize,
        messages_sent: u64,
        job_hops: u64,
        messages_dropped: u64,
        messages_delayed: u64,
        messages_retried: u64,
        last_busy: Option<u64>,
        /// `(arc-local node, units processed)` — one busy step each.
        work: Vec<(u32, u64)>,
        /// `(arc-local node, cw msgs, cw payload, ccw msgs, ccw payload,
        /// dropped-off payload)` — mirrors `Observability::record_sends`
        /// and the drop-off meter; recorded only when observing.
        sends: Vec<(u32, u64, u64, u64, u64, u64)>,
    }

    /// Rolls an arc partial back to the end of the round before frame
    /// `keep`, discarding everything the overrun rounds recorded.
    fn roll_back(partial: &mut ArcPartial, undo: &[RoundUndo], keep: usize) {
        let Some(first) = undo.get(keep) else { return };
        partial.events.truncate(first.events_len);
        partial.sent_payload_per_round.truncate(first.rounds_len);
        partial.messages_sent = first.messages_sent;
        partial.job_hops = first.job_hops;
        partial.messages_dropped = first.messages_dropped;
        partial.messages_delayed = first.messages_delayed;
        partial.messages_retried = first.messages_retried;
        partial.last_busy = first.last_busy;
        if let Some(o) = partial.obs.as_mut() {
            o.samples.truncate(first.samples_len);
        }
        for frame in &undo[keep..] {
            for &(j, units) in &frame.work {
                let j = j as usize;
                partial.processed_per_node[j] -= units;
                partial.busy_steps_per_node[j] -= 1;
            }
            if let Some(o) = partial.obs.as_mut() {
                for &(j, cw_m, cw_p, ccw_m, ccw_p, dropped) in &frame.sends {
                    let j = j as usize;
                    if cw_m > 0 {
                        o.links.cw_messages[j] -= cw_m;
                        o.links.cw_payload[j] -= cw_p;
                        o.links.cw_busy_steps[j] -= 1;
                    }
                    if ccw_m > 0 {
                        o.links.ccw_messages[j] -= ccw_m;
                        o.links.ccw_payload[j] -= ccw_p;
                        o.links.ccw_busy_steps[j] -= 1;
                    }
                    o.dropoffs_per_node[j] -= dropped;
                }
            }
        }
    }

    /// Default locality window: long enough to amortize the two boundary
    /// barriers, short enough that the per-window bookkeeping stays small.
    const DEFAULT_WINDOW: u64 = 64;
    /// Hard cap on one window's length, bounding the ledger / undo-ring
    /// footprint. Purely an implementation bound: boundaries are
    /// unobservable, so splitting a longer request changes nothing.
    const MAX_WINDOW: u64 = 4096;

    /// Resolves the configured window size: explicit config, else the
    /// `RING_WINDOW` environment variable (a round count, or `"L"` for "as
    /// long as the shortest arc"), else [`DEFAULT_WINDOW`]; clamped to
    /// `1..=MAX_WINDOW`.
    fn window_size(config: &EngineConfig, min_arc: usize) -> u64 {
        let requested = config.window.or_else(|| {
            let raw = std::env::var("RING_WINDOW").ok()?;
            let raw = raw.trim();
            if raw.eq_ignore_ascii_case("l") {
                Some(u64::MAX)
            } else {
                raw.parse().ok()
            }
        });
        let requested = match requested {
            Some(u64::MAX) => min_arc.max(1) as u64,
            Some(w) => w,
            None => DEFAULT_WINDOW,
        };
        requested.clamp(1, MAX_WINDOW)
    }

    /// The run prefix a resumed parallel run continues from (fresh-start
    /// runs use the zero prefix): needed by both the final merge and every
    /// mid-run checkpoint stitch, since per-arc partials only describe the
    /// delta since `t0`.
    struct BaseCtx<'e> {
        t0: u64,
        metrics: &'e Metrics,
        events: &'e [Event],
        obs: Option<&'e Observability>,
    }

    /// Shared checkpoint coordination state for one parallel run. Every
    /// boundary round, each arc serializes its slice into `images`; after a
    /// barrier, arc 0 stitches them into one canonical [`Snapshot`] —
    /// byte-identical to the sequential engine's at the same step, whatever
    /// the shard count — and hands it to the sink.
    struct ParCheckpoint<'e, M> {
        every: u64,
        start_t: u64,
        save_msg: fn(&M, &mut Encoder),
        app_meta: &'e str,
        images: Mutex<Vec<Option<ArcImage>>>,
        sink: Mutex<&'e mut SnapshotSink>,
        base: BaseCtx<'e>,
    }

    /// One arc's serialized slice of a checkpoint: its nodes, arena cells
    /// and link queues (already encoded, so the stitch is pure
    /// concatenation) plus a clone of its running partial.
    struct ArcImage {
        nodes: Vec<Vec<u8>>,
        arena_cw: Vec<Vec<Vec<u8>>>,
        arena_ccw: Vec<Vec<Vec<u8>>>,
        queue_cw: Vec<Vec<StagedBlob>>,
        queue_ccw: Vec<Vec<StagedBlob>>,
        prev_departed: u64,
        partial: ArcPartial,
    }

    /// Serializes one arc's state at a step boundary. On failure returns
    /// the *global* index of the offending node so "first error wins"
    /// matches the sequential engine's node order exactly.
    #[allow(clippy::too_many_arguments)]
    fn arc_image<N: Node>(
        cp: &ParCheckpoint<'_, N::Msg>,
        lo: usize,
        nodes: &[N],
        cur_cw: &[Vec<N::Msg>],
        cur_ccw: &[Vec<N::Msg>],
        queue_cw: &[LinkQueue<N::Msg>],
        queue_ccw: &[LinkQueue<N::Msg>],
        prev_departed: u64,
        partial: &ArcPartial,
    ) -> Result<ArcImage, (usize, CheckpointError)> {
        let mut node_blobs = Vec::with_capacity(nodes.len());
        for (j, node) in nodes.iter().enumerate() {
            let mut enc = Encoder::new();
            node.save_state(&mut enc).map_err(|e| (lo + j, e))?;
            node_blobs.push(enc.into_bytes());
        }
        let arena = |cells: &[Vec<N::Msg>]| -> Vec<Vec<Vec<u8>>> {
            cells
                .iter()
                .map(|cell| {
                    cell.iter()
                        .map(|msg| checkpoint::save_msg_blob(cp.save_msg, msg))
                        .collect()
                })
                .collect()
        };
        let queues = |queues: &[LinkQueue<N::Msg>]| -> Vec<Vec<StagedBlob>> {
            queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|s| StagedBlob {
                            ready: s.ready,
                            attempts: s.attempts,
                            msg: checkpoint::save_msg_blob(cp.save_msg, &s.msg),
                        })
                        .collect()
                })
                .collect()
        };
        Ok(ArcImage {
            nodes: node_blobs,
            arena_cw: arena(cur_cw),
            arena_ccw: arena(cur_ccw),
            queue_cw: queues(queue_cw),
            queue_ccw: queues(queue_ccw),
            prev_departed,
            partial: partial.clone(),
        })
    }

    /// Concatenates the per-arc images into one canonical [`Snapshot`],
    /// using the same merge algebra as the end-of-run report
    /// (`merge_partials`) — which is exactly why the stitched snapshot is
    /// byte-identical to the sequential engine's.
    fn stitch_snapshot<M>(
        cp: &ParCheckpoint<'_, M>,
        t: u64,
        m: usize,
        total_work: u64,
        config: &EngineConfig,
        images: Vec<ArcImage>,
    ) -> Snapshot {
        let mut nodes = Vec::with_capacity(m);
        let mut arena_cw = Vec::with_capacity(m);
        let mut arena_ccw = Vec::with_capacity(m);
        let mut queue_cw = Vec::with_capacity(m);
        let mut queue_ccw = Vec::with_capacity(m);
        let mut prev_round_departed: u64 = 0;
        let mut partials = Vec::with_capacity(images.len());
        for img in images {
            nodes.extend(img.nodes);
            arena_cw.extend(img.arena_cw);
            arena_ccw.extend(img.arena_ccw);
            queue_cw.extend(img.queue_cw);
            queue_ccw.extend(img.queue_ccw);
            prev_round_departed += img.prev_departed;
            partials.push(img.partial);
        }
        // Fault-free arcs carry no queues; keep the snapshot shape canonical
        // (one entry per node), matching `build_snapshot`.
        queue_cw.resize_with(m, Vec::new);
        queue_ccw.resize_with(m, Vec::new);
        let (metrics, events, observability) = merge_partials(
            cp.base.t0,
            cp.base.metrics,
            cp.base.events,
            cp.base.obs,
            config.trace,
            partials,
        );
        Snapshot {
            m,
            total_work,
            t,
            processed: metrics.total_processed(),
            prev_round_departed,
            trace_level: config.trace,
            faults: config.faults.clone(),
            metrics,
            events,
            observability,
            nodes,
            arena_cw,
            arena_ccw,
            queue_cw,
            queue_ccw,
            app_meta: cp.app_meta.to_string(),
        }
    }

    /// Deterministic merge of per-arc partials on top of a run prefix:
    /// per-node vectors add slice-wise, counters sum, the trace delta is
    /// order-restored by a stable `(step, node)` sort and appended to the
    /// prefix (every prefix event is at `t < t0`, so concatenation is
    /// order-correct). Shared by the end-of-run merge and the mid-run
    /// checkpoint stitch so both produce the same bytes.
    fn merge_partials(
        t0: u64,
        base_metrics: &Metrics,
        base_events: &[Event],
        base_obs: Option<&Observability>,
        trace_level: TraceLevel,
        partials: Vec<ArcPartial>,
    ) -> (Metrics, Vec<Event>, Option<Observability>) {
        let rounds = partials
            .iter()
            .map(|p| p.sent_payload_per_round.len())
            .max()
            .unwrap_or(0);
        let mut metrics = base_metrics.clone();
        metrics.steps = t0 + rounds as u64;
        let mut inflight_per_round = vec![0u64; rounds];
        let mut obs = base_obs.cloned();
        let mut event_logs: Vec<Vec<Event>> = Vec::with_capacity(partials.len());
        for p in partials {
            let k = p.processed_per_node.len();
            for (dst, src) in metrics.processed_per_node[p.lo..p.lo + k]
                .iter_mut()
                .zip(&p.processed_per_node)
            {
                *dst += src;
            }
            for (dst, src) in metrics.busy_steps_per_node[p.lo..p.lo + k]
                .iter_mut()
                .zip(&p.busy_steps_per_node)
            {
                *dst += src;
            }
            metrics.messages_sent += p.messages_sent;
            metrics.job_hops += p.job_hops;
            metrics.messages_dropped += p.messages_dropped;
            metrics.messages_delayed += p.messages_delayed;
            metrics.messages_retried += p.messages_retried;
            metrics.last_busy_step = metrics.last_busy_step.max(p.last_busy);
            for (round, payload) in p.sent_payload_per_round.iter().enumerate() {
                inflight_per_round[round] += payload;
            }
            if let (Some(o), Some(po)) = (obs.as_mut(), p.obs.as_ref()) {
                o.absorb_arc_at(p.lo, po, t0);
            }
            event_logs.push(p.events);
        }
        let delta_peak = inflight_per_round.iter().copied().max().unwrap_or(0);
        metrics.peak_inflight_jobs = metrics.peak_inflight_jobs.max(delta_peak);
        let mut events = base_events.to_vec();
        events.extend(Trace::merge_arcs(trace_level, event_logs).into_events());
        (metrics, events, obs)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_sharded<N>(
        nodes: &mut [N],
        topo: RingTopology,
        total_work: u64,
        max_steps: u64,
        config: &EngineConfig,
        shards: usize,
        resume: Option<ResumeState<N::Msg>>,
        checkpoint: Option<&mut CheckpointHook<N::Msg>>,
        pause_at: Option<u64>,
    ) -> Result<Sharded<N::Msg>, SimError>
    where
        N: Node + Send,
        N::Msg: Send,
    {
        let m = topo.len();

        // The run prefix: zero for a fresh start, the snapshot's mid-run
        // image on resume. Arcs carry only deltas relative to it.
        let base = resume.unwrap_or_else(|| ResumeState {
            t0: 0,
            prev_round_departed: 0,
            cur_cw: (0..m).map(|_| Vec::new()).collect(),
            cur_ccw: (0..m).map(|_| Vec::new()).collect(),
            queue_cw: Vec::new(),
            queue_ccw: Vec::new(),
            metrics: Metrics::new(m),
            trace: Trace::new(config.trace),
            obs: config.observe.then(|| Observability::new(m)),
        });
        let ResumeState {
            t0,
            prev_round_departed: base_prev_departed,
            mut cur_cw,
            mut cur_ccw,
            queue_cw: mut base_queue_cw,
            queue_ccw: mut base_queue_ccw,
            metrics: base_metrics,
            trace: base_trace,
            obs: base_obs,
        } = base;

        // Whole-ring arenas, split below into per-arc slices.
        let mut next_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut next_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();

        // Per-node link queues exist only under a fault plan; a fresh
        // faulty start allocates them here so the per-arc split below is
        // uniform.
        let plan_active = config.faults.is_some();
        if plan_active && base_queue_cw.is_empty() {
            base_queue_cw = (0..m).map(|_| VecDeque::new()).collect();
            base_queue_ccw = (0..m).map(|_| VecDeque::new()).collect();
        }

        // Round-tagged halo mailboxes. `halo_cw[a]` carries the clockwise
        // messages entering arc `a` (addressed to its first node); it is
        // written round-by-round by arc `a - 1` and drained by arc `a` when
        // its own clock reaches the matching round — the only inter-arc
        // coupling inside a locality window.
        let halo_cw: Vec<Halo<N::Msg>> = (0..shards).map(|_| Halo::new(t0)).collect();
        let halo_ccw: Vec<Halo<N::Msg>> = (0..shards).map(|_| Halo::new(t0)).collect();

        let barrier = Barrier::new(shards);
        let processed = AtomicU64::new(base_metrics.total_processed());
        let flagged: Mutex<Option<Flagged>> = Mutex::new(None);
        let vote: Mutex<Vote> = Mutex::new(Vote {
            tag: u64::MAX,
            quiet: false,
            min_span: u64::MAX,
            max_backlog: 0,
        });
        let ledger: Mutex<Ledger> = Mutex::new(Ledger {
            tag: u64::MAX,
            cum_base: base_metrics.total_processed(),
            rounds: Vec::new(),
        });

        // Balanced contiguous partition: the first `m % shards` arcs get one
        // extra node.
        let base = m / shards;
        let extra = m % shards;
        let bounds: Vec<(usize, usize)> = (0..shards)
            .scan(0usize, |lo, a| {
                let len = base + usize::from(a < extra);
                let range = (*lo, *lo + len);
                *lo += len;
                Some(range)
            })
            .collect();
        let min_arc = bounds.iter().map(|&(lo, hi)| hi - lo).min().unwrap_or(1);
        let window = window_size(config, min_arc);

        // Hand each arc its slice of every arena.
        struct ArcBufs<'a, N: Node> {
            lo: usize,
            hi: usize,
            nodes: &'a mut [N],
            cur_cw: &'a mut [Vec<N::Msg>],
            cur_ccw: &'a mut [Vec<N::Msg>],
            next_cw: &'a mut [Vec<N::Msg>],
            next_ccw: &'a mut [Vec<N::Msg>],
        }
        let mut arcs: Vec<ArcBufs<'_, N>> = Vec::with_capacity(shards);
        {
            let mut rest_nodes = &mut *nodes;
            let mut rest_cur_cw = &mut cur_cw[..];
            let mut rest_cur_ccw = &mut cur_ccw[..];
            let mut rest_next_cw = &mut next_cw[..];
            let mut rest_next_ccw = &mut next_ccw[..];
            for &(lo, hi) in &bounds {
                let len = hi - lo;
                let (a, b) = rest_nodes.split_at_mut(len);
                rest_nodes = b;
                let (c, d) = rest_cur_cw.split_at_mut(len);
                rest_cur_cw = d;
                let (e, f) = rest_cur_ccw.split_at_mut(len);
                rest_cur_ccw = f;
                let (g, h) = rest_next_cw.split_at_mut(len);
                rest_next_cw = h;
                let (i, j) = rest_next_ccw.split_at_mut(len);
                rest_next_ccw = j;
                arcs.push(ArcBufs {
                    lo,
                    hi,
                    nodes: a,
                    cur_cw: c,
                    cur_ccw: e,
                    next_cw: g,
                    next_ccw: i,
                });
            }
        }

        // Hand each arc its contiguous slice of the (possibly resumed) link
        // queues. Queue state is per-node, so the split is independent of
        // the shard count the saving run used.
        type ArcQueues<M> = Vec<(Vec<LinkQueue<M>>, Vec<LinkQueue<M>>)>;
        let arc_queues: ArcQueues<N::Msg> = if plan_active {
            let mut qcw = base_queue_cw.into_iter();
            let mut qccw = base_queue_ccw.into_iter();
            bounds
                .iter()
                .map(|&(lo, hi)| {
                    (
                        qcw.by_ref().take(hi - lo).collect(),
                        qccw.by_ref().take(hi - lo).collect(),
                    )
                })
                .collect()
        } else {
            bounds.iter().map(|_| (Vec::new(), Vec::new())).collect()
        };

        // Checkpoint coordination, shared by all arcs (None when no cadence
        // or no sink is installed).
        let cp: Option<ParCheckpoint<'_, N::Msg>> = match (config.checkpoint_every, checkpoint) {
            (Some(every), Some(hook)) => Some(ParCheckpoint {
                every,
                start_t: t0,
                save_msg: hook.save_msg,
                app_meta: config.checkpoint_meta.as_str(),
                images: Mutex::new((0..shards).map(|_| None).collect()),
                sink: Mutex::new(&mut *hook.sink),
                base: BaseCtx {
                    t0,
                    metrics: &base_metrics,
                    events: base_trace.events(),
                    obs: base_obs.as_ref(),
                },
            }),
            _ => None,
        };
        let cp = cp.as_ref();

        let outcomes: Vec<ArcOutcome<N::Msg>> = std::thread::scope(|scope| {
            let handles: Vec<_> = arcs
                .into_iter()
                .zip(arc_queues)
                .enumerate()
                .map(|(a, (bufs, (arc_queue_cw, arc_queue_ccw)))| {
                    let barrier = &barrier;
                    let processed = &processed;
                    let flagged = &flagged;
                    let vote = &vote;
                    let ledger = &ledger;
                    let halo_cw = &halo_cw;
                    let halo_ccw = &halo_ccw;
                    scope.spawn(move || {
                        run_arc(
                            a,
                            shards,
                            bufs.lo,
                            bufs.hi,
                            bufs.nodes,
                            bufs.cur_cw,
                            bufs.cur_ccw,
                            bufs.next_cw,
                            bufs.next_ccw,
                            topo,
                            total_work,
                            max_steps,
                            config,
                            barrier,
                            processed,
                            flagged,
                            vote,
                            ledger,
                            halo_cw,
                            halo_ccw,
                            window,
                            t0,
                            base_prev_departed,
                            arc_queue_cw,
                            arc_queue_ccw,
                            cp,
                            pause_at,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("arc thread panicked"))
                .collect()
        });

        // Resolve the outcome with the sequential engine's precedence:
        // in-round violations first, then the round-end conservation check,
        // then pause, then the budget. The pause predicate is a pure
        // function of `t`, so every arc agrees on it; completion wins over
        // pause because the stop check at barrier 2 of round t-1 precedes
        // the pause check at round t.
        if let Some((_, _, err)) = flagged.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(err);
        }
        let processed_total = processed.into_inner();
        if processed_total > total_work {
            return Err(SimError::WorkMiscount {
                processed: processed_total,
                total: total_work,
            });
        }
        let paused = outcomes.iter().any(|o| o.paused);
        if paused {
            debug_assert!(outcomes.iter().all(|o| o.paused), "arcs disagree on pause");
            // Reassemble the whole-ring mid-run image. Arena slices were
            // swapped in place by the arcs, so `cur_cw`/`cur_ccw` already
            // hold the step-`t` inbound state; queues and partials
            // concatenate in arc order (fault-free runs carry no queues,
            // matching the sequential engine's empty-queue convention).
            // `prev_round_departed` sums per-arc counts — valid because the
            // caller guarantees at least one round ran since resume
            // whenever the resumed value was nonzero (`par_run_span` never
            // re-enters at the boundary it paused on).
            let t = pause_at.expect("arcs pause only at the requested boundary");
            let mut queue_cw = Vec::new();
            let mut queue_ccw = Vec::new();
            let mut prev_round_departed: u64 = 0;
            let mut partials = Vec::with_capacity(outcomes.len());
            for o in outcomes {
                queue_cw.extend(o.queue_cw);
                queue_ccw.extend(o.queue_ccw);
                prev_round_departed += o.prev_departed;
                partials.push(o.partial);
            }
            let (metrics, events, obs) = merge_partials(
                t0,
                &base_metrics,
                base_trace.events(),
                base_obs.as_ref(),
                config.trace,
                partials,
            );
            return Ok(Sharded::Paused(ResumeState {
                t0: t,
                prev_round_departed,
                cur_cw,
                cur_ccw,
                queue_cw,
                queue_ccw,
                metrics,
                trace: Trace::from_events(config.trace, events),
                obs,
            }));
        }
        if processed_total < total_work {
            return Err(SimError::ExceededMaxSteps {
                max_steps,
                processed: processed_total,
                total: total_work,
            });
        }

        // Deterministic merge of the per-arc partials onto the run prefix —
        // the same algebra the mid-run checkpoint stitch uses.
        let (metrics, events, obs) = merge_partials(
            t0,
            &base_metrics,
            base_trace.events(),
            base_obs.as_ref(),
            config.trace,
            outcomes.into_iter().map(|o| o.partial).collect(),
        );
        let trace = Trace::from_events(config.trace, events);
        let makespan = metrics.last_busy_step.expect("work was processed") + 1;
        Ok(Sharded::Done(RunReport {
            makespan,
            metrics,
            trace,
            observability: obs,
        }))
    }

    /// The per-arc worker loop. Arc `a` owns nodes `lo..hi`; all slice
    /// arguments are indexed arc-locally (`i - lo`).
    ///
    /// The loop advances in *locality windows* of up to `window` rounds:
    /// inside a window the only inter-arc coupling is the per-round halo
    /// handshake with the two adjacent arcs (a message moves one hop per
    /// round, so nothing an arc computes in a window can depend on a
    /// non-adjacent arc's rounds). Completion, conservation violations and
    /// in-round errors are resolved at window boundaries from the shared
    /// round ledger, with the sequential engine's exact precedence; rounds
    /// computed past a completion are rolled back frame by frame, which is
    /// what keeps the merged report bit-identical to [`Engine::run`] for
    /// every window size.
    #[allow(clippy::too_many_arguments)]
    fn run_arc<N>(
        a: usize,
        shards: usize,
        lo: usize,
        hi: usize,
        nodes: &mut [N],
        cur_cw: &mut [Vec<N::Msg>],
        cur_ccw: &mut [Vec<N::Msg>],
        next_cw: &mut [Vec<N::Msg>],
        next_ccw: &mut [Vec<N::Msg>],
        topo: RingTopology,
        total_work: u64,
        max_steps: u64,
        config: &EngineConfig,
        barrier: &Barrier,
        processed: &AtomicU64,
        flagged: &Mutex<Option<Flagged>>,
        vote: &Mutex<Vote>,
        ledger: &Mutex<Ledger>,
        halo_cw: &[Halo<N::Msg>],
        halo_ccw: &[Halo<N::Msg>],
        window: u64,
        t0: u64,
        start_prev_departed: u64,
        mut queue_cw: Vec<LinkQueue<N::Msg>>,
        mut queue_ccw: Vec<LinkQueue<N::Msg>>,
        cp: Option<&ParCheckpoint<'_, N::Msg>>,
        pause_at: Option<u64>,
    ) -> ArcOutcome<N::Msg>
    where
        N: Node,
    {
        let len = hi - lo;
        let mut partial = ArcPartial {
            lo,
            processed_per_node: vec![0; len],
            busy_steps_per_node: vec![0; len],
            messages_sent: 0,
            job_hops: 0,
            messages_dropped: 0,
            messages_delayed: 0,
            messages_retried: 0,
            last_busy: None,
            sent_payload_per_round: Vec::new(),
            events: Vec::new(),
            obs: config.observe.then(|| Observability::new(len)),
        };
        let record = matches!(config.trace, TraceLevel::Full);
        // Thread-local buffers for the two streams that leave this arc;
        // published into the neighbor halos once per round.
        let mut out_cw_boundary: Vec<N::Msg> = Vec::new();
        let mut out_ccw_boundary: Vec<N::Msg> = Vec::new();

        // Halo wiring: this arc consumes `halo_cw[a]` / `halo_ccw[a]` and
        // produces into its clockwise / counterclockwise neighbor's inbox.
        let in_cw = &halo_cw[a];
        let in_ccw = &halo_ccw[a];
        let out_cw = &halo_cw[(a + 1) % shards];
        let out_ccw = &halo_ccw[(a + shards - 1) % shards];

        // Window-scoped bookkeeping, reused across windows: this arc's
        // per-round processed counts (committed to the shared ledger once
        // per window) and the per-round rollback frames.
        let mut round_processed: Vec<u64> = Vec::new();
        let mut undo: Vec<RoundUndo> = Vec::new();

        // Quiescent-node short-circuit: `quiet_until[j] > t` caches node
        // `lo + j`'s own promise (`Node::quiescence` with `backlog == 0`)
        // that, given empty inboxes, every round before `quiet_until[j]` is
        // a total no-op — no sends, no processing, no audits, no state
        // change. Such rounds skip `step_node_and_links` entirely, which is
        // what lets the sharded executor beat the sequential reference on
        // sparse rings: `Engine::run` sweeps all `m` nodes every round,
        // the arc loop only touches the active frontier. The cache is
        // invalidated whenever the node actually steps; a delivery makes
        // the inbox non-empty, which disables the skip on its own.
        //
        // A skipped round is still a round to the node's *internal* drain
        // state (`process_tick` advances the fractional shadow even at
        // zero backlog, and variant-A reference levels read it), so every
        // skip accrues one round of `quiet_debt` that is settled with
        // `fast_forward` — defined as exactly that many empty-inbox steps
        // — before the node next steps, and for all nodes before any
        // window-boundary protocol (pause, checkpoint, compression) can
        // read or serialize node state.
        let mut quiet_until: Vec<u64> = vec![0; len];
        let mut quiet_debt: Vec<u64> = vec![0; len];

        // Fault state for this arc's nodes, mirroring the sequential engine
        // (see `Engine::run`): link queues per node and direction (handed
        // in by the caller, pre-loaded on resume), staging buffers, and the
        // audit scratch.
        let plan = config.faults.as_ref();
        let mut stage_cw: Vec<N::Msg> = Vec::new();
        let mut stage_ccw: Vec<N::Msg> = Vec::new();
        let mut audit_buf: Vec<DropRecord> = Vec::new();

        // Step-compression state, mirroring the sequential engine: logical
        // messages this arc put in flight last round (sends + carryovers —
        // boundary sends are counted by the sending arc, so the votes'
        // conjunction covers every inbox), the fault-inertness step, and a
        // backlog scratch buffer. On resume every arc seeds its counter
        // with the snapshot's *global* value: the quiescence gate only
        // tests it against zero, and global zero iff every arc-local count
        // is zero, so the vote outcome is preserved.
        let compress = config.compress;
        let fault_horizon = config.faults.as_ref().map_or(0, |p| p.horizon());
        let mut arc_prev_departed: u64 = start_prev_departed;
        let mut quiet_backlogs: Vec<u64> = Vec::new();

        let mut t: u64 = t0;
        let mut paused = false;
        loop {
            // Settle the skipped-round drain debt before anything at this
            // boundary (pause snapshot, checkpoint image, compression
            // vote's `fast_forward`, or the final join) can observe node
            // state mid-replay.
            for (j, debt) in quiet_debt.iter_mut().enumerate() {
                if *debt > 0 {
                    nodes[j].fast_forward(*debt);
                    *debt = 0;
                }
            }

            // Same budget check as the sequential engine, evaluated
            // identically by every arc — no communication needed.
            if t >= max_steps {
                break;
            }

            // Span boundary — also a pure function of `t`, so every arc
            // breaks here together (before any of the round's barriers,
            // keeping the counts uniform). Checked before the checkpoint
            // block, like the sequential engine: pause wins at a shared
            // boundary and no snapshot is emitted for it.
            if pause_at == Some(t) {
                paused = true;
                break;
            }

            // Checkpoint boundary — a pure function of `t`, so every arc
            // takes these barriers together. Each arc serializes its slice,
            // then arc 0 stitches the canonical snapshot and feeds the
            // sink; any failure is flagged with the sequential engine's
            // `(step, node)` key and stops all arcs at the boundary.
            if let Some(cp) = cp {
                if t > cp.start_t && t % cp.every == 0 {
                    match arc_image(
                        cp,
                        lo,
                        nodes,
                        cur_cw,
                        cur_ccw,
                        &queue_cw,
                        &queue_ccw,
                        arc_prev_departed,
                        &partial,
                    ) {
                        Ok(img) => {
                            let mut images = cp.images.lock().unwrap_or_else(|e| e.into_inner());
                            images[a] = Some(img);
                        }
                        Err((node, error)) => {
                            merge_flag(flagged, (t, node, SimError::Checkpoint { step: t, error }));
                        }
                    }
                    // Image barrier: every arc stored its slice (or flagged
                    // an error) before arc 0 reads them.
                    barrier.wait();
                    if a == 0 {
                        let clean = flagged.lock().unwrap_or_else(|e| e.into_inner()).is_none();
                        if clean {
                            let images: Vec<ArcImage> = {
                                let mut slot = cp.images.lock().unwrap_or_else(|e| e.into_inner());
                                slot.iter_mut()
                                    .map(|s| s.take().expect("every arc stored an image"))
                                    .collect()
                            };
                            let snap =
                                stitch_snapshot(cp, t, topo.len(), total_work, config, images);
                            let mut sink = cp.sink.lock().unwrap_or_else(|e| e.into_inner());
                            if let Err(error) = (**sink)(&snap) {
                                merge_flag(
                                    flagged,
                                    (t, 0, SimError::Checkpoint { step: t, error }),
                                );
                            }
                        }
                    }
                    // Outcome barrier: the snapshot reached the sink (or a
                    // flag) before any arc enters round `t`.
                    barrier.wait();
                    if flagged.lock().unwrap_or_else(|e| e.into_inner()).is_some() {
                        break;
                    }
                }
            }

            // Quiescent-span step compression (see `Engine::run` and
            // DESIGN.md §10). Candidacy is arc-local; the merged ballot
            // decides globally, and the span `k` is a pure function of the
            // merged state, so every arc agrees on it — keeping the
            // per-round barrier count uniform (three with compression on).
            if compress {
                let local = if arc_prev_departed == 0
                    && t >= fault_horizon
                    && queue_cw.iter().all(VecDeque::is_empty)
                    && queue_ccw.iter().all(VecDeque::is_empty)
                {
                    arc_quiescence(nodes, t, &mut quiet_backlogs)
                } else {
                    None
                };
                {
                    let mut v = vote.lock().unwrap_or_else(|e| e.into_inner());
                    if v.tag != t {
                        v.tag = t;
                        v.quiet = true;
                        v.min_span = u64::MAX;
                        v.max_backlog = 0;
                    }
                    match local {
                        Some((span, max_b)) => {
                            v.min_span = v.min_span.min(span);
                            v.max_backlog = v.max_backlog.max(max_b);
                        }
                        None => v.quiet = false,
                    }
                }
                // Vote barrier: every arc contributed before anyone reads
                // the merge.
                barrier.wait();
                let k = {
                    let v = vote.lock().unwrap_or_else(|e| e.into_inner());
                    if v.quiet {
                        // Same checkpoint-boundary cap as the sequential
                        // engine; pure in `t`, so every arc computes the
                        // same `k`.
                        let mut budget = max_steps - t;
                        if let Some(cp) = cp {
                            budget = budget.min(cp.every - t % cp.every);
                        }
                        if let Some(p) = pause_at {
                            // Land exactly on the span boundary (p > t:
                            // the pause check above did not fire).
                            budget = budget.min(p - t);
                        }
                        compression_k(v.min_span, v.max_backlog, budget)
                    } else {
                        None
                    }
                };
                if let Some(k) = k {
                    let local_max_b = quiet_backlogs.iter().copied().max().unwrap_or(0);
                    if record {
                        synthesize_quiet_trace(t, k, lo, &quiet_backlogs, |e| {
                            partial.events.push(e)
                        });
                    }
                    if let Some(o) = partial.obs.as_mut() {
                        let p0: Vec<u64> = nodes.iter().map(|n| n.pending_work()).collect();
                        synthesize_quiet_samples(t, k, &p0, &quiet_backlogs, &mut o.samples);
                    }
                    let mut local_processed: u64 = 0;
                    for (j, &b) in quiet_backlogs.iter().enumerate() {
                        let d = b.min(k);
                        if d > 0 {
                            partial.processed_per_node[j] += d;
                            partial.busy_steps_per_node[j] += d;
                            local_processed += d;
                        }
                    }
                    if local_max_b > 0 {
                        // The arc holding the global max backlog reaches
                        // t + k − 1 (k ≤ global max), so the merged maximum
                        // matches the sequential engine.
                        partial.last_busy = Some(t + local_max_b.min(k) - 1);
                    }
                    for node in nodes.iter_mut() {
                        node.fast_forward(k);
                    }
                    partial
                        .sent_payload_per_round
                        .extend(std::iter::repeat(0).take(k as usize));
                    // Commit the span as a single-entry ledger window and
                    // resolve it like one: the same conservation and
                    // completion checks the sequential engine runs at the
                    // end of a compressed span. No rollback can be needed —
                    // `k` never overshoots the largest backlog, so
                    // completion lands exactly on the span end.
                    {
                        let mut l = ledger.lock().unwrap_or_else(|e| e.into_inner());
                        l.commit(t, &[local_processed]);
                    }
                    // Commit barrier: every arc's contribution is in the
                    // ledger before anyone reads the total.
                    barrier.wait();
                    let cum = {
                        let l = ledger.lock().unwrap_or_else(|e| e.into_inner());
                        l.cum_base + l.rounds.iter().sum::<u64>()
                    };
                    if a == 0 {
                        processed.store(cum, Ordering::SeqCst);
                        if cum > total_work {
                            merge_flag(
                                flagged,
                                (
                                    t,
                                    0,
                                    SimError::WorkMiscount {
                                        processed: cum,
                                        total: total_work,
                                    },
                                ),
                            );
                        }
                    }
                    // Read barrier: the outcome is materialized before the
                    // next boundary touches the ballot or ledger again.
                    barrier.wait();
                    if cum >= total_work {
                        break;
                    }
                    t += k;
                    continue;
                }
            }

            // Open a locality window. Its length is a pure function of `t`
            // and the run configuration, so every arc computes the same
            // boundary — the next global synchronization point. Checkpoint
            // cadence, span pauses and the step budget all cap it, which is
            // what makes those barrier-aligned protocols land exactly on
            // window boundaries.
            let mut w = window.min(max_steps - t);
            if let Some(cp) = cp {
                w = w.min(cp.every - t % cp.every);
            }
            if let Some(p) = pause_at {
                w = w.min(p - t);
            }
            let w = w.max(1);
            let win_start = t;
            round_processed.clear();
            if undo.len() < w as usize {
                undo.resize_with(w as usize, RoundUndo::default);
            }

            for r in 0..w {
                // Rollback frame: scalar state before this round; the
                // sparse delta logs fill in as the round records.
                let frame = &mut undo[r as usize];
                frame.events_len = partial.events.len();
                frame.samples_len = partial.obs.as_ref().map_or(0, |o| o.samples.len());
                frame.rounds_len = partial.sent_payload_per_round.len();
                frame.messages_sent = partial.messages_sent;
                frame.job_hops = partial.job_hops;
                frame.messages_dropped = partial.messages_dropped;
                frame.messages_delayed = partial.messages_delayed;
                frame.messages_retried = partial.messages_retried;
                frame.last_busy = partial.last_busy;
                frame.work.clear();
                frame.sends.clear();

                let mut round_departed: u64 = 0;

                // Stall carryover first, exactly like the sequential
                // engine: undelivered messages of non-running nodes move to
                // the front of their next-round inboxes before any node
                // writes new sends (boundary mail is appended at the round
                // handshake, i.e. after — the same relative order the
                // sequential loop produces).
                if let Some(plan) = plan {
                    for j in 0..len {
                        if !plan.node_runs(lo + j, t) {
                            round_departed += (cur_cw[j].len() + cur_ccw[j].len()) as u64;
                            next_cw[j].append(&mut cur_cw[j]);
                            next_ccw[j].append(&mut cur_ccw[j]);
                        }
                    }
                }

                // Step the arc's nodes in ring order.
                let mut round_sent_payload: u64 = 0;
                let mut round_work: u64 = 0;
                let mut sample = StepSample {
                    t,
                    ..StepSample::default()
                };
                let mut local_error = false;
                for i in lo..hi {
                    let j = i - lo;
                    // Skip provably-inert nodes (fault plans route sends
                    // through per-node link queues that must drain even on
                    // idle rounds, so the skip is gated on having no plan).
                    if plan.is_none() && cur_cw[j].is_empty() && cur_ccw[j].is_empty() {
                        let quiet = t < quiet_until[j] || {
                            match nodes[j].quiescence(t) {
                                Some(q) if q.backlog == 0 && q.span >= 1 => {
                                    quiet_until[j] = t.saturating_add(q.span);
                                    true
                                }
                                _ => false,
                            }
                        };
                        if quiet {
                            quiet_debt[j] += 1;
                            // The contract still owes the backlog series its
                            // (unchanged) pending figure.
                            if partial.obs.is_some() {
                                let pending = nodes[j].pending_work();
                                sample.max_pending = sample.max_pending.max(pending);
                                sample.total_pending += pending;
                            }
                            continue;
                        }
                    }
                    quiet_until[j] = 0;
                    if quiet_debt[j] > 0 {
                        nodes[j].fast_forward(std::mem::take(&mut quiet_debt[j]));
                    }
                    let ctx = NodeCtx { id: i, t, topo };
                    let delivered = if partial.obs.is_some() {
                        payload_of(&cur_cw[j]) + payload_of(&cur_ccw[j])
                    } else {
                        0
                    };
                    // Clockwise sends land at i + 1: arc-internal unless
                    // this is the last node; counterclockwise at i - 1:
                    // internal unless this is the first.
                    let (cur_a, cur_b) = split_two(cur_cw, cur_ccw, j);
                    let to_cw: &mut Vec<N::Msg> = if i + 1 < hi {
                        &mut next_cw[j + 1]
                    } else {
                        &mut out_cw_boundary
                    };
                    let to_ccw: &mut Vec<N::Msg> = if i > lo {
                        &mut next_ccw[j - 1]
                    } else {
                        &mut out_ccw_boundary
                    };
                    let faults = plan.map(|plan| FaultLinks {
                        plan,
                        queue_cw: &mut queue_cw[j],
                        queue_ccw: &mut queue_ccw[j],
                        stage_cw: &mut stage_cw,
                        stage_ccw: &mut stage_ccw,
                    });
                    let (step, dep_cw, dep_ccw) = match step_node_and_links(
                        &mut nodes[j],
                        &ctx,
                        cur_a,
                        cur_b,
                        to_cw,
                        to_ccw,
                        config.link_capacity,
                        record.then_some(&mut audit_buf),
                        faults,
                    ) {
                        Ok(out) => out,
                        Err(err) => {
                            merge_flag(flagged, (t, i, err));
                            local_error = true;
                            break;
                        }
                    };
                    round_departed += dep_cw.messages + dep_ccw.messages;
                    if record {
                        for rec in audit_buf.drain(..) {
                            partial.events.push(Event::DroppedOff {
                                t,
                                node: i,
                                bucket: rec.bucket,
                                units: rec.int,
                                frac_bits: rec.frac.to_bits(),
                                cum_drop_frac_bits: rec.cum_drop_frac.to_bits(),
                                cum_accept_frac_bits: rec.cum_accept_frac.to_bits(),
                                p_max_bucket: rec.p_max_bucket,
                                p_max_node: rec.p_max_node,
                                kind: rec.kind,
                            });
                        }
                    }
                    if step.work_done > 0 {
                        partial.processed_per_node[j] += step.work_done;
                        partial.busy_steps_per_node[j] += 1;
                        partial.last_busy = Some(t);
                        round_work += step.work_done;
                        frame.work.push((j as u32, step.work_done));
                        if record {
                            partial.events.push(Event::Processed {
                                t,
                                node: i,
                                units: step.work_done,
                            });
                        }
                    }
                    for (dir, dep) in [(Direction::Cw, dep_cw), (Direction::Ccw, dep_ccw)] {
                        partial.messages_dropped += dep.dropped;
                        partial.messages_delayed += dep.delayed;
                        partial.messages_retried += dep.retried;
                        sample.link_dropped += dep.dropped;
                        sample.link_delayed += dep.delayed;
                        sample.link_retried += dep.retried;
                        if dep.messages == 0 {
                            continue;
                        }
                        partial.messages_sent += dep.messages;
                        partial.job_hops += dep.payload;
                        round_sent_payload += dep.payload;
                        if record {
                            partial.events.push(Event::Sent {
                                t,
                                node: i,
                                dir,
                                job_units: dep.payload,
                            });
                        }
                    }
                    if let Some(o) = partial.obs.as_mut() {
                        o.record_sends(
                            j,
                            dep_cw.messages,
                            dep_cw.payload,
                            dep_ccw.messages,
                            dep_ccw.payload,
                        );
                        let dropped = delivered.saturating_sub(step.sent_payload());
                        o.dropoffs_per_node[j] += dropped;
                        if dep_cw.messages > 0 || dep_ccw.messages > 0 || dropped > 0 {
                            frame.sends.push((
                                j as u32,
                                dep_cw.messages,
                                dep_cw.payload,
                                dep_ccw.messages,
                                dep_ccw.payload,
                                dropped,
                            ));
                        }
                        let pending = nodes[j].pending_work();
                        sample.delivered_payload += delivered;
                        sample.sent_payload += dep_cw.payload + dep_ccw.payload;
                        sample.messages += dep_cw.messages + dep_ccw.messages;
                        sample.processed += step.work_done;
                        sample.dropped_off += dropped;
                        sample.max_pending = sample.max_pending.max(pending);
                        sample.total_pending += pending;
                    }
                }
                partial.sent_payload_per_round.push(round_sent_payload);
                arc_prev_departed = round_departed;
                if let Some(o) = partial.obs.as_mut() {
                    o.samples.push(sample);
                }
                round_processed.push(round_work);

                if local_error {
                    // Keep the neighbors running — they too must reach the
                    // window boundary. Whatever they compute past this
                    // round is discarded with the rest of the run when the
                    // boundary scan lands on the flag.
                    out_cw.abandon();
                    out_ccw.abandon();
                    break;
                }

                // The round handshake: hand this round's boundary streams
                // to the neighbors and take delivery of theirs. This
                // pairwise exchange replaces the old pair of global
                // barriers; non-adjacent arcs never synchronize inside a
                // window.
                out_cw.publish(t, &mut out_cw_boundary);
                out_ccw.publish(t, &mut out_ccw_boundary);
                in_cw.await_round(t);
                in_ccw.await_round(t);
                in_cw.drain_into(t, &mut next_cw[0]);
                in_ccw.drain_into(t, &mut next_ccw[len - 1]);
                for j in 0..len {
                    std::mem::swap(&mut cur_cw[j], &mut next_cw[j]);
                    std::mem::swap(&mut cur_ccw[j], &mut next_ccw[j]);
                }
                t += 1;
            }

            // ---- Window boundary: the only global synchronization. ----
            {
                let mut l = ledger.lock().unwrap_or_else(|e| e.into_inner());
                l.commit(win_start, &round_processed);
            }
            // Commit barrier: every arc's per-round counts (and any error
            // flags) are in before anyone resolves the window.
            barrier.wait();
            let (resolution, cum) = {
                let flag = flagged
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .map(|&(ft, fnode, _)| (ft, fnode));
                let l = ledger.lock().unwrap_or_else(|e| e.into_inner());
                resolve_window(win_start, l.cum_base, &l.rounds, flag, total_work)
            };
            if a == 0 {
                // One arc materializes the agreed outcome into the shared
                // slots `run_sharded` reads after the join: the committed
                // processed total, plus the flag fixups the resolution
                // implies — a conservation miscount outranks a flag at a
                // later round, and completion before the flagged round
                // voids the flag entirely (the sequential engine would
                // have stopped before reaching it).
                processed.store(cum, Ordering::SeqCst);
                match resolution {
                    Boundary::Miscount { processed: p } => {
                        let mut slot = flagged.lock().unwrap_or_else(|e| e.into_inner());
                        *slot = Some((
                            win_start,
                            0,
                            SimError::WorkMiscount {
                                processed: p,
                                total: total_work,
                            },
                        ));
                    }
                    Boundary::Done { .. } => {
                        let mut slot = flagged.lock().unwrap_or_else(|e| e.into_inner());
                        *slot = None;
                    }
                    Boundary::Advance | Boundary::Fail => {}
                }
            }
            // Resolution barrier: the fixups are visible (and the ledger
            // settled) before any arc opens the next window — or returns.
            barrier.wait();
            match resolution {
                Boundary::Advance => {
                    t = win_start + w;
                }
                Boundary::Done { last_round } => {
                    // Roll this arc back to the completing round; overrun
                    // rounds (up to a window's worth) vanish from the
                    // partial as if never stepped. Only the frames this
                    // window actually recorded participate — the buffer is
                    // reused across windows and its tail can be stale.
                    let keep = (last_round + 1 - win_start) as usize;
                    roll_back(&mut partial, &undo[..round_processed.len()], keep);
                    break;
                }
                Boundary::Fail | Boundary::Miscount { .. } => break,
            }
        }
        ArcOutcome {
            partial,
            queue_cw,
            queue_ccw,
            prev_departed: arc_prev_departed,
            paused,
        }
    }

    // ------------------------------------------------------------------
    // The work-stealing executor (`ParStrategy::Steal`; see DESIGN.md §14).
    //
    // Leader-orchestrated: the main thread owns the whole ring state
    // between windows and runs the entire boundary protocol (budget,
    // pause, checkpoint, ledger resolution, rollback, rebalancing)
    // single-threaded, mirroring the sequential engine's exact ordering.
    // Only the window interior is parallel: the ring is cut into more
    // node-range tasks than worker threads, and workers cooperatively
    // advance whichever task is runnable — a task blocked on a neighbor's
    // halo is requeued, not waited on, so an imbalanced ring keeps every
    // core busy. Stealing changes *who* computes a range, never what is
    // computed, and the merge algebra is shared with the static executor,
    // so the report stays bit-identical for every schedule.
    // ------------------------------------------------------------------

    /// Per-task state that persists across windows within one cut epoch.
    /// A recut (rebalance, which is semantically a resume: fold the
    /// partials into the base, restart the deltas) replaces it wholesale.
    struct TaskState<M> {
        partial: ArcPartial,
        round_processed: Vec<u64>,
        undo: Vec<RoundUndo>,
        out_cw_boundary: Vec<M>,
        out_ccw_boundary: Vec<M>,
        arc_prev_departed: u64,
        /// Nodes that processed work in the task's last swept round;
        /// `== len` arms the dense fused sweep (no skip bookkeeping) for
        /// the next round, since the quiescent-node short-circuit cannot
        /// fire on an all-busy range.
        busy_last_round: usize,
        /// All-quiet fast path: when a full (plan-free) sweep finds every
        /// node in the range quiescent, the task falls asleep — rounds
        /// before this promise advance in O(1) bulk bookkeeping instead of
        /// per-node sweeps (`0` = awake). Set to the minimum of the range's
        /// `quiet_until` promises; a boundary delivery or the promise
        /// expiring wakes the task.
        asleep_until: u64,
        /// Rounds skipped while asleep, owed to every node's `quiet_debt`;
        /// folded in at wake-up or window end so `fast_forward` and the
        /// leader's boundary settlement see the full count.
        asleep_debt: u64,
        /// The `(max_pending, total_pending)` observability sample an
        /// all-quiet round records; node state is frozen while asleep, so
        /// skipped rounds re-push exactly these values.
        asleep_pending: (u64, u64),
    }

    fn new_task_state<M>(lo: usize, len: usize, config: &EngineConfig) -> TaskState<M> {
        TaskState {
            partial: ArcPartial {
                lo,
                processed_per_node: vec![0; len],
                busy_steps_per_node: vec![0; len],
                messages_sent: 0,
                job_hops: 0,
                messages_dropped: 0,
                messages_delayed: 0,
                messages_retried: 0,
                last_busy: None,
                sent_payload_per_round: Vec::new(),
                events: Vec::new(),
                obs: config.observe.then(|| Observability::new(len)),
            },
            round_processed: Vec::new(),
            undo: Vec::new(),
            out_cw_boundary: Vec::new(),
            out_ccw_boundary: Vec::new(),
            arc_prev_departed: 0,
            busy_last_round: 0,
            asleep_until: 0,
            asleep_debt: 0,
            asleep_pending: (0, 0),
        }
    }

    /// Cuts `0..weights.len()` into `r` contiguous non-empty ranges with
    /// near-equal weight prefixes: range `k` ends at the smallest prefix
    /// whose cumulative weight reaches `(k+1)/r` of the total, held back
    /// just enough that every later range still gets at least one node.
    /// Deterministic, so rebalancing is a pure function of the ledger.
    fn cut_by_weight(weights: &[u64], r: usize) -> Vec<(usize, usize)> {
        let m = weights.len();
        let r = r.clamp(1, m.max(1));
        let total: u64 = weights.iter().sum();
        let mut bounds = Vec::with_capacity(r);
        let mut lo = 0usize;
        let mut acc: u64 = 0;
        for k in 0..r {
            let left = r - k - 1;
            let target = total * (k as u64 + 1) / r as u64;
            let mut hi = lo + 1;
            acc += weights[lo];
            while hi < m - left && acc < target {
                acc += weights[hi];
                hi += 1;
            }
            if left == 0 {
                hi = m;
            }
            bounds.push((lo, hi));
            lo = hi;
        }
        bounds
    }

    /// Splits `rest` into consecutive mutable slices matching `bounds`
    /// (which must tile `0..rest.len()`).
    fn split_ranges<'s, T>(mut rest: &'s mut [T], bounds: &[(usize, usize)]) -> Vec<&'s mut [T]> {
        let mut out = Vec::with_capacity(bounds.len());
        for &(lo, hi) in bounds {
            let (a, b) = rest.split_at_mut(hi - lo);
            out.push(a);
            rest = b;
        }
        out
    }

    /// Empty per-task slices for state that is not materialized in this
    /// run (link queues without a fault plan, unit columns when not
    /// observing).
    fn empty_ranges<'s, T>(n: usize) -> Vec<&'s mut [T]> {
        (0..n).map(|_| <&mut [T]>::default()).collect()
    }

    /// One task's view of the ring for the current window: its node range,
    /// arena/queue/cache slices, and its window clock. Owned by whichever
    /// worker holds the lock; the leader reads the remains after the
    /// window scope joins.
    struct TaskRun<'s, N: Node> {
        lo: usize,
        hi: usize,
        t: u64,
        /// Phase A (sweep + publish) done for round `t`; waiting on the
        /// neighbor halos to finish the round.
        swept: bool,
        /// Reached the window end (or stopped on an in-round error).
        done: bool,
        nodes: &'s mut [N],
        cur_cw: &'s mut [Vec<N::Msg>],
        cur_ccw: &'s mut [Vec<N::Msg>],
        next_cw: &'s mut [Vec<N::Msg>],
        next_ccw: &'s mut [Vec<N::Msg>],
        queue_cw: &'s mut [LinkQueue<N::Msg>],
        queue_ccw: &'s mut [LinkQueue<N::Msg>],
        quiet_until: &'s mut [u64],
        quiet_debt: &'s mut [u64],
        units_cur_cw: &'s mut [u64],
        units_cur_ccw: &'s mut [u64],
        units_next_cw: &'s mut [u64],
        units_next_ccw: &'s mut [u64],
        state: &'s mut TaskState<N::Msg>,
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_stolen<N>(
        nodes: &mut [N],
        topo: RingTopology,
        total_work: u64,
        max_steps: u64,
        config: &EngineConfig,
        shards: usize,
        resume: Option<ResumeState<N::Msg>>,
        mut checkpoint: Option<&mut CheckpointHook<N::Msg>>,
        pause_at: Option<u64>,
    ) -> Result<Sharded<N::Msg>, SimError>
    where
        N: Node + Send,
        N::Msg: Send,
    {
        let m = topo.len();
        let rebalance = config.par.resolved_rebalance();
        let r_tasks = (shards * config.par.resolved_tasks_per_shard())
            .min(m)
            .max(1);

        // The run prefix, exactly as in `run_sharded`; folds (recuts,
        // which restart the per-task deltas) advance it mid-run.
        let base = resume.unwrap_or_else(|| ResumeState {
            t0: 0,
            prev_round_departed: 0,
            cur_cw: (0..m).map(|_| Vec::new()).collect(),
            cur_ccw: (0..m).map(|_| Vec::new()).collect(),
            queue_cw: Vec::new(),
            queue_ccw: Vec::new(),
            metrics: Metrics::new(m),
            trace: Trace::new(config.trace),
            obs: config.observe.then(|| Observability::new(m)),
        });
        let ResumeState {
            t0,
            prev_round_departed: base_prev_departed,
            mut cur_cw,
            mut cur_ccw,
            mut queue_cw,
            mut queue_ccw,
            metrics: mut base_metrics,
            trace: base_trace,
            obs: mut base_obs,
        } = base;
        let run_start_t = t0;
        let mut base_t0 = t0;
        let mut base_events: Vec<Event> = base_trace.into_events();

        let mut next_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut next_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();

        let plan_active = config.faults.is_some();
        if plan_active && queue_cw.is_empty() {
            queue_cw = (0..m).map(|_| VecDeque::new()).collect();
            queue_ccw = (0..m).map(|_| VecDeque::new()).collect();
        }

        // Quiescent-node caches are per *node*, so they survive recuts
        // untouched; debts are settled at every boundary before any
        // protocol can observe node state.
        let mut quiet_until: Vec<u64> = vec![0; m];
        let mut quiet_debt: Vec<u64> = vec![0; m];

        // SoA unit columns: per-cell payload sums maintained alongside the
        // message arenas so the sweep's `delivered` figure is one add
        // instead of a message scan. Only materialized when it pays (the
        // scan exists only under `observe`) and only when lossless links
        // make the column update exact (no fault plan).
        let units_on = config.observe && !plan_active;
        let un = if units_on { m } else { 0 };
        let mut units_cur_cw: Vec<u64> = vec![0; un];
        let mut units_cur_ccw: Vec<u64> = vec![0; un];
        let mut units_next_cw: Vec<u64> = vec![0; un];
        let mut units_next_ccw: Vec<u64> = vec![0; un];
        if units_on {
            for i in 0..m {
                units_cur_cw[i] = payload_of(&cur_cw[i]);
                units_cur_ccw[i] = payload_of(&cur_ccw[i]);
            }
        }

        // Initial cut: balanced by node count (no load signal yet).
        let ones = vec![1u64; m];
        let mut bounds = cut_by_weight(&ones, r_tasks);
        let mut states: Vec<TaskState<N::Msg>> = bounds
            .iter()
            .map(|&(lo, hi)| new_task_state(lo, hi - lo, config))
            .collect();
        states[0].arc_prev_departed = base_prev_departed;

        let cp_every = match (config.checkpoint_every, checkpoint.is_some()) {
            (Some(k), true) => Some(k),
            _ => None,
        };

        let mut cum_base: u64 = base_metrics.total_processed();
        let mut want_recut = false;
        let mut t: u64 = t0;
        loop {
            // Settle skipped-round drain debt before any boundary protocol
            // (pause, checkpoint image, fold) can observe node state
            // mid-replay — the same contract as the static executor.
            for (i, debt) in quiet_debt.iter_mut().enumerate() {
                if *debt > 0 {
                    nodes[i].fast_forward(std::mem::take(debt));
                }
            }

            if t >= max_steps {
                return Err(SimError::ExceededMaxSteps {
                    max_steps,
                    processed: cum_base,
                    total: total_work,
                });
            }

            if pause_at == Some(t) {
                let prev: u64 = states.iter().map(|s| s.arc_prev_departed).sum();
                let (metrics, events, obs) = merge_partials(
                    base_t0,
                    &base_metrics,
                    &base_events,
                    base_obs.as_ref(),
                    config.trace,
                    states.into_iter().map(|s| s.partial).collect(),
                );
                return Ok(Sharded::Paused(ResumeState {
                    t0: t,
                    prev_round_departed: prev,
                    cur_cw,
                    cur_ccw,
                    queue_cw,
                    queue_ccw,
                    metrics,
                    trace: Trace::from_events(config.trace, events),
                    obs,
                }));
            }

            // Checkpoint boundary: serialize each task's slice in ring
            // order and stitch — the same `arc_image` + `stitch_snapshot`
            // path the static executor takes, minus the barriers (the
            // leader is single-threaded here), so the snapshot bytes are
            // independent of shard count, task cuts and steal history.
            if let Some(every) = cp_every {
                if t > run_start_t && t % every == 0 {
                    let hook = checkpoint.as_deref_mut().expect("gated on hook presence");
                    let cp = ParCheckpoint {
                        every,
                        start_t: run_start_t,
                        save_msg: hook.save_msg,
                        app_meta: config.checkpoint_meta.as_str(),
                        images: Mutex::new(Vec::new()),
                        sink: Mutex::new(&mut *hook.sink),
                        base: BaseCtx {
                            t0: base_t0,
                            metrics: &base_metrics,
                            events: &base_events,
                            obs: base_obs.as_ref(),
                        },
                    };
                    let mut images = Vec::with_capacity(states.len());
                    let mut failed: Option<(usize, CheckpointError)> = None;
                    for (k, &(lo, hi)) in bounds.iter().enumerate() {
                        let empty: &[LinkQueue<N::Msg>] = &[];
                        let (qcw, qccw) = if plan_active {
                            (&queue_cw[lo..hi], &queue_ccw[lo..hi])
                        } else {
                            (empty, empty)
                        };
                        match arc_image(
                            &cp,
                            lo,
                            &nodes[lo..hi],
                            &cur_cw[lo..hi],
                            &cur_ccw[lo..hi],
                            qcw,
                            qccw,
                            states[k].arc_prev_departed,
                            &states[k].partial,
                        ) {
                            Ok(img) => images.push(img),
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        }
                    }
                    if let Some((_, error)) = failed {
                        return Err(SimError::Checkpoint { step: t, error });
                    }
                    let snap = stitch_snapshot(&cp, t, m, total_work, config, images);
                    let mut sink = cp.sink.lock().unwrap_or_else(|e| e.into_inner());
                    if let Err(error) = (**sink)(&snap) {
                        return Err(SimError::Checkpoint { step: t, error });
                    }
                }
            }

            // Quiescent-span compression is deliberately omitted here: it
            // is unobservable in the report (DESIGN.md §10), so skipping
            // it cannot change a byte; the steal executor targets busy
            // imbalanced rings where spans never go globally quiet.

            // Ledger-driven rebalance: the previous window exposed
            // imbalance, so fold the per-task deltas into the base (a
            // recut is semantically a resume — the same merge the
            // checkpoint stitch trusts) and recut the ring by cumulative
            // per-node processed counts.
            if want_recut {
                want_recut = false;
                // Cumulative per-node processed counts are the base plus
                // the per-task deltas, so the new cut is computable without
                // merging; when a persistent imbalance keeps proposing the
                // cut the ring already has, skip the merge-and-rebuild
                // entirely (deferring the merge is unobservable — the final
                // report merges whatever partials remain anyway).
                let mut weights: Vec<u64> = base_metrics
                    .processed_per_node
                    .iter()
                    .map(|&p| p + 1)
                    .collect();
                for (s, &(lo, _)) in states.iter().zip(&bounds) {
                    for (j, &p) in s.partial.processed_per_node.iter().enumerate() {
                        weights[lo + j] += p;
                    }
                }
                let new_bounds = cut_by_weight(&weights, r_tasks);
                if new_bounds != bounds {
                    let prev: u64 = states.iter().map(|s| s.arc_prev_departed).sum();
                    let (metrics, events, obs) = merge_partials(
                        base_t0,
                        &base_metrics,
                        &base_events,
                        base_obs.as_ref(),
                        config.trace,
                        states.drain(..).map(|s| s.partial).collect(),
                    );
                    base_metrics = metrics;
                    base_events = events;
                    base_obs = obs;
                    base_t0 = t;
                    bounds = new_bounds;
                    states = bounds
                        .iter()
                        .map(|&(lo, hi)| new_task_state(lo, hi - lo, config))
                        .collect();
                    states[0].arc_prev_departed = prev;
                }
            }

            // Open a window, capped exactly like the other executors so
            // checkpoint cadence, pauses and the budget land on window
            // boundaries.
            let min_len = bounds.iter().map(|&(lo, hi)| hi - lo).min().unwrap_or(1);
            let mut w = window_size(config, min_len).min(max_steps - t);
            if let Some(every) = cp_every {
                w = w.min(every - t % every);
            }
            if let Some(p) = pause_at {
                w = w.min(p - t);
            }
            let w = w.max(1);
            let win_start = t;
            for s in states.iter_mut() {
                s.round_processed.clear();
                if s.undo.len() < w as usize {
                    s.undo.resize_with(w as usize, RoundUndo::default);
                }
            }

            // Per-window shared state: fresh halos (all drained at the
            // previous boundary), the runnable-task queue, and the error
            // flag (any flag is resolved at this window's boundary).
            let halo_cw: Vec<Halo<N::Msg>> = (0..r_tasks).map(|_| Halo::new(win_start)).collect();
            let halo_ccw: Vec<Halo<N::Msg>> = (0..r_tasks).map(|_| Halo::new(win_start)).collect();
            let flagged: Mutex<Option<Flagged>> = Mutex::new(None);
            let remaining = AtomicUsize::new(r_tasks);
            let runnable: Mutex<VecDeque<usize>> = Mutex::new((0..r_tasks).collect());

            {
                let node_slices = split_ranges(&mut *nodes, &bounds);
                let cur_cw_s = split_ranges(&mut cur_cw, &bounds);
                let cur_ccw_s = split_ranges(&mut cur_ccw, &bounds);
                let next_cw_s = split_ranges(&mut next_cw, &bounds);
                let next_ccw_s = split_ranges(&mut next_ccw, &bounds);
                let (qcw_s, qccw_s) = if plan_active {
                    (
                        split_ranges(&mut queue_cw, &bounds),
                        split_ranges(&mut queue_ccw, &bounds),
                    )
                } else {
                    (empty_ranges(r_tasks), empty_ranges(r_tasks))
                };
                let quiet_until_s = split_ranges(&mut quiet_until, &bounds);
                let quiet_debt_s = split_ranges(&mut quiet_debt, &bounds);
                let (ucw_s, uccw_s, nucw_s, nuccw_s) = if units_on {
                    (
                        split_ranges(&mut units_cur_cw, &bounds),
                        split_ranges(&mut units_cur_ccw, &bounds),
                        split_ranges(&mut units_next_cw, &bounds),
                        split_ranges(&mut units_next_ccw, &bounds),
                    )
                } else {
                    (
                        empty_ranges(r_tasks),
                        empty_ranges(r_tasks),
                        empty_ranges(r_tasks),
                        empty_ranges(r_tasks),
                    )
                };

                let mut nodes_it = node_slices.into_iter();
                let mut cc_it = cur_cw_s.into_iter();
                let mut cx_it = cur_ccw_s.into_iter();
                let mut nc_it = next_cw_s.into_iter();
                let mut nx_it = next_ccw_s.into_iter();
                let mut qc_it = qcw_s.into_iter();
                let mut qx_it = qccw_s.into_iter();
                let mut qu_it = quiet_until_s.into_iter();
                let mut qd_it = quiet_debt_s.into_iter();
                let mut uc_it = ucw_s.into_iter();
                let mut ux_it = uccw_s.into_iter();
                let mut nuc_it = nucw_s.into_iter();
                let mut nux_it = nuccw_s.into_iter();
                let mut tasks: Vec<Mutex<TaskRun<'_, N>>> = Vec::with_capacity(r_tasks);
                for (k, st) in states.iter_mut().enumerate() {
                    let (lo, hi) = bounds[k];
                    tasks.push(Mutex::new(TaskRun {
                        lo,
                        hi,
                        t: win_start,
                        swept: false,
                        done: false,
                        nodes: nodes_it.next().expect("one slice per task"),
                        cur_cw: cc_it.next().expect("one slice per task"),
                        cur_ccw: cx_it.next().expect("one slice per task"),
                        next_cw: nc_it.next().expect("one slice per task"),
                        next_ccw: nx_it.next().expect("one slice per task"),
                        queue_cw: qc_it.next().expect("one slice per task"),
                        queue_ccw: qx_it.next().expect("one slice per task"),
                        quiet_until: qu_it.next().expect("one slice per task"),
                        quiet_debt: qd_it.next().expect("one slice per task"),
                        units_cur_cw: uc_it.next().expect("one slice per task"),
                        units_cur_ccw: ux_it.next().expect("one slice per task"),
                        units_next_cw: nuc_it.next().expect("one slice per task"),
                        units_next_ccw: nux_it.next().expect("one slice per task"),
                        state: st,
                    }));
                }
                // Pool size: one worker per shard, but never more than
                // there are tasks to hold, and — unless explicitly forced —
                // never more than the machine has cores (excess workers
                // only add scheduling churn; on a single-core host the
                // window runs leader-only with zero thread spawns). Worker
                // count is unobservable in the report, so this adapts
                // freely per machine.
                let workers = config
                    .par
                    .resolved_threads()
                    .unwrap_or_else(|| {
                        shards.min(std::thread::available_parallelism().map_or(1, |n| n.get()))
                    })
                    .min(r_tasks)
                    .max(1);
                let tasks = &tasks;
                let runnable = &runnable;
                let remaining = &remaining;
                let flagged = &flagged;
                let halo_cw = &halo_cw;
                let halo_ccw = &halo_ccw;
                std::thread::scope(|scope| {
                    for wid in 1..workers {
                        scope.spawn(move || {
                            steal_worker(
                                wid, tasks, runnable, remaining, flagged, halo_cw, halo_ccw,
                                win_start, w, config, topo, units_on,
                            );
                        });
                    }
                    steal_worker(
                        0, tasks, runnable, remaining, flagged, halo_cw, halo_ccw, win_start, w,
                        config, topo, units_on,
                    );
                });
            }

            // ---- Window boundary: leader-sequential resolution. ----
            let mut rounds: Vec<u64> = Vec::new();
            for s in &states {
                if rounds.len() < s.round_processed.len() {
                    rounds.resize(s.round_processed.len(), 0);
                }
                for (dst, src) in rounds.iter_mut().zip(&s.round_processed) {
                    *dst += src;
                }
            }
            let flag = flagged.into_inner().unwrap_or_else(|e| e.into_inner());
            let (resolution, cum) = resolve_window(
                win_start,
                cum_base,
                &rounds,
                flag.as_ref().map(|&(ft, fnode, _)| (ft, fnode)),
                total_work,
            );
            match resolution {
                Boundary::Advance => {
                    t = win_start + w;
                    cum_base = cum;
                    if rebalance && r_tasks > 1 {
                        let win_work: Vec<u64> = states
                            .iter()
                            .map(|s| s.round_processed.iter().sum())
                            .collect();
                        let total: u64 = win_work.iter().sum();
                        let max = win_work.iter().copied().max().unwrap_or(0);
                        // Recut when the hottest task did > 1.5x its fair
                        // share of the window's work.
                        want_recut = total > 0 && max * 2 * (r_tasks as u64) > 3 * total;
                    }
                }
                Boundary::Done { last_round } => {
                    let keep = (last_round + 1 - win_start) as usize;
                    for s in states.iter_mut() {
                        let n = s.round_processed.len();
                        roll_back(&mut s.partial, &s.undo[..n], keep);
                    }
                    let (metrics, events, obs) = merge_partials(
                        base_t0,
                        &base_metrics,
                        &base_events,
                        base_obs.as_ref(),
                        config.trace,
                        states.into_iter().map(|s| s.partial).collect(),
                    );
                    let trace = Trace::from_events(config.trace, events);
                    let makespan = metrics.last_busy_step.expect("work was processed") + 1;
                    return Ok(Sharded::Done(RunReport {
                        makespan,
                        metrics,
                        trace,
                        observability: obs,
                    }));
                }
                Boundary::Fail => {
                    let (_, _, err) = flag.expect("fail resolution carries the flag");
                    return Err(err);
                }
                Boundary::Miscount { processed } => {
                    return Err(SimError::WorkMiscount {
                        processed,
                        total: total_work,
                    });
                }
            }
        }
    }

    /// One worker of the window pool: pops a runnable task, advances it as
    /// far as its neighbor halos allow, and requeues it when blocked. The
    /// seed perturbs which end of the queue each worker pops — an
    /// adversarial-schedule knob; reports are schedule-independent because
    /// stealing only moves *who* runs a task, never its content or order.
    ///
    /// Deadlock-free: `Halo::publish` never blocks, so among the tasks at
    /// the minimal round there is always one whose neighbors have already
    /// published (or are themselves runnable from the queue); a blocked
    /// task is requeued, not held, so that runnable task is always
    /// reachable.
    #[allow(clippy::too_many_arguments)]
    fn steal_worker<N: Node>(
        wid: usize,
        tasks: &[Mutex<TaskRun<'_, N>>],
        runnable: &Mutex<VecDeque<usize>>,
        remaining: &AtomicUsize,
        flagged: &Mutex<Option<Flagged>>,
        halo_cw: &[Halo<N::Msg>],
        halo_ccw: &[Halo<N::Msg>],
        win_start: u64,
        w: u64,
        config: &EngineConfig,
        topo: RingTopology,
        units_on: bool,
    ) {
        let win_end = win_start + w;
        // Worker-local scratch, transient within one node step, so reuse
        // across tasks is safe.
        let mut stage_cw: Vec<N::Msg> = Vec::new();
        let mut stage_ccw: Vec<N::Msg> = Vec::new();
        let mut audit_buf: Vec<DropRecord> = Vec::new();
        // Deterministic per-worker pop-order perturbation (xorshift64).
        let mut rng = (config.par.resolved_steal_seed()
            ^ (wid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            | 1;
        let mut idle = 0u32;
        while remaining.load(Ordering::Acquire) > 0 {
            let idx = {
                let mut q = runnable.lock().unwrap_or_else(|e| e.into_inner());
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                if rng & 1 == 0 {
                    q.pop_front()
                } else {
                    q.pop_back()
                }
            };
            let Some(idx) = idx else {
                // Every task is held by some worker right now; they will
                // requeue what they cannot finish.
                std::thread::yield_now();
                continue;
            };
            let progressed = {
                let mut task = tasks[idx].lock().unwrap_or_else(|e| e.into_inner());
                let progressed = advance_task(
                    &mut task,
                    idx,
                    tasks.len(),
                    halo_cw,
                    halo_ccw,
                    win_end,
                    config,
                    topo,
                    units_on,
                    flagged,
                    &mut stage_cw,
                    &mut stage_ccw,
                    &mut audit_buf,
                );
                if task.done {
                    remaining.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                progressed
            };
            runnable
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(idx);
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                if idle > 64 {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Advances one task as far as it can go without blocking: sweep the
    /// current round (phase A), then complete the halo handshake (phase B)
    /// whenever both in-halos have published the round. Returns whether any
    /// phase ran.
    #[allow(clippy::too_many_arguments)]
    fn advance_task<N: Node>(
        task: &mut TaskRun<'_, N>,
        idx: usize,
        ntasks: usize,
        halo_cw: &[Halo<N::Msg>],
        halo_ccw: &[Halo<N::Msg>],
        win_end: u64,
        config: &EngineConfig,
        topo: RingTopology,
        units_on: bool,
        flagged: &Mutex<Option<Flagged>>,
        stage_cw: &mut Vec<N::Msg>,
        stage_ccw: &mut Vec<N::Msg>,
        audit_buf: &mut Vec<DropRecord>,
    ) -> bool {
        let mut progressed = false;
        loop {
            if !task.swept {
                if task.state.asleep_until > task.t {
                    match bulk_skip(task, idx, ntasks, halo_cw, halo_ccw, win_end) {
                        SleepOutcome::Finished => {
                            task.done = true;
                            return true;
                        }
                        SleepOutcome::Blocked(advanced) => return progressed || advanced,
                        // Fall through to the normal sweep, which counts as
                        // progress on its own.
                        SleepOutcome::Awake => {}
                    }
                }
                let errored = sweep_task_round(
                    task, idx, ntasks, halo_cw, halo_ccw, config, topo, units_on, flagged,
                    stage_cw, stage_ccw, audit_buf,
                );
                progressed = true;
                if errored {
                    // Halos already abandoned; neighbors run to the window
                    // end and the boundary scan lands on the flag.
                    task.done = true;
                    return true;
                }
                task.swept = true;
            }
            // Phase B, non-blocking: both neighbors must have finished
            // this round (an abandoned halo reads as finished).
            let t = task.t;
            if !(halo_cw[idx].ready(t) && halo_ccw[idx].ready(t)) {
                return progressed;
            }
            let len = task.hi - task.lo;
            let before_cw = task.next_cw[0].len();
            halo_cw[idx].drain_into(t, &mut task.next_cw[0]);
            if units_on {
                task.units_next_cw[0] += payload_of(&task.next_cw[0][before_cw..]);
            }
            let before_ccw = task.next_ccw[len - 1].len();
            halo_ccw[idx].drain_into(t, &mut task.next_ccw[len - 1]);
            if units_on {
                task.units_next_ccw[len - 1] += payload_of(&task.next_ccw[len - 1][before_ccw..]);
            }
            if task.next_cw[0].len() > before_cw || task.next_ccw[len - 1].len() > before_ccw {
                // The drain delivered content for the next round, so any
                // sleep the quiet sweep just armed is void: settle its
                // ledger (a no-op unless rounds were skipped) and clear the
                // promise so the next sweep runs node by node.
                settle_asleep_debt(task);
                task.state.asleep_until = 0;
            }
            for j in 0..len {
                std::mem::swap(&mut task.cur_cw[j], &mut task.next_cw[j]);
                std::mem::swap(&mut task.cur_ccw[j], &mut task.next_ccw[j]);
            }
            if units_on {
                for j in 0..len {
                    task.units_cur_cw[j] = std::mem::take(&mut task.units_next_cw[j]);
                    task.units_cur_ccw[j] = std::mem::take(&mut task.units_next_ccw[j]);
                }
            }
            task.t += 1;
            task.swept = false;
            progressed = true;
            if task.t == win_end {
                task.done = true;
                return true;
            }
        }
    }

    /// What a bulk-skip attempt on an asleep task concluded. The payload
    /// bool is whether any round was completed by this attempt.
    enum SleepOutcome {
        /// The skip reached the window end; ledger settled, task done.
        Finished,
        /// Still asleep, waiting on neighbor publishes; poll again later.
        Blocked(bool),
        /// Woke up (promise expired or content is imminent); ledger
        /// settled — proceed with a normal node-by-node sweep.
        Awake,
    }

    /// Folds an asleep task's skipped rounds into every node's quiet-debt
    /// ledger — exactly what per-node sweeps of those rounds would have
    /// accrued — so `fast_forward` and the leader's boundary settlement see
    /// the full count.
    fn settle_asleep_debt<N: Node>(task: &mut TaskRun<'_, N>) {
        let debt = std::mem::take(&mut task.state.asleep_debt);
        if debt > 0 {
            for q in task.quiet_debt.iter_mut() {
                *q += debt;
            }
        }
    }

    /// Advances an asleep task — one whose last sweep found every node
    /// quiescent with empty arenas — in O(1) per round instead of O(len).
    ///
    /// A skipped round is byte-for-byte an all-quiet sweep: zero sends, a
    /// frozen observability sample (node state cannot change while no
    /// round steps it), a zero work entry, and a rollback frame over
    /// unchanged counters. Three bounds cap the skip:
    ///
    /// - the task's own promise (`asleep_until`) and the window end;
    /// - `done` of both in-halos: a round is only complete once the
    ///   neighbors finished it too (the normal phase-B handshake);
    /// - the earliest queued tag of both in-halos: a round's drain is
    ///   provably empty forever only below every queued entry and below
    ///   the neighbors' `done` (future publishes tag at or above it).
    ///
    /// The sweep one round past that proof is still provably quiet, so it
    /// is published *ahead* of its completion — that keeps the handshake
    /// live when every task in the ring is asleep (each poll ratchets the
    /// published frontier forward, which raises the neighbors' proof).
    /// Re-publishing such a round after a wake is an idempotent empty
    /// publish, so the overlap is harmless.
    fn bulk_skip<N: Node>(
        task: &mut TaskRun<'_, N>,
        idx: usize,
        ntasks: usize,
        halo_cw: &[Halo<N::Msg>],
        halo_ccw: &[Halo<N::Msg>],
        win_end: u64,
    ) -> SleepOutcome {
        let t = task.t;
        let horizon = task.state.asleep_until.min(win_end);
        let ready_to = halo_cw[idx].done_round().min(halo_ccw[idx].done_round());
        let first_content = halo_cw[idx]
            .first_pending()
            .min(halo_ccw[idx].first_pending());
        let proven = ready_to.min(first_content);
        let publish_to = horizon.min(proven.saturating_add(1));
        let complete_to = horizon.min(proven);
        if publish_to > t {
            halo_cw[(idx + 1) % ntasks].publish_span(publish_to);
            halo_ccw[(idx + ntasks - 1) % ntasks].publish_span(publish_to);
        }
        let mut advanced = false;
        if complete_to > t {
            let state = &mut *task.state;
            let (max_pending, total_pending) = state.asleep_pending;
            for r in t..complete_to {
                let frame = &mut state.undo[state.round_processed.len()];
                frame.events_len = state.partial.events.len();
                frame.samples_len = state.partial.obs.as_ref().map_or(0, |o| o.samples.len());
                frame.rounds_len = state.partial.sent_payload_per_round.len();
                frame.messages_sent = state.partial.messages_sent;
                frame.job_hops = state.partial.job_hops;
                frame.messages_dropped = state.partial.messages_dropped;
                frame.messages_delayed = state.partial.messages_delayed;
                frame.messages_retried = state.partial.messages_retried;
                frame.last_busy = state.partial.last_busy;
                frame.work.clear();
                frame.sends.clear();
                state.partial.sent_payload_per_round.push(0);
                state.arc_prev_departed = 0;
                if let Some(o) = state.partial.obs.as_mut() {
                    o.samples.push(StepSample {
                        t: r,
                        max_pending,
                        total_pending,
                        ..StepSample::default()
                    });
                }
                state.round_processed.push(0);
            }
            state.asleep_debt += complete_to - t;
            task.t = complete_to;
            advanced = true;
        }
        let t = task.t;
        if t == win_end {
            settle_asleep_debt(task);
            // The promise itself is kept: it outlives the window, so the
            // next window can resume skipping without a re-arming sweep.
            task.done = true;
            return SleepOutcome::Finished;
        }
        if t >= task.state.asleep_until || first_content <= t {
            // Promise expired, or the next drain delivers content. Either
            // way round `t` is swept normally — when woken by content that
            // sweep is still provably quiet (the entries land in the *next*
            // arenas), so the publish-ahead overlap above stays consistent.
            settle_asleep_debt(task);
            task.state.asleep_until = 0;
            return SleepOutcome::Awake;
        }
        SleepOutcome::Blocked(advanced)
    }

    /// Phase A of one task round: the same per-round body as the static
    /// executor's `run_arc` — rollback frame, stall carryover, the ordered
    /// per-node sweep with the quiescent-node short-circuit — plus the
    /// dense fused variant that drops the skip bookkeeping when the
    /// previous round saw every node in the range busy, and the SoA unit
    /// columns replacing the `delivered` payload scans. Publishes the
    /// boundary streams (never blocks) before returning. Returns `true` on
    /// an in-round error (already flagged, halos abandoned).
    #[allow(clippy::too_many_arguments)]
    fn sweep_task_round<N: Node>(
        task: &mut TaskRun<'_, N>,
        idx: usize,
        ntasks: usize,
        halo_cw: &[Halo<N::Msg>],
        halo_ccw: &[Halo<N::Msg>],
        config: &EngineConfig,
        topo: RingTopology,
        units_on: bool,
        flagged: &Mutex<Option<Flagged>>,
        stage_cw: &mut Vec<N::Msg>,
        stage_ccw: &mut Vec<N::Msg>,
        audit_buf: &mut Vec<DropRecord>,
    ) -> bool {
        let TaskRun {
            lo,
            hi,
            t,
            nodes,
            cur_cw,
            cur_ccw,
            next_cw,
            next_ccw,
            queue_cw,
            queue_ccw,
            quiet_until,
            quiet_debt,
            units_cur_cw,
            units_cur_ccw,
            units_next_cw,
            units_next_ccw,
            state,
            ..
        } = task;
        let (lo, hi, t) = (*lo, *hi, *t);
        let len = hi - lo;
        let TaskState {
            partial,
            round_processed,
            undo,
            out_cw_boundary,
            out_ccw_boundary,
            arc_prev_departed,
            busy_last_round,
            asleep_until,
            asleep_pending,
            ..
        } = &mut **state;
        let out_cw = &halo_cw[(idx + 1) % ntasks];
        let out_ccw = &halo_ccw[(idx + ntasks - 1) % ntasks];
        let plan = config.faults.as_ref();
        let record = matches!(config.trace, TraceLevel::Full);
        // All-busy last round: the short-circuit cannot fire, so run the
        // fused sweep without the skip bookkeeping. Safe to leave the
        // quiet caches untouched: an all-busy round zeroed `quiet_until`
        // and settled every debt, and dense rounds never re-arm them.
        let dense = plan.is_none() && *busy_last_round == len;

        // Rollback frame (index == rounds completed this window).
        let frame = &mut undo[round_processed.len()];
        frame.events_len = partial.events.len();
        frame.samples_len = partial.obs.as_ref().map_or(0, |o| o.samples.len());
        frame.rounds_len = partial.sent_payload_per_round.len();
        frame.messages_sent = partial.messages_sent;
        frame.job_hops = partial.job_hops;
        frame.messages_dropped = partial.messages_dropped;
        frame.messages_delayed = partial.messages_delayed;
        frame.messages_retried = partial.messages_retried;
        frame.last_busy = partial.last_busy;
        frame.work.clear();
        frame.sends.clear();

        let mut round_departed: u64 = 0;
        if let Some(plan) = plan {
            for j in 0..len {
                if !plan.node_runs(lo + j, t) {
                    round_departed += (cur_cw[j].len() + cur_ccw[j].len()) as u64;
                    next_cw[j].append(&mut cur_cw[j]);
                    next_ccw[j].append(&mut cur_ccw[j]);
                }
            }
        }

        let mut round_sent_payload: u64 = 0;
        let mut round_work: u64 = 0;
        let mut busy_nodes: usize = 0;
        let mut quiet_nodes: usize = 0;
        let mut sample = StepSample {
            t,
            ..StepSample::default()
        };
        let mut local_error = false;
        for i in lo..hi {
            let j = i - lo;
            if !dense {
                if plan.is_none() && cur_cw[j].is_empty() && cur_ccw[j].is_empty() {
                    let quiet = t < quiet_until[j] || {
                        match nodes[j].quiescence(t) {
                            Some(q) if q.backlog == 0 && q.span >= 1 => {
                                quiet_until[j] = t.saturating_add(q.span);
                                true
                            }
                            _ => false,
                        }
                    };
                    if quiet {
                        quiet_debt[j] += 1;
                        quiet_nodes += 1;
                        if partial.obs.is_some() {
                            let pending = nodes[j].pending_work();
                            sample.max_pending = sample.max_pending.max(pending);
                            sample.total_pending += pending;
                        }
                        continue;
                    }
                }
                quiet_until[j] = 0;
                if quiet_debt[j] > 0 {
                    nodes[j].fast_forward(std::mem::take(&mut quiet_debt[j]));
                }
            }
            let ctx = NodeCtx { id: i, t, topo };
            let delivered = if partial.obs.is_some() {
                if units_on {
                    units_cur_cw[j] + units_cur_ccw[j]
                } else {
                    payload_of(&cur_cw[j]) + payload_of(&cur_ccw[j])
                }
            } else {
                0
            };
            let (cur_a, cur_b) = split_two(cur_cw, cur_ccw, j);
            let internal_cw = i + 1 < hi;
            let internal_ccw = i > lo;
            let to_cw: &mut Vec<N::Msg> = if internal_cw {
                &mut next_cw[j + 1]
            } else {
                &mut *out_cw_boundary
            };
            let to_ccw: &mut Vec<N::Msg> = if internal_ccw {
                &mut next_ccw[j - 1]
            } else {
                &mut *out_ccw_boundary
            };
            let faults = plan.map(|plan| FaultLinks {
                plan,
                queue_cw: &mut queue_cw[j],
                queue_ccw: &mut queue_ccw[j],
                stage_cw: &mut *stage_cw,
                stage_ccw: &mut *stage_ccw,
            });
            let (step, dep_cw, dep_ccw) = match step_node_and_links(
                &mut nodes[j],
                &ctx,
                cur_a,
                cur_b,
                to_cw,
                to_ccw,
                config.link_capacity,
                record.then_some(&mut *audit_buf),
                faults,
            ) {
                Ok(out) => out,
                Err(err) => {
                    merge_flag(flagged, (t, i, err));
                    local_error = true;
                    break;
                }
            };
            round_departed += dep_cw.messages + dep_ccw.messages;
            if units_on {
                // Lossless links (no plan), so the departure payload is
                // exactly what landed in the destination cell.
                if internal_cw {
                    units_next_cw[j + 1] += dep_cw.payload;
                }
                if internal_ccw {
                    units_next_ccw[j - 1] += dep_ccw.payload;
                }
            }
            if record {
                for rec in audit_buf.drain(..) {
                    partial.events.push(Event::DroppedOff {
                        t,
                        node: i,
                        bucket: rec.bucket,
                        units: rec.int,
                        frac_bits: rec.frac.to_bits(),
                        cum_drop_frac_bits: rec.cum_drop_frac.to_bits(),
                        cum_accept_frac_bits: rec.cum_accept_frac.to_bits(),
                        p_max_bucket: rec.p_max_bucket,
                        p_max_node: rec.p_max_node,
                        kind: rec.kind,
                    });
                }
            }
            if step.work_done > 0 {
                partial.processed_per_node[j] += step.work_done;
                partial.busy_steps_per_node[j] += 1;
                partial.last_busy = Some(t);
                round_work += step.work_done;
                busy_nodes += 1;
                frame.work.push((j as u32, step.work_done));
                if record {
                    partial.events.push(Event::Processed {
                        t,
                        node: i,
                        units: step.work_done,
                    });
                }
            }
            for (dir, dep) in [(Direction::Cw, dep_cw), (Direction::Ccw, dep_ccw)] {
                partial.messages_dropped += dep.dropped;
                partial.messages_delayed += dep.delayed;
                partial.messages_retried += dep.retried;
                sample.link_dropped += dep.dropped;
                sample.link_delayed += dep.delayed;
                sample.link_retried += dep.retried;
                if dep.messages == 0 {
                    continue;
                }
                partial.messages_sent += dep.messages;
                partial.job_hops += dep.payload;
                round_sent_payload += dep.payload;
                if record {
                    partial.events.push(Event::Sent {
                        t,
                        node: i,
                        dir,
                        job_units: dep.payload,
                    });
                }
            }
            if let Some(o) = partial.obs.as_mut() {
                o.record_sends(
                    j,
                    dep_cw.messages,
                    dep_cw.payload,
                    dep_ccw.messages,
                    dep_ccw.payload,
                );
                let dropped = delivered.saturating_sub(step.sent_payload());
                o.dropoffs_per_node[j] += dropped;
                if dep_cw.messages > 0 || dep_ccw.messages > 0 || dropped > 0 {
                    frame.sends.push((
                        j as u32,
                        dep_cw.messages,
                        dep_cw.payload,
                        dep_ccw.messages,
                        dep_ccw.payload,
                        dropped,
                    ));
                }
                let pending = nodes[j].pending_work();
                sample.delivered_payload += delivered;
                sample.sent_payload += dep_cw.payload + dep_ccw.payload;
                sample.messages += dep_cw.messages + dep_ccw.messages;
                sample.processed += step.work_done;
                sample.dropped_off += dropped;
                sample.max_pending = sample.max_pending.max(pending);
                sample.total_pending += pending;
            }
        }
        // A fully quiet range arms the bulk skip: every node just promised
        // an inert span given empty inboxes, nothing was sent, and the
        // arenas are empty — so until the earliest promise expires or a
        // boundary drain delivers content, each following round is this
        // round, byte for byte.
        if quiet_nodes == len {
            *asleep_until = quiet_until.iter().copied().min().unwrap_or(0);
            *asleep_pending = (sample.max_pending, sample.total_pending);
        }
        partial.sent_payload_per_round.push(round_sent_payload);
        *arc_prev_departed = round_departed;
        if let Some(o) = partial.obs.as_mut() {
            o.samples.push(sample);
        }
        round_processed.push(round_work);
        *busy_last_round = busy_nodes;

        if local_error {
            out_cw.abandon();
            out_ccw.abandon();
            return true;
        }
        out_cw.publish(t, out_cw_boundary);
        out_ccw.publish(t, out_ccw_boundary);
        false
    }

    /// Disjoint `&mut` borrows of `cw[j]` and `ccw[j]` (two different
    /// containers; written as a helper so the call site stays readable).
    fn split_two<'s, M>(
        cw: &'s mut [Vec<M>],
        ccw: &'s mut [Vec<M>],
        j: usize,
    ) -> (&'s mut Vec<M>, &'s mut Vec<M>) {
        (&mut cw[j], &mut ccw[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that just grinds through its local pile of unit jobs.
    struct LocalOnly {
        remaining: u64,
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    /// A node that forwards all its jobs one hop clockwise each step and
    /// never processes — used to test the step budget.
    struct HotPotato {
        holding: u64,
    }

    #[derive(Debug, Clone)]
    struct Potato(u64);

    impl Payload for Potato {
        fn job_units(&self) -> u64 {
            self.0
        }
    }

    impl Node for HotPotato {
        type Msg = Potato;

        fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, Potato>) -> u64 {
            for p in io.inbox.from_ccw.drain(..) {
                self.holding += p.0;
            }
            if self.holding > 0 {
                io.out.push(Direction::Cw, Potato(self.holding));
                self.holding = 0;
            }
            0
        }

        fn pending_work(&self) -> u64 {
            self.holding
        }
    }

    #[test]
    fn local_only_makespan_is_max_load() {
        let nodes = vec![
            LocalOnly { remaining: 3 },
            LocalOnly { remaining: 7 },
            LocalOnly { remaining: 0 },
        ];
        let report = Engine::new(nodes, 10, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 7);
        assert_eq!(report.metrics.total_processed(), 10);
        assert_eq!(report.metrics.processed_per_node, vec![3, 7, 0]);
        assert_eq!(report.metrics.messages_sent, 0);
    }

    #[test]
    fn empty_instance_has_zero_makespan() {
        let nodes = vec![LocalOnly { remaining: 0 }, LocalOnly { remaining: 0 }];
        let report = Engine::new(nodes, 0, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 0);
        assert_eq!(report.metrics.steps, 0);
    }

    #[test]
    fn non_terminating_policy_hits_step_budget() {
        let nodes = vec![HotPotato { holding: 5 }, HotPotato { holding: 0 }];
        let config = EngineConfig {
            max_steps: Some(50),
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 5, config).run().unwrap_err();
        assert!(matches!(err, SimError::ExceededMaxSteps { .. }));
    }

    /// A courier chain: node 0 hands a 5-unit parcel clockwise; nodes 1 and
    /// 2 relay it; node 3 keeps it and processes it. The parcel makes
    /// exactly 3 hops carrying 5 units, so `job_hops` — payload × hops, the
    /// paper's total communication cost — must be 15, from 3 messages.
    struct Courier {
        emit_at_start: bool,
        sink: bool,
        backlog: u64,
    }

    #[derive(Debug, Clone)]
    struct Parcel(u64);

    impl Payload for Parcel {
        fn job_units(&self) -> u64 {
            self.0
        }
    }

    impl Node for Courier {
        type Msg = Parcel;

        fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, Parcel>) -> u64 {
            if self.emit_at_start {
                self.emit_at_start = false;
                let units = std::mem::take(&mut self.backlog);
                io.out.push(Direction::Cw, Parcel(units));
                return 0;
            }
            for p in io.inbox.from_ccw.drain(..) {
                if self.sink {
                    self.backlog += p.0;
                } else {
                    io.out.push(Direction::Cw, p);
                }
            }
            if self.backlog > 0 {
                self.backlog -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.backlog
        }
    }

    #[test]
    fn job_hops_count_payload_times_hops() {
        let nodes: Vec<Courier> = (0..6)
            .map(|i| Courier {
                emit_at_start: i == 0,
                sink: i == 3,
                backlog: if i == 0 { 5 } else { 0 },
            })
            .collect();
        let report = Engine::new(nodes, 5, EngineConfig::default())
            .run()
            .unwrap();
        // Hops at t = 0, 1, 2; arrival at node 3 at t = 3; five units
        // processed during steps 3..=7.
        assert_eq!(report.metrics.messages_sent, 3);
        assert_eq!(report.metrics.job_hops, 5 * 3);
        assert_eq!(report.metrics.peak_inflight_jobs, 5);
        assert_eq!(report.makespan, 8);
        assert_eq!(report.metrics.processed_per_node, vec![0, 0, 0, 5, 0, 0]);
    }

    #[test]
    fn unit_capacity_rejects_bulk_sends() {
        let nodes = vec![HotPotato { holding: 2 }, HotPotato { holding: 0 }];
        let config = EngineConfig {
            link_capacity: LinkCapacity::UnitJobs,
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 2, config).run().unwrap_err();
        assert!(matches!(
            err,
            SimError::LinkCapacityExceeded { job_units: 2, .. }
        ));
    }

    /// A node that lies about its processing rate.
    struct Cheater;

    impl Node for Cheater {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            2
        }

        fn pending_work(&self) -> u64 {
            0
        }
    }

    #[test]
    fn overwork_is_rejected() {
        let err = Engine::new(vec![Cheater], 2, EngineConfig::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Overwork { units: 2, .. }));
    }

    #[test]
    fn trace_records_processing_events() {
        let nodes = vec![LocalOnly { remaining: 2 }];
        let config = EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, 2, config).run().unwrap();
        assert_eq!(report.trace.total_processed(), 2);
        assert_eq!(report.trace.events().len(), 2);
    }

    #[test]
    fn observability_series_track_backlog_and_flow() {
        let nodes: Vec<Courier> = (0..6)
            .map(|i| Courier {
                emit_at_start: i == 0,
                sink: i == 3,
                backlog: if i == 0 { 5 } else { 0 },
            })
            .collect();
        let config = EngineConfig {
            observe: true,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, 5, config).run().unwrap();
        let obs = report.observability.expect("observe was on");
        assert_eq!(obs.samples.len(), report.metrics.steps as usize);
        // While the parcel is in flight no node holds work; once the sink
        // keeps it, the end-of-step backlog series records 4, 3, 2, 1, 0
        // (pending is sampled after the step's unit of work is done).
        assert_eq!(
            obs.inflight_series(),
            vec![5, 5, 5, 0, 0, 0, 0, 0],
            "payload is in flight during the three hop rounds"
        );
        assert_eq!(obs.samples[3].dropped_off, 5, "the sink kept the parcel");
        assert_eq!(obs.samples[3].max_pending, 4);
        assert_eq!(obs.samples[7].max_pending, 0);
        assert_eq!(obs.dropoffs_per_node, vec![0, 0, 0, 5, 0, 0]);
        // Links 0, 1, 2 each carried one clockwise message; nothing else.
        assert_eq!(obs.links.cw_messages, vec![1, 1, 1, 0, 0, 0]);
        assert_eq!(obs.links.ccw_messages, vec![0; 6]);
        let json = obs.to_json();
        assert!(json.contains("\"num_processors\":6"));
    }

    #[test]
    fn run_is_zero_alloc_in_steady_state_for_bounded_traffic() {
        // Not a real allocation counter (no custom allocator offline), but
        // the structural property it relies on: arena vectors keep their
        // capacity across rounds, so capacity stops growing once traffic
        // peaks. Exercised indirectly by a long potato run within budget.
        let nodes = vec![
            HotPotato { holding: 3 },
            HotPotato { holding: 0 },
            HotPotato { holding: 0 },
        ];
        let config = EngineConfig {
            max_steps: Some(10_000),
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 3, config).run().unwrap_err();
        match err {
            SimError::ExceededMaxSteps { processed, .. } => assert_eq!(processed, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use crate::topology::Direction;

    /// A relay ring: node 0 emits one token clockwise at t=0; every node
    /// forwards tokens onward and the designated sink consumes them. Used
    /// to pin down exact delivery timing in both directions (and reused by
    /// the `par_tests` module as the run/par_run comparison fixture).
    pub(super) struct Relay {
        pub(super) emit_at_start: bool,
        pub(super) sink: bool,
        pub(super) dir: Direction,
        pub(super) held: u64,
    }

    #[derive(Debug, Clone)]
    pub(super) struct Token;

    impl Payload for Token {
        fn job_units(&self) -> u64 {
            1
        }
    }

    impl Persist for Token {
        fn save(&self, _enc: &mut Encoder) {}

        fn load(_dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
            Ok(Token)
        }
    }

    impl Node for Relay {
        type Msg = Token;

        fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, Token>) -> u64 {
            let incoming = io.inbox.from_ccw.len() + io.inbox.from_cw.len();
            io.inbox.from_ccw.clear();
            io.inbox.from_cw.clear();
            self.held += incoming as u64;
            let mut work_done = 0;
            if self.emit_at_start {
                self.emit_at_start = false;
                io.out.push(self.dir, Token);
                self.held -= 1;
            } else if self.held > 0 {
                if self.sink {
                    self.held -= 1;
                    work_done = 1;
                } else {
                    io.out.push(self.dir, Token);
                    self.held -= 1;
                }
            }
            work_done
        }

        fn pending_work(&self) -> u64 {
            self.held
        }

        // `sink` and `dir` are topology configuration, rebuilt on restore.
        fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
            enc.bool(self.emit_at_start);
            enc.u64(self.held);
            Ok(())
        }

        fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
            self.emit_at_start = dec.bool()?;
            self.held = dec.u64()?;
            Ok(())
        }
    }

    pub(super) fn relay_ring(m: usize, sink: usize, dir: Direction) -> Vec<Relay> {
        (0..m)
            .map(|i| Relay {
                emit_at_start: i == 0,
                sink: i == sink,
                dir,
                held: u64::from(i == 0),
            })
            .collect()
    }

    #[test]
    fn clockwise_token_arrives_after_exactly_d_steps() {
        // Token leaves node 0 at t=0, reaches node 3 at t=3, is consumed
        // during step 3 -> makespan 4.
        let nodes = relay_ring(6, 3, Direction::Cw);
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 4);
    }

    #[test]
    fn counterclockwise_token_timing_matches() {
        // Counterclockwise from 0 to node 4 of a 6-ring is 2 hops.
        let nodes = relay_ring(6, 4, Direction::Ccw);
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 3);
    }

    #[test]
    fn token_laps_the_ring_if_nobody_sinks_itself() {
        // Node 0 is both emitter and sink: `emit_at_start` forces the token
        // out clockwise at t=0 (the emit branch runs before the sink
        // branch), so it is consumed only on return — after all m hops.
        let m = 5;
        let nodes = relay_ring(m, 0, Direction::Cw);
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, m as u64 + 1);
        assert_eq!(report.metrics.job_hops, m as u64, "one full lap");
        assert_eq!(report.metrics.messages_sent, m as u64);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::delivery_tests::relay_ring;
    use super::*;
    use crate::fault::{LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};

    fn full_config(plan: FaultPlan) -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            faults: Some(plan),
            ..EngineConfig::default()
        }
    }

    /// Baseline: relay_ring(6, 3, Cw) delivers the token to node 3 at t=3
    /// and finishes with makespan 4 (pinned by `delivery_tests`).
    const BASE_MAKESPAN: u64 = 4;

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let no_plan = EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            ..EngineConfig::default()
        };
        let a = Engine::new(relay_ring(6, 3, Direction::Cw), 1, no_plan)
            .run()
            .unwrap();
        let b = Engine::new(
            relay_ring(6, 3, Direction::Cw),
            1,
            full_config(FaultPlan::new()),
        )
        .run()
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(b.metrics.messages_dropped, 0);
        assert_eq!(b.metrics.messages_delayed, 0);
        assert_eq!(b.metrics.messages_retried, 0);
    }

    #[test]
    fn dropped_link_holds_the_token_until_it_heals() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 0,
            dir: Direction::Cw,
            from: 0,
            until: 2,
            kind: LinkFaultKind::Drop,
        });
        let report = Engine::new(relay_ring(6, 3, Direction::Cw), 1, full_config(plan))
            .run()
            .unwrap();
        // Refused at t = 0 and 1, departs at t = 2: two steps late.
        assert_eq!(report.makespan, BASE_MAKESPAN + 2);
        assert_eq!(report.metrics.messages_dropped, 2);
        assert_eq!(report.metrics.messages_retried, 1);
        let obs = report.observability.expect("observe was on");
        assert_eq!(obs.fault_series()[0], (1, 0, 0));
        assert_eq!(obs.fault_series()[1], (1, 0, 0));
        // The retry is booked at the step the message finally departs.
        assert_eq!(obs.fault_series()[2], (0, 0, 1));
    }

    #[test]
    fn delay_epoch_postpones_departure_without_retries() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 0,
            dir: Direction::Cw,
            from: 0,
            until: 1,
            kind: LinkFaultKind::Delay(3),
        });
        let report = Engine::new(relay_ring(6, 3, Direction::Cw), 1, full_config(plan))
            .run()
            .unwrap();
        assert_eq!(report.makespan, BASE_MAKESPAN + 3);
        assert_eq!(report.metrics.messages_dropped, 0);
        assert_eq!(report.metrics.messages_delayed, 3);
        // Never *attempted* early — the delay is known, not a failure.
        assert_eq!(report.metrics.messages_retried, 0);
    }

    #[test]
    fn bandwidth_cap_blocks_and_then_retries() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 0,
            dir: Direction::Cw,
            from: 0,
            until: 2,
            kind: LinkFaultKind::Bandwidth(0),
        });
        let report = Engine::new(relay_ring(6, 3, Direction::Cw), 1, full_config(plan))
            .run()
            .unwrap();
        assert_eq!(report.makespan, BASE_MAKESPAN + 2);
        assert_eq!(report.metrics.messages_delayed, 2);
        assert_eq!(report.metrics.messages_retried, 1);
    }

    #[test]
    fn stalled_processor_defers_its_work() {
        let mut plan = FaultPlan::new();
        plan.add_proc_fault(ProcFault {
            node: 3,
            from: 0,
            until: 6,
            kind: ProcFaultKind::Stall,
        });
        let report = Engine::new(relay_ring(6, 3, Direction::Cw), 1, full_config(plan))
            .run()
            .unwrap();
        // The token reaches node 3 at t = 3 but sits in its carried-over
        // inbox until the stall lifts at t = 6.
        assert_eq!(report.makespan, 7);
        assert_eq!(report.metrics.processed_per_node[3], 1);
    }

    #[test]
    fn par_run_matches_run_bit_for_bit_under_faults() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 1,
            dir: Direction::Cw,
            from: 1,
            until: 4,
            kind: LinkFaultKind::Drop,
        });
        plan.add_link_fault(LinkFault {
            node: 5,
            dir: Direction::Ccw,
            from: 0,
            until: 3,
            kind: LinkFaultKind::Delay(2),
        });
        plan.add_proc_fault(ProcFault {
            node: 4,
            from: 2,
            until: 9,
            kind: ProcFaultKind::Slowdown(2),
        });
        for dir in [Direction::Cw, Direction::Ccw] {
            let seq = Engine::new(relay_ring(8, 5, dir), 1, full_config(plan.clone()))
                .run()
                .unwrap();
            for shards in [2, 3, 5, 8] {
                let par = Engine::new(relay_ring(8, 5, dir), 1, full_config(plan.clone()))
                    .par_run(shards)
                    .unwrap();
                assert_eq!(seq, par, "dir={dir:?} shards={shards}");
            }
        }
    }

    #[test]
    fn fault_budget_widens_with_the_horizon() {
        // A stall longer than the fault-free default budget must not abort
        // the run: the derived budget accounts for the plan's horizon.
        let mut plan = FaultPlan::new();
        let long = 4 * (1 + 6) + 64 + 10; // beyond the fault-free default
        plan.add_proc_fault(ProcFault {
            node: 3,
            from: 0,
            until: long,
            kind: ProcFaultKind::Stall,
        });
        let report = Engine::new(relay_ring(6, 3, Direction::Cw), 1, full_config(plan))
            .run()
            .unwrap();
        assert_eq!(report.makespan, long + 1);
    }
}

#[cfg(test)]
mod par_tests {
    use super::delivery_tests::relay_ring;
    use super::*;

    fn full_config() -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn par_run_matches_run_bit_for_bit_on_relay_rings() {
        for m in [1usize, 2, 3, 5, 8, 17] {
            for dir in [Direction::Cw, Direction::Ccw] {
                let sink = (2 * m) / 3;
                let seq = Engine::new(relay_ring(m, sink, dir), 1, full_config())
                    .run()
                    .unwrap();
                for shards in [1usize, 2, 3, 4, m] {
                    let par = Engine::new(relay_ring(m, sink, dir), 1, full_config())
                        .par_run(shards)
                        .unwrap();
                    assert_eq!(seq, par, "m={m} dir={dir:?} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn par_run_clamps_shards_to_ring_size() {
        let seq = Engine::new(relay_ring(3, 1, Direction::Cw), 1, full_config())
            .run()
            .unwrap();
        let par = Engine::new(relay_ring(3, 1, Direction::Cw), 1, full_config())
            .par_run(64)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_run_reports_the_same_budget_error() {
        // Nobody ever sinks: both executors must blow the same step budget
        // having processed nothing.
        let mk = || {
            let mut nodes = relay_ring(4, 0, Direction::Cw);
            for n in &mut nodes {
                n.sink = false;
            }
            nodes
        };
        let config = EngineConfig {
            max_steps: Some(40),
            ..EngineConfig::default()
        };
        let seq = Engine::new(mk(), 1, config.clone()).run().unwrap_err();
        let par = Engine::new(mk(), 1, config).par_run(2).unwrap_err();
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::delivery_tests::{relay_ring, Relay};
    use super::*;
    use crate::fault::{LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};
    use std::sync::{Arc, Mutex};

    fn full_config() -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            ..EngineConfig::default()
        }
    }

    /// Installs a capturing sink and returns the shared snapshot log.
    fn capture(engine: &mut Engine<Relay>) -> Arc<Mutex<Vec<Snapshot>>> {
        let snaps = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&snaps);
        engine.on_checkpoint(move |s| {
            log.lock().unwrap().push(s.clone());
            Ok(())
        });
        snaps
    }

    #[test]
    fn checkpointing_does_not_change_the_report() {
        let base = Engine::new(relay_ring(8, 5, Direction::Cw), 1, full_config())
            .run()
            .unwrap();
        for every in [1, 2, 3, 7] {
            let mut engine = Engine::new(
                relay_ring(8, 5, Direction::Cw),
                1,
                full_config().checkpoint_every(every),
            );
            let snaps = capture(&mut engine);
            assert_eq!(base, engine.run().unwrap(), "every={every}");
            // A cadence beyond the makespan legitimately never fires.
            if every < base.makespan {
                assert!(!snaps.lock().unwrap().is_empty(), "every={every}");
            }
        }
    }

    #[test]
    fn resume_from_every_boundary_is_bit_identical() {
        let base = Engine::new(relay_ring(8, 5, Direction::Cw), 1, full_config())
            .run()
            .unwrap();
        let mut engine = Engine::new(
            relay_ring(8, 5, Direction::Cw),
            1,
            full_config().checkpoint_every(2),
        );
        let snaps = capture(&mut engine);
        assert_eq!(base, engine.run().unwrap());
        let snaps = snaps.lock().unwrap();
        assert!(snaps.len() >= 2, "expected several boundaries");
        for snap in snaps.iter() {
            // A snapshot round-trips through bytes before resuming, like a
            // real recovery would.
            let bytes = snap.to_bytes();
            let snap = Snapshot::from_bytes(&bytes).unwrap();
            let resumed = Engine::resume(relay_ring(8, 5, Direction::Cw), full_config(), &snap)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(base, resumed, "resumed from t={}", snap.t);
        }
    }

    #[test]
    fn resume_is_bit_identical_under_faults() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 1,
            dir: Direction::Cw,
            from: 1,
            until: 5,
            kind: LinkFaultKind::Drop,
        });
        plan.add_link_fault(LinkFault {
            node: 6,
            dir: Direction::Ccw,
            from: 0,
            until: 4,
            kind: LinkFaultKind::Delay(2),
        });
        plan.add_proc_fault(ProcFault {
            node: 4,
            from: 2,
            until: 9,
            kind: ProcFaultKind::Slowdown(2),
        });
        let faulty = || EngineConfig {
            faults: Some(plan.clone()),
            ..full_config()
        };
        let base = Engine::new(relay_ring(8, 5, Direction::Cw), 1, faulty())
            .run()
            .unwrap();
        let mut engine = Engine::new(
            relay_ring(8, 5, Direction::Cw),
            1,
            faulty().checkpoint_every(3),
        );
        let snaps = capture(&mut engine);
        assert_eq!(base, engine.run().unwrap());
        for snap in snaps.lock().unwrap().iter() {
            // The snapshot carries the fault plan and staged queues itself;
            // resume with a fault-free config to prove they are restored.
            let resumed = Engine::resume(relay_ring(8, 5, Direction::Cw), full_config(), snap)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(base, resumed, "resumed from t={}", snap.t);
        }
    }

    #[test]
    fn par_checkpoints_are_identical_to_sequential_ones() {
        let mut seq_engine = Engine::new(
            relay_ring(9, 6, Direction::Cw),
            1,
            full_config().checkpoint_every(2),
        );
        let seq_snaps = capture(&mut seq_engine);
        let base = seq_engine.run().unwrap();
        for shards in [1usize, 2, 3, 7] {
            let mut par_engine = Engine::new(
                relay_ring(9, 6, Direction::Cw),
                1,
                full_config().checkpoint_every(2),
            );
            let par_snaps = capture(&mut par_engine);
            assert_eq!(base, par_engine.par_run(shards).unwrap(), "shards={shards}");
            assert_eq!(
                *seq_snaps.lock().unwrap(),
                *par_snaps.lock().unwrap(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn resume_shard_count_is_independent_of_save_shard_count() {
        let base = Engine::new(relay_ring(9, 6, Direction::Cw), 1, full_config())
            .run()
            .unwrap();
        let mut engine = Engine::new(
            relay_ring(9, 6, Direction::Cw),
            1,
            full_config().checkpoint_every(3),
        );
        let snaps = capture(&mut engine);
        assert_eq!(base, engine.par_run(3).unwrap());
        let snaps = snaps.lock().unwrap();
        assert!(!snaps.is_empty());
        for snap in snaps.iter() {
            for shards in [1usize, 2, 7] {
                let resumed = Engine::resume(relay_ring(9, 6, Direction::Cw), full_config(), snap)
                    .unwrap()
                    .par_run(shards)
                    .unwrap();
                assert_eq!(base, resumed, "t={} shards={shards}", snap.t);
            }
            let resumed = Engine::resume(relay_ring(9, 6, Direction::Cw), full_config(), snap)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(base, resumed, "t={} sequential", snap.t);
        }
    }

    #[test]
    fn resume_rejects_mismatched_ring_size() {
        let mut engine = Engine::new(
            relay_ring(8, 5, Direction::Cw),
            1,
            full_config().checkpoint_every(2),
        );
        let snaps = capture(&mut engine);
        engine.run().unwrap();
        let snap = snaps.lock().unwrap()[0].clone();
        let err = match Engine::resume(relay_ring(6, 3, Direction::Cw), full_config(), &snap) {
            Err(err) => err,
            Ok(_) => panic!("resume accepted a mismatched ring size"),
        };
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err:?}");
    }

    #[test]
    fn sink_errors_surface_as_checkpoint_sim_errors() {
        let mk = || {
            Engine::new(
                relay_ring(8, 5, Direction::Cw),
                1,
                full_config().checkpoint_every(2),
            )
        };
        let mut seq = mk();
        seq.on_checkpoint(|_| Err(CheckpointError::Io("disk full".into())));
        let err = seq.run().unwrap_err();
        match &err {
            SimError::Checkpoint { step, error } => {
                assert_eq!(*step, 2);
                assert_eq!(*error, CheckpointError::Io("disk full".into()));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let mut par = mk();
        par.on_checkpoint(|_| Err(CheckpointError::Io("disk full".into())));
        let par_err = par.par_run(3).unwrap_err();
        assert_eq!(format!("{err:?}"), format!("{par_err:?}"));
    }
}
