//! The synchronous ring execution engine.
//!
//! The engine owns one [`Node`] per processor and advances global time in
//! lock-step rounds. In round `t` every node, in parallel (simulated
//! sequentially but with strictly round-delayed message delivery, so node
//! evaluation order is unobservable):
//!
//! 1. receives the messages its two neighbors sent in round `t - 1`,
//! 2. performs one step of its local policy, possibly processing one unit of
//!    work and emitting messages to either neighbor.
//!
//! This is exactly the machine model of §2 of the paper: "In one unit of
//! time … each processor can receive some jobs from each neighbor, send some
//! jobs to each neighbor, and process one unit of work. If a processor sends
//! a job to a neighbor at time t, the neighbor receives the job at time
//! t + 1."
//!
//! The engine enforces the model: it errors if a node processes more than
//! one unit per step, and (with [`LinkCapacity::UnitJobs`], the §7 model) if
//! a node sends more than one job or more than two messages over one link in
//! one step. It also verifies global work conservation at termination.

use crate::error::SimError;
use crate::metrics::Metrics;
use crate::topology::{Direction, RingTopology};
use crate::trace::{Event, Trace, TraceLevel};

/// Anything that can travel over a ring link.
///
/// The engine only needs to know how much *job payload* a message carries so
/// that it can meter link capacity and detect quiescence; the contents are
/// otherwise opaque policy data.
pub trait Payload {
    /// Units of job payload carried by this message (0 for pure control
    /// messages such as the load announcements of the §7 algorithm).
    fn job_units(&self) -> u64;
}

/// Messages produced by a node in one step, by outgoing direction.
#[derive(Debug, Clone)]
pub struct Outbox<M> {
    /// Messages to the clockwise neighbor (`i + 1`).
    pub cw: Vec<M>,
    /// Messages to the counterclockwise neighbor (`i - 1`).
    pub ccw: Vec<M>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            cw: Vec::new(),
            ccw: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// An outbox with no messages.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Appends a message in the given direction.
    pub fn push(&mut self, dir: Direction, msg: M) {
        match dir {
            Direction::Cw => self.cw.push(msg),
            Direction::Ccw => self.ccw.push(msg),
        }
    }

    /// True iff no messages are queued in either direction.
    pub fn is_empty(&self) -> bool {
        self.cw.is_empty() && self.ccw.is_empty()
    }
}

/// Messages delivered to a node at the start of a step, by the side they
/// arrived from.
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    /// Messages from the counterclockwise neighbor (`i - 1`), i.e. messages
    /// that were travelling clockwise.
    pub from_ccw: Vec<M>,
    /// Messages from the clockwise neighbor (`i + 1`), i.e. messages that
    /// were travelling counterclockwise.
    pub from_cw: Vec<M>,
}

impl<M> Inbox<M> {
    /// An inbox with no messages (what every node sees at `t = 0`).
    pub fn empty() -> Self {
        Inbox {
            from_ccw: Vec::new(),
            from_cw: Vec::new(),
        }
    }

    /// True iff nothing arrived this step.
    pub fn is_empty(&self) -> bool {
        self.from_ccw.is_empty() && self.from_cw.is_empty()
    }
}

/// What a node did in one step.
#[derive(Debug, Clone)]
pub struct StepOutcome<M> {
    /// Messages to send (delivered to the neighbors at `t + 1`).
    pub outbox: Outbox<M>,
    /// Units of work processed this step. The model allows at most 1.
    pub work_done: u64,
}

impl<M> StepOutcome<M> {
    /// An idle step: no messages, no processing.
    pub fn idle() -> Self {
        StepOutcome {
            outbox: Outbox::empty(),
            work_done: 0,
        }
    }
}

/// Read-only per-step context handed to a node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx {
    /// This node's processor index.
    pub id: usize,
    /// The current step (starts at 0).
    pub t: u64,
    /// The ring the node lives on. Policies may use `topo.len()` (the ring
    /// size is public knowledge in the paper's model — e.g. the wrap-around
    /// rule of Lemma 5 needs it) but get no access to other nodes' state.
    pub topo: RingTopology,
}

/// A scheduling policy running on one processor.
///
/// Implementations hold all of the processor's local state: resident jobs,
/// bookkeeping about buckets passing through, neighbor load estimates, etc.
/// They communicate only through the engine-delivered messages, which is
/// what makes the algorithms genuinely distributed.
pub trait Node {
    /// Link message type.
    type Msg: Payload;

    /// Executes one synchronous step: consume `inbox` (messages the
    /// neighbors sent in the previous step; empty at `t = 0`), optionally
    /// process one unit of resident work, and emit messages.
    fn on_step(&mut self, ctx: &NodeCtx, inbox: Inbox<Self::Msg>) -> StepOutcome<Self::Msg>;

    /// Units of unprocessed work currently resident on this node (not
    /// counting work in flight). Used only for diagnostics; termination is
    /// detected by global work conservation.
    fn pending_work(&self) -> u64;
}

/// Per-link-per-direction-per-step capacity constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkCapacity {
    /// No bound — the model of §2–§6 ("no bounds on the capacity of each
    /// network link", following Awerbuch–Kutten–Peleg).
    Unbounded,
    /// The §7 model: at most one job and one control message per link
    /// direction per step. The paper notes its Figure 1 algorithm briefly
    /// uses two messages per link per step and that this is "not hard to
    /// reduce to one"; we therefore allow at most 2 messages of which at
    /// most one carries job payload.
    UnitJobs,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard step budget; the run errors if exceeded. `None` derives a
    /// generous default from the instance (`4·(n + m) + 64`), which is far
    /// above any constant-factor-approximate schedule.
    pub max_steps: Option<u64>,
    /// Link model.
    pub link_capacity: LinkCapacity,
    /// Event recording level.
    pub trace: TraceLevel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_steps: None,
            link_capacity: LinkCapacity::Unbounded,
            trace: TraceLevel::Off,
        }
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Schedule length: the time at which the last unit of work finished
    /// processing (work processed during step `t` completes at `t + 1`).
    /// Zero for an empty instance.
    pub makespan: u64,
    /// Aggregate counters.
    pub metrics: Metrics,
    /// Event log (empty unless [`TraceLevel::Full`]).
    pub trace: Trace,
}

/// The synchronous executor.
pub struct Engine<N: Node> {
    topo: RingTopology,
    nodes: Vec<N>,
    total_work: u64,
    config: EngineConfig,
}

impl<N: Node> Engine<N> {
    /// Creates an engine over one node per processor.
    ///
    /// `total_work` is the number of work units the nodes collectively hold;
    /// the run terminates when exactly this much has been processed.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, total_work: u64, config: EngineConfig) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let topo = RingTopology::new(nodes.len());
        Engine {
            topo,
            nodes,
            total_work,
            config,
        }
    }

    /// Immutable access to the nodes (e.g. to inspect final policy state).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Consumes the engine, returning the nodes (typically called after
    /// [`Engine::run`] to harvest per-node policy statistics).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// Runs the simulation to completion.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        let m = self.topo.len();
        let max_steps = self
            .config
            .max_steps
            .unwrap_or_else(|| 4 * (self.total_work + m as u64) + 64);
        let mut metrics = Metrics::new(m);
        let mut trace = Trace::new(self.config.trace);

        if self.total_work == 0 {
            return Ok(RunReport {
                makespan: 0,
                metrics,
                trace,
            });
        }

        // Messages in flight, indexed by *receiving* node. `inflight_cw[i]`
        // holds clockwise-travelling messages that node `i` will receive
        // (sent by `i - 1` in the previous step).
        let mut inflight_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut inflight_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut next_cw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();
        let mut next_ccw: Vec<Vec<N::Msg>> = (0..m).map(|_| Vec::new()).collect();

        let mut processed_total: u64 = 0;
        let mut t: u64 = 0;
        loop {
            if t >= max_steps {
                return Err(SimError::ExceededMaxSteps {
                    max_steps,
                    processed: processed_total,
                    total: self.total_work,
                });
            }

            let mut inflight_payload: u64 = 0;
            for i in 0..m {
                let inbox = Inbox {
                    from_ccw: std::mem::take(&mut inflight_cw[i]),
                    from_cw: std::mem::take(&mut inflight_ccw[i]),
                };
                let ctx = NodeCtx {
                    id: i,
                    t,
                    topo: self.topo,
                };
                let outcome = self.nodes[i].on_step(&ctx, inbox);
                if outcome.work_done > 1 {
                    return Err(SimError::Overwork {
                        node: i,
                        step: t,
                        units: outcome.work_done,
                    });
                }
                if outcome.work_done > 0 {
                    processed_total += outcome.work_done;
                    metrics.processed_per_node[i] += outcome.work_done;
                    metrics.busy_steps_per_node[i] += 1;
                    metrics.last_busy_step = Some(t);
                    trace.record(Event::Processed {
                        t,
                        node: i,
                        units: outcome.work_done,
                    });
                }

                for (dir, msgs) in [
                    (Direction::Cw, outcome.outbox.cw),
                    (Direction::Ccw, outcome.outbox.ccw),
                ] {
                    if msgs.is_empty() {
                        continue;
                    }
                    let payload: u64 = msgs.iter().map(Payload::job_units).sum();
                    if self.config.link_capacity == LinkCapacity::UnitJobs
                        && (payload > 1 || msgs.len() > 2)
                    {
                        return Err(SimError::LinkCapacityExceeded {
                            node: i,
                            step: t,
                            job_units: payload,
                            messages: msgs.len(),
                        });
                    }
                    metrics.messages_sent += msgs.len() as u64;
                    metrics.job_hops += payload;
                    inflight_payload += payload;
                    trace.record(Event::Sent {
                        t,
                        node: i,
                        dir,
                        job_units: payload,
                    });
                    let dest = self.topo.neighbor(i, dir);
                    match dir {
                        Direction::Cw => next_cw[dest].extend(msgs),
                        Direction::Ccw => next_ccw[dest].extend(msgs),
                    }
                }
            }
            metrics.peak_inflight_jobs = metrics.peak_inflight_jobs.max(inflight_payload);

            std::mem::swap(&mut inflight_cw, &mut next_cw);
            std::mem::swap(&mut inflight_ccw, &mut next_ccw);
            // next_* now hold the (drained) previous inflight vectors.

            t += 1;
            metrics.steps = t;

            if processed_total > self.total_work {
                return Err(SimError::WorkMiscount {
                    processed: processed_total,
                    total: self.total_work,
                });
            }
            if processed_total == self.total_work {
                debug_assert!(
                    self.nodes.iter().all(|n| n.pending_work() == 0),
                    "all work processed but a node still reports pending work"
                );
                let makespan = metrics.last_busy_step.expect("work was processed") + 1;
                return Ok(RunReport {
                    makespan,
                    metrics,
                    trace,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that just grinds through its local pile of unit jobs.
    struct LocalOnly {
        remaining: u64,
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _inbox: Inbox<NoMsg>) -> StepOutcome<NoMsg> {
            if self.remaining > 0 {
                self.remaining -= 1;
                StepOutcome {
                    outbox: Outbox::empty(),
                    work_done: 1,
                }
            } else {
                StepOutcome::idle()
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    /// A node that forwards all its jobs one hop clockwise each step and
    /// never processes — used to test the step budget.
    struct HotPotato {
        holding: u64,
    }

    #[derive(Debug, Clone)]
    struct Potato(u64);

    impl Payload for Potato {
        fn job_units(&self) -> u64 {
            self.0
        }
    }

    impl Node for HotPotato {
        type Msg = Potato;

        fn on_step(&mut self, _ctx: &NodeCtx, inbox: Inbox<Potato>) -> StepOutcome<Potato> {
            for p in inbox.from_ccw {
                self.holding += p.0;
            }
            let mut outbox = Outbox::empty();
            if self.holding > 0 {
                outbox.push(Direction::Cw, Potato(self.holding));
                self.holding = 0;
            }
            StepOutcome {
                outbox,
                work_done: 0,
            }
        }

        fn pending_work(&self) -> u64 {
            self.holding
        }
    }

    #[test]
    fn local_only_makespan_is_max_load() {
        let nodes = vec![
            LocalOnly { remaining: 3 },
            LocalOnly { remaining: 7 },
            LocalOnly { remaining: 0 },
        ];
        let report = Engine::new(nodes, 10, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 7);
        assert_eq!(report.metrics.total_processed(), 10);
        assert_eq!(report.metrics.processed_per_node, vec![3, 7, 0]);
        assert_eq!(report.metrics.messages_sent, 0);
    }

    #[test]
    fn empty_instance_has_zero_makespan() {
        let nodes = vec![LocalOnly { remaining: 0 }, LocalOnly { remaining: 0 }];
        let report = Engine::new(nodes, 0, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 0);
        assert_eq!(report.metrics.steps, 0);
    }

    #[test]
    fn non_terminating_policy_hits_step_budget() {
        let nodes = vec![HotPotato { holding: 5 }, HotPotato { holding: 0 }];
        let config = EngineConfig {
            max_steps: Some(50),
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 5, config).run().unwrap_err();
        assert!(matches!(err, SimError::ExceededMaxSteps { .. }));
    }

    #[test]
    fn job_hops_count_payload_times_hops() {
        // 5 jobs circulating for 50 steps: one send of 5 units per step.
        let nodes = vec![HotPotato { holding: 5 }, HotPotato { holding: 0 }];
        let config = EngineConfig {
            max_steps: Some(50),
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 5, config).run().unwrap_err();
        // we only learn hops from metrics on success; this test just pins
        // down that the budget error reports no processing.
        match err {
            SimError::ExceededMaxSteps { processed, .. } => assert_eq!(processed, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unit_capacity_rejects_bulk_sends() {
        let nodes = vec![HotPotato { holding: 2 }, HotPotato { holding: 0 }];
        let config = EngineConfig {
            link_capacity: LinkCapacity::UnitJobs,
            ..EngineConfig::default()
        };
        let err = Engine::new(nodes, 2, config).run().unwrap_err();
        assert!(matches!(
            err,
            SimError::LinkCapacityExceeded { job_units: 2, .. }
        ));
    }

    /// A node that lies about its processing rate.
    struct Cheater;

    impl Node for Cheater {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _inbox: Inbox<NoMsg>) -> StepOutcome<NoMsg> {
            StepOutcome {
                outbox: Outbox::empty(),
                work_done: 2,
            }
        }

        fn pending_work(&self) -> u64 {
            0
        }
    }

    #[test]
    fn overwork_is_rejected() {
        let err = Engine::new(vec![Cheater], 2, EngineConfig::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Overwork { units: 2, .. }));
    }

    #[test]
    fn trace_records_processing_events() {
        let nodes = vec![LocalOnly { remaining: 2 }];
        let config = EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, 2, config).run().unwrap();
        assert_eq!(report.trace.total_processed(), 2);
        assert_eq!(report.trace.events().len(), 2);
    }
}

#[cfg(test)]
mod delivery_tests {
    use super::*;
    use crate::topology::Direction;

    /// A relay ring: node 0 emits one token clockwise at t=0; every node
    /// forwards tokens onward and the designated sink consumes them. Used
    /// to pin down exact delivery timing in both directions.
    struct Relay {
        emit_at_start: bool,
        sink: bool,
        dir: Direction,
        held: u64,
    }

    #[derive(Debug, Clone)]
    struct Token;

    impl Payload for Token {
        fn job_units(&self) -> u64 {
            1
        }
    }

    impl Node for Relay {
        type Msg = Token;

        fn on_step(&mut self, _ctx: &NodeCtx, inbox: Inbox<Token>) -> StepOutcome<Token> {
            let mut outbox = Outbox::empty();
            let incoming = inbox.from_ccw.len() + inbox.from_cw.len();
            self.held += incoming as u64;
            let mut work_done = 0;
            if self.emit_at_start {
                self.emit_at_start = false;
                outbox.push(self.dir, Token);
                self.held -= 1;
            } else if self.held > 0 {
                if self.sink {
                    self.held -= 1;
                    work_done = 1;
                } else {
                    outbox.push(self.dir, Token);
                    self.held -= 1;
                }
            }
            StepOutcome { outbox, work_done }
        }

        fn pending_work(&self) -> u64 {
            self.held
        }
    }

    fn relay_ring(m: usize, sink: usize, dir: Direction) -> Vec<Relay> {
        (0..m)
            .map(|i| Relay {
                emit_at_start: i == 0,
                sink: i == sink,
                dir,
                held: u64::from(i == 0),
            })
            .collect()
    }

    #[test]
    fn clockwise_token_arrives_after_exactly_d_steps() {
        // Token leaves node 0 at t=0, reaches node 3 at t=3, is consumed
        // during step 3 -> makespan 4.
        let nodes = relay_ring(6, 3, Direction::Cw);
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 4);
    }

    #[test]
    fn counterclockwise_token_timing_matches() {
        // Counterclockwise from 0 to node 4 of a 6-ring is 2 hops.
        let nodes = relay_ring(6, 4, Direction::Ccw);
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, 3);
    }

    #[test]
    fn token_laps_the_ring_if_nobody_sinks_itself() {
        // Sink at node 0: the token must travel all m hops.
        let m = 5;
        let mut nodes = relay_ring(m, 0, Direction::Cw);
        nodes[0].sink = false; // emit first...
        nodes[0].sink = true; // ...but consume on return
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(report.makespan, m as u64 + 1);
    }
}
