//! ASCII visualization of a run: per-processor backlog over time.
//!
//! Replays a [`crate::TraceLevel::Full`] trace (the same
//! replay the validator uses) and renders a character heatmap — time
//! flowing down, the ring left to right — so the "spreading diamond" of
//! work around a pile is directly visible in a terminal.

use crate::engine::RunReport;
use crate::instance::Instance;
use crate::topology::{Direction, RingTopology};
use crate::trace::{Event, TraceLevel};

/// Density glyphs from empty to saturated.
const GLYPHS: [char; 7] = [' ', '.', ':', '-', '=', '#', '@'];

/// Renders the per-step resident-work heatmap of a fully-traced run.
///
/// `max_cols`/`max_rows` bound the output size; wider rings and longer
/// runs are downsampled (max pooling, so hot spots stay visible). Returns
/// `None` if the run was not recorded with a full trace.
pub fn render_load_timeline(
    instance: &Instance,
    report: &RunReport,
    max_cols: usize,
    max_rows: usize,
) -> Option<String> {
    if !matches!(report.trace.level(), TraceLevel::Full) {
        return None;
    }
    let m = instance.num_processors();
    let topo = RingTopology::new(m);
    let steps = (report.makespan as usize).max(1);

    // Replay into per-step snapshots of resident work.
    let mut balance: Vec<i64> = instance.loads().iter().map(|&x| x as i64).collect();
    let mut arriving_next: Vec<i64> = vec![0; m];
    let mut snapshots: Vec<Vec<u64>> = Vec::with_capacity(steps);
    let mut events = report.trace.events().iter().peekable();

    for t in 0..steps as u64 {
        // Deliveries from the previous step land first.
        for (b, a) in balance.iter_mut().zip(arriving_next.iter_mut()) {
            *b += *a;
            *a = 0;
        }
        // Snapshot what is resident at the start of step t.
        snapshots.push(balance.iter().map(|&b| b.max(0) as u64).collect());
        while let Some(ev) = events.peek() {
            let et = match ev {
                Event::Processed { t, .. }
                | Event::Sent { t, .. }
                | Event::SentOn { t, .. }
                | Event::DroppedOff { t, .. } => *t,
            };
            if et != t {
                break;
            }
            match **ev {
                Event::Processed { node, units, .. } => balance[node] -= units as i64,
                Event::Sent {
                    node,
                    dir,
                    job_units,
                    ..
                } => {
                    balance[node] -= job_units as i64;
                    arriving_next[topo.neighbor(node, dir)] += job_units as i64;
                }
                // Fabric sends in a ring timeline: ports 0/1 are cw/ccw;
                // anything else cannot be placed on the ring and is shown
                // as departed work only.
                Event::SentOn {
                    node,
                    port,
                    job_units,
                    ..
                } => {
                    balance[node] -= job_units as i64;
                    if let Some(&dir) = Direction::BOTH.get(port) {
                        arriving_next[topo.neighbor(node, dir)] += job_units as i64;
                    }
                }
                // Drop-offs don't move resident work between nodes.
                Event::DroppedOff { .. } => {}
            }
            events.next();
        }
    }

    // Downsample with max pooling.
    let col_stride = m.div_ceil(max_cols.max(1));
    let row_stride = steps.div_ceil(max_rows.max(1));
    let peak = snapshots
        .iter()
        .flatten()
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);

    let mut out = String::new();
    out.push_str(&format!(
        "load over time: {} processors (→), {} steps (↓), peak {} jobs/cell\n",
        m, steps, peak
    ));
    for row_start in (0..steps).step_by(row_stride) {
        let mut line = String::with_capacity(m / col_stride + 12);
        for col_start in (0..m).step_by(col_stride) {
            let mut cell = 0u64;
            for snap in snapshots.iter().skip(row_start).take(row_stride) {
                for &v in snap.iter().skip(col_start).take(col_stride) {
                    cell = cell.max(v);
                }
            }
            let idx = if cell == 0 {
                0
            } else {
                // Log scale: small backlogs stay visible next to the pile.
                let l = ((cell as f64).ln() / (peak as f64).ln()).clamp(0.0, 1.0);
                1 + (l * (GLYPHS.len() - 2) as f64).round() as usize
            };
            line.push(GLYPHS[idx]);
        }
        out.push_str(&format!("t={:<6} |{}|\n", row_start, line));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Node, NodeCtx, Payload, StepIo};

    struct LocalOnly {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    fn traced_run(loads: Vec<u64>) -> (Instance, RunReport) {
        let inst = Instance::from_loads(loads.clone());
        let nodes: Vec<LocalOnly> = loads.iter().map(|&x| LocalOnly { remaining: x }).collect();
        let cfg = EngineConfig {
            trace: crate::trace::TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, inst.total_work(), cfg).run().unwrap();
        (inst, report)
    }

    #[test]
    fn untraced_run_returns_none() {
        let inst = Instance::from_loads(vec![1]);
        let nodes = vec![LocalOnly { remaining: 1 }];
        let report = Engine::new(nodes, 1, EngineConfig::default())
            .run()
            .unwrap();
        assert!(render_load_timeline(&inst, &report, 80, 24).is_none());
    }

    #[test]
    fn heatmap_has_one_row_per_sampled_step() {
        let (inst, report) = traced_run(vec![4, 0, 2]);
        let s = render_load_timeline(&inst, &report, 80, 100).unwrap();
        // header + 4 steps (makespan 4, stride 1)
        assert_eq!(s.lines().count(), 1 + 4);
        // The busiest processor shows the densest glyph somewhere.
        assert!(s.contains('@'));
    }

    #[test]
    fn downsampling_caps_output_size() {
        let (inst, report) = traced_run(vec![50; 40]);
        let s = render_load_timeline(&inst, &report, 10, 10).unwrap();
        assert!(s.lines().count() <= 11);
        for line in s.lines().skip(1) {
            let body = line.split('|').nth(1).unwrap();
            assert!(body.chars().count() <= 10);
        }
    }

    #[test]
    fn drained_timeline_ends_light() {
        let (inst, report) = traced_run(vec![6, 6]);
        let s = render_load_timeline(&inst, &report, 10, 100).unwrap();
        let last = s.lines().last().unwrap();
        // At the final step each processor has exactly 1 job left: lightest
        // non-empty glyph.
        assert!(last.contains('.'), "last row: {last}");
    }
}
