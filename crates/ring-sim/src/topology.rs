//! Ring topology re-exports.
//!
//! The ring's index arithmetic moved to the `ring-topology` crate when the
//! [`Topology`](ring_topology::Topology) trait landed (it is one of four
//! shapes the fabric engine runs on). The types are unchanged; this module
//! keeps `ring_sim::topology::{Direction, RingTopology}` and the crate
//! root re-exports working exactly as before.

pub use ring_topology::{Direction, RingTopology};
