//! Deterministic, seedable fault injection for engine runs.
//!
//! A [`FaultPlan`] is a *pure schedule* of degradations: every query is a
//! function of `(plan, node/link, step)` and nothing else, so the sequential
//! and the arc-parallel executors evaluate exactly the same faults and stay
//! bit-for-bit identical (asserted by the workspace equivalence proptests).
//!
//! Three fault families are modelled, all scoped to half-open step epochs
//! `[from, until)`:
//!
//! * **Link drops** — the directed link transmits nothing during the epoch;
//!   messages queue at the sender and are automatically re-offered every
//!   following step (the retry rule) until the link heals.
//! * **Link delays / bandwidth caps** — a message entering the link during
//!   a delay epoch departs no earlier than `push_step + d`; a bandwidth cap
//!   bounds the job payload departing per step (FIFO, head-of-line).
//! * **Processor stalls / slowdowns** — a stalled processor skips its step
//!   entirely (undelivered messages are carried over to its next step); a
//!   slowdown by factor `k` lets the processor run only every `k`-th step
//!   of the epoch.
//!
//! Plans come from three places: built programmatically ([`FaultPlan::new`]
//! plus the `add_*` methods), generated from a seed ([`FaultPlan::random`] —
//! an internal splitmix64, no external RNG dependency), or parsed from the
//! CLI spec grammar ([`FaultPlan::parse`]).

use crate::topology::Direction;
use serde::{Deserialize, Serialize};

/// What a link fault does during its epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link transmits nothing; eligible messages are counted as dropped
    /// and retried on following steps.
    Drop,
    /// Messages entering the link depart no earlier than `push + delay`
    /// steps after being pushed (0 is a no-op).
    Delay(u64),
    /// At most this much job payload departs per step (0 blocks every
    /// payload-carrying message; pure control messages still pass).
    Bandwidth(u64),
}

/// A fault on one directed link for one step epoch.
///
/// The link is identified by its *sending* node and direction, matching
/// [`crate::LinkStats`]: `(node, Cw)` is the link `node → node + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sending node of the directed link.
    pub node: usize,
    /// Direction of the directed link.
    pub dir: Direction,
    /// First step the fault is active.
    pub from: u64,
    /// First step the fault is no longer active (half-open epoch).
    pub until: u64,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

/// What a processor fault does during its epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcFaultKind {
    /// The processor skips its step entirely (no processing, no sends);
    /// messages addressed to it are deferred to its next step.
    Stall,
    /// The processor runs only every `k`-th step of the epoch (step `t`
    /// runs iff `(t - from) % k == 0`). `Slowdown(1)` is a no-op.
    Slowdown(u64),
}

/// A fault on one processor for one step epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcFault {
    /// Affected processor.
    pub node: usize,
    /// First step the fault is active.
    pub from: u64,
    /// First step the fault is no longer active (half-open epoch).
    pub until: u64,
    /// What the fault does.
    pub kind: ProcFaultKind,
}

/// A deterministic schedule of link and processor faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    proc_faults: Vec<ProcFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; runs behave exactly as without one).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a link fault.
    pub fn add_link_fault(&mut self, fault: LinkFault) -> &mut Self {
        self.link_faults.push(fault);
        self
    }

    /// Adds a processor fault.
    pub fn add_proc_fault(&mut self, fault: ProcFault) -> &mut Self {
        self.proc_faults.push(fault);
        self
    }

    /// The scheduled link faults.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The scheduled processor faults.
    pub fn proc_faults(&self) -> &[ProcFault] {
        &self.proc_faults
    }

    /// True iff the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.proc_faults.is_empty()
    }

    /// One past the last step any fault is active (0 for an empty plan).
    /// After this step the system is fault-free; the engine widens its
    /// default step budget by a multiple of this.
    pub fn horizon(&self) -> u64 {
        let link = self.link_faults.iter().map(|f| f.until).max().unwrap_or(0);
        let proc = self.proc_faults.iter().map(|f| f.until).max().unwrap_or(0);
        link.max(proc)
    }

    /// Whether processor `node` executes step `t` (false while stalled or
    /// in a skipped slowdown phase; all active faults must allow the step).
    pub fn node_runs(&self, node: usize, t: u64) -> bool {
        self.proc_faults
            .iter()
            .filter(|f| f.node == node && f.from <= t && t < f.until)
            .all(|f| match f.kind {
                ProcFaultKind::Stall => false,
                ProcFaultKind::Slowdown(k) => k <= 1 || (t - f.from) % k == 0,
            })
    }

    /// Whether the directed link `(node, dir)` is down (dropping) at step
    /// `t`.
    pub fn link_down(&self, node: usize, dir: Direction, t: u64) -> bool {
        self.active_link(node, dir, t)
            .any(|f| matches!(f.kind, LinkFaultKind::Drop))
    }

    /// The delay imposed on messages entering the link at step `t` (max of
    /// all active delay faults; 0 if none).
    pub fn link_delay(&self, node: usize, dir: Direction, t: u64) -> u64 {
        self.active_link(node, dir, t)
            .filter_map(|f| match f.kind {
                LinkFaultKind::Delay(d) => Some(d),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The payload cap on the link at step `t` (min of all active bandwidth
    /// faults; `None` if uncapped).
    pub fn link_cap(&self, node: usize, dir: Direction, t: u64) -> Option<u64> {
        self.active_link(node, dir, t)
            .filter_map(|f| match f.kind {
                LinkFaultKind::Bandwidth(c) => Some(c),
                _ => None,
            })
            .min()
    }

    fn active_link(&self, node: usize, dir: Direction, t: u64) -> impl Iterator<Item = &LinkFault> {
        self.link_faults
            .iter()
            .filter(move |f| f.node == node && f.dir == dir && f.from <= t && t < f.until)
    }

    /// A seeded random plan for an `m`-ring with all epochs inside
    /// `[0, horizon)`: a handful of drop/delay/bandwidth link faults and
    /// stall/slowdown processor faults. Same `(m, horizon, seed)` → same
    /// plan, on every platform (internal splitmix64; no RNG dependency).
    pub fn random(m: usize, horizon: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut plan = FaultPlan::new();
        if m == 0 || horizon == 0 {
            return plan;
        }
        let epoch = |rng: &mut SplitMix64| {
            let from = rng.below(horizon);
            let len = 1 + rng.below(horizon - from);
            (from, from + len)
        };
        let n_link = rng.below(4) as usize; // 0..=3 link faults
        for _ in 0..n_link {
            let node = rng.below(m as u64) as usize;
            let dir = if rng.below(2) == 0 {
                Direction::Cw
            } else {
                Direction::Ccw
            };
            let (from, until) = epoch(&mut rng);
            let kind = match rng.below(3) {
                0 => LinkFaultKind::Drop,
                1 => LinkFaultKind::Delay(1 + rng.below(4)),
                _ => LinkFaultKind::Bandwidth(rng.below(3)),
            };
            plan.add_link_fault(LinkFault {
                node,
                dir,
                from,
                until,
                kind,
            });
        }
        let n_proc = rng.below(3) as usize; // 0..=2 processor faults
        for _ in 0..n_proc {
            let node = rng.below(m as u64) as usize;
            let (from, until) = epoch(&mut rng);
            let kind = if rng.below(2) == 0 {
                ProcFaultKind::Stall
            } else {
                ProcFaultKind::Slowdown(2 + rng.below(3))
            };
            plan.add_proc_fault(ProcFault {
                node,
                from,
                until,
                kind,
            });
        }
        plan
    }

    /// Renders the plan back into the [`FaultPlan::parse`] grammar, one
    /// explicit entry per fault (a `seed=` origin is expanded, not kept, so
    /// the rendering is self-contained). `parse(render_spec(p), m) == p` for
    /// every plan — the round trip the scenario DSL relies on.
    pub fn render_spec(&self) -> String {
        let mut entries = Vec::with_capacity(self.link_faults.len() + self.proc_faults.len());
        for f in &self.link_faults {
            let dir = match f.dir {
                Direction::Cw => "cw",
                Direction::Ccw => "ccw",
            };
            let head = match f.kind {
                LinkFaultKind::Drop => "drop".to_string(),
                LinkFaultKind::Delay(d) => format!("delay={d}"),
                LinkFaultKind::Bandwidth(c) => format!("cap={c}"),
            };
            entries.push(format!("{head}:{}{dir}@{}..{}", f.node, f.from, f.until));
        }
        for f in &self.proc_faults {
            let head = match f.kind {
                ProcFaultKind::Stall => "stall".to_string(),
                ProcFaultKind::Slowdown(k) => format!("slow={k}"),
            };
            entries.push(format!("{head}:{}@{}..{}", f.node, f.from, f.until));
        }
        entries.join(";")
    }

    /// Parses the CLI fault-spec grammar. `m` is the ring size (used for
    /// index validation and by `seed=` entries).
    ///
    /// Entries are separated by `;`:
    ///
    /// ```text
    /// drop:<node><cw|ccw>@<from>..<until>      link drops everything
    /// delay=<d>:<node><cw|ccw>@<from>..<until> messages held d extra steps
    /// cap=<u>:<node><cw|ccw>@<from>..<until>   at most u payload per step
    /// stall:<node>@<from>..<until>             processor skips its steps
    /// slow=<k>:<node>@<from>..<until>          processor runs every k-th step
    /// seed=<s>[@<horizon>]                     a random plan (default horizon 64)
    /// ```
    ///
    /// Example: `drop:3cw@10..20;stall:1@0..15`.
    pub fn parse(spec: &str, m: usize) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(rest) = entry.strip_prefix("seed=") {
                let (seed_s, horizon_s) = match rest.split_once('@') {
                    Some((s, h)) => (s, Some(h)),
                    None => (rest, None),
                };
                let seed: u64 = parse_num(seed_s, entry)?;
                let horizon: u64 = match horizon_s {
                    Some(h) => parse_num(h, entry)?,
                    None => 64,
                };
                let random = FaultPlan::random(m, horizon, seed);
                plan.link_faults.extend(random.link_faults);
                plan.proc_faults.extend(random.proc_faults);
                continue;
            }
            let (head, loc) = entry
                .split_once(':')
                .ok_or_else(|| format!("`{entry}`: expected `kind:target@from..until`"))?;
            let (target, span) = loc
                .split_once('@')
                .ok_or_else(|| format!("`{entry}`: expected `@from..until`"))?;
            let (from_s, until_s) = span
                .split_once("..")
                .ok_or_else(|| format!("`{entry}`: expected `from..until`"))?;
            let from: u64 = parse_num(from_s, entry)?;
            let until: u64 = parse_num(until_s, entry)?;
            if until <= from {
                return Err(format!("`{entry}`: empty epoch {from}..{until}"));
            }
            let link_kind = if head == "drop" {
                Some(LinkFaultKind::Drop)
            } else if let Some(d) = head.strip_prefix("delay=") {
                Some(LinkFaultKind::Delay(parse_num(d, entry)?))
            } else if let Some(c) = head.strip_prefix("cap=") {
                Some(LinkFaultKind::Bandwidth(parse_num(c, entry)?))
            } else {
                None
            };
            if let Some(kind) = link_kind {
                let (node, dir) = if let Some(n) = target.strip_suffix("ccw") {
                    (n, Direction::Ccw)
                } else if let Some(n) = target.strip_suffix("cw") {
                    (n, Direction::Cw)
                } else {
                    return Err(format!("`{entry}`: link target must end in cw or ccw"));
                };
                let node: usize = parse_num(node, entry)?;
                check_node(node, m, entry)?;
                plan.add_link_fault(LinkFault {
                    node,
                    dir,
                    from,
                    until,
                    kind,
                });
                continue;
            }
            let proc_kind = if head == "stall" {
                ProcFaultKind::Stall
            } else if let Some(k) = head.strip_prefix("slow=") {
                let k: u64 = parse_num(k, entry)?;
                if k == 0 {
                    return Err(format!("`{entry}`: slowdown factor must be >= 1"));
                }
                ProcFaultKind::Slowdown(k)
            } else {
                return Err(format!(
                    "`{entry}`: unknown fault kind `{head}` \
                     (drop, delay=<d>, cap=<u>, stall, slow=<k>, seed=<s>)"
                ));
            };
            let node: usize = parse_num(target, entry)?;
            check_node(node, m, entry)?;
            plan.add_proc_fault(ProcFault {
                node,
                from,
                until,
                kind: proc_kind,
            });
        }
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, entry: &str) -> Result<T, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("`{entry}`: `{s}` is not a number"))
}

fn check_node(node: usize, m: usize, entry: &str) -> Result<(), String> {
    if node >= m {
        return Err(format!(
            "`{entry}`: node {node} out of range (ring size {m})"
        ));
    }
    Ok(())
}

/// The splitmix64 generator (Steele–Lea–Flood) — tiny, seedable, and fully
/// portable; all the randomness a fault plan needs.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), 0);
        assert!(plan.node_runs(0, 0));
        assert!(!plan.link_down(0, Direction::Cw, 0));
        assert_eq!(plan.link_delay(0, Direction::Cw, 0), 0);
        assert_eq!(plan.link_cap(0, Direction::Cw, 0), None);
    }

    #[test]
    fn epochs_are_half_open() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(LinkFault {
            node: 2,
            dir: Direction::Cw,
            from: 5,
            until: 8,
            kind: LinkFaultKind::Drop,
        });
        assert!(!plan.link_down(2, Direction::Cw, 4));
        assert!(plan.link_down(2, Direction::Cw, 5));
        assert!(plan.link_down(2, Direction::Cw, 7));
        assert!(!plan.link_down(2, Direction::Cw, 8));
        // Other links are unaffected.
        assert!(!plan.link_down(2, Direction::Ccw, 6));
        assert!(!plan.link_down(3, Direction::Cw, 6));
        assert_eq!(plan.horizon(), 8);
    }

    #[test]
    fn overlapping_delays_take_max_and_caps_take_min() {
        let mut plan = FaultPlan::new();
        for (d, kind) in [
            (3, LinkFaultKind::Delay(3)),
            (1, LinkFaultKind::Delay(1)),
            (0, LinkFaultKind::Bandwidth(5)),
            (0, LinkFaultKind::Bandwidth(2)),
        ] {
            let _ = d;
            plan.add_link_fault(LinkFault {
                node: 0,
                dir: Direction::Ccw,
                from: 0,
                until: 10,
                kind,
            });
        }
        assert_eq!(plan.link_delay(0, Direction::Ccw, 4), 3);
        assert_eq!(plan.link_cap(0, Direction::Ccw, 4), Some(2));
    }

    #[test]
    fn stall_and_slowdown_gate_steps() {
        let mut plan = FaultPlan::new();
        plan.add_proc_fault(ProcFault {
            node: 1,
            from: 2,
            until: 5,
            kind: ProcFaultKind::Stall,
        });
        plan.add_proc_fault(ProcFault {
            node: 3,
            from: 10,
            until: 16,
            kind: ProcFaultKind::Slowdown(3),
        });
        assert!(plan.node_runs(1, 1));
        assert!(!plan.node_runs(1, 2));
        assert!(!plan.node_runs(1, 4));
        assert!(plan.node_runs(1, 5));
        // Slowdown(3) runs at 10, 13 and skips the rest of the epoch.
        let runs: Vec<u64> = (9..17).filter(|&t| plan.node_runs(3, t)).collect();
        assert_eq!(runs, vec![9, 10, 13, 16]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = FaultPlan::random(8, 32, 42);
        let b = FaultPlan::random(8, 32, 42);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::random(8, 32, 43));
        for seed in 0..50 {
            let p = FaultPlan::random(8, 32, seed);
            assert!(p.horizon() <= 32, "seed {seed}");
            for f in p.link_faults() {
                assert!(f.node < 8 && f.from < f.until);
            }
            for f in p.proc_faults() {
                assert!(f.node < 8 && f.from < f.until);
            }
        }
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "drop:3cw@10..20; delay=2:0ccw@0..5; cap=1:7cw@3..9; stall:1@0..15; slow=4:2@8..40",
            8,
        )
        .unwrap();
        assert_eq!(plan.link_faults().len(), 3);
        assert_eq!(plan.proc_faults().len(), 2);
        assert!(plan.link_down(3, Direction::Cw, 12));
        assert_eq!(plan.link_delay(0, Direction::Ccw, 2), 2);
        assert_eq!(plan.link_cap(7, Direction::Cw, 3), Some(1));
        assert!(!plan.node_runs(1, 3));
        assert!(plan.node_runs(2, 8) && !plan.node_runs(2, 9));
    }

    #[test]
    fn render_spec_round_trips_through_parse() {
        let spec =
            "drop:3cw@10..20; delay=2:0ccw@0..5; cap=1:7cw@3..9; stall:1@0..15; slow=4:2@8..40";
        let plan = FaultPlan::parse(spec, 8).unwrap();
        assert_eq!(FaultPlan::parse(&plan.render_spec(), 8).unwrap(), plan);
        // Seeded plans render as explicit entries, not as the seed.
        let seeded = FaultPlan::random(16, 48, 7);
        let rendered = seeded.render_spec();
        assert!(!rendered.contains("seed"));
        assert_eq!(FaultPlan::parse(&rendered, 16).unwrap(), seeded);
        assert_eq!(FaultPlan::new().render_spec(), "");
    }

    #[test]
    fn parse_seed_entry_expands_to_a_random_plan() {
        let parsed = FaultPlan::parse("seed=42@32", 8).unwrap();
        assert_eq!(parsed, FaultPlan::random(8, 32, 42));
        let default_horizon = FaultPlan::parse("seed=7", 4).unwrap();
        assert_eq!(default_horizon, FaultPlan::random(4, 64, 7));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop:3@1..2",     // missing direction
            "drop:9cw@1..2",   // node out of range
            "drop:1cw@5..5",   // empty epoch
            "wobble:1cw@1..2", // unknown kind
            "slow=0:1@1..2",   // zero slowdown
            "drop:1cw@xx..2",  // not a number
            "drop:1cw",        // no span
        ] {
            assert!(FaultPlan::parse(bad, 8).is_err(), "{bad} should fail");
        }
    }
}
