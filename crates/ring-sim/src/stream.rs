//! A quota-relay workload exercising the count-coalesced message
//! representation and quiescent-span step compression.
//!
//! [`StreamNode`] moves indistinguishable unit jobs clockwise around the
//! ring: each node keeps incoming units up to a per-node quota and relays
//! the surplus. The policy can send its surplus either as one unit message
//! per job ([`Representation::PerUnit`]) or as a single count-coalesced run
//! ([`Representation::Coalesced`] via [`crate::engine::Outbox::push_n`]) —
//! by the
//! [`Payload::run_len`] metering contract the two produce **bit-for-bit
//! identical** [`crate::engine::RunReport`]s while the coalesced run costs
//! one arena slot instead of N. This is the workload behind the
//! `ringsched bench` throughput baseline and the representation-equivalence
//! proptests.
//!
//! The workload is for the unbounded-capacity model (§2–§6): a coalesced
//! run is one arena entry carrying many job units, which the §7
//! [`crate::engine::LinkCapacity::UnitJobs`] rule would reject.

use crate::checkpoint::{CheckpointError, Decoder, Encoder, Persist};
use crate::engine::{Coalesce, Engine, EngineConfig, Node, NodeCtx, Payload, Quiescence, StepIo};
use crate::topology::Direction;

/// A run of identical clockwise-travelling unit jobs: `StreamMsg(n)` stands
/// for `n` unit messages of one job each, so both [`Payload::job_units`]
/// and [`Payload::run_len`] are `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMsg(pub u64);

impl Payload for StreamMsg {
    fn job_units(&self) -> u64 {
        self.0
    }

    fn run_len(&self) -> u64 {
        self.0
    }
}

impl Coalesce for StreamMsg {
    fn coalesce(self, count: u64) -> Self {
        StreamMsg(self.0 * count)
    }
}

impl Persist for StreamMsg {
    fn save(&self, enc: &mut Encoder) {
        enc.u64(self.0);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
        Ok(StreamMsg(dec.u64()?))
    }
}

/// How a [`StreamNode`] hands its surplus to the link layer. Both
/// representations describe the same logical message stream; the engine's
/// run-length metering makes them report identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// One arena entry per unit job (`n` calls to `push`): the seed
    /// engine's cost model, O(units) arena traffic.
    PerUnit,
    /// One count-coalesced arena entry per step and direction
    /// (`push_n(…, n)`): O(1) arena traffic per link per step.
    Coalesced,
}

/// A stream instance: where the unit jobs start and how many each node may
/// keep. Jobs travel clockwise; the run terminates once every unit has been
/// accepted and processed, so the quotas must cover the work
/// (`Σ quota ≥ Σ initial` — asserted by [`StreamSpec::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSpec {
    /// Unit jobs initially resident per node.
    pub initial: Vec<u64>,
    /// Units node `i` permanently accepts before relaying everything else.
    pub quota: Vec<u64>,
}

impl StreamSpec {
    /// Builds a spec from explicit per-node loads and quotas.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ, they are empty, or the quotas
    /// cannot absorb the work.
    pub fn new(initial: Vec<u64>, quota: Vec<u64>) -> Self {
        assert_eq!(initial.len(), quota.len(), "one quota per node");
        assert!(!initial.is_empty(), "need at least one node");
        assert!(
            quota.iter().sum::<u64>() >= initial.iter().sum::<u64>(),
            "quotas must cover the work or the surplus circulates forever"
        );
        StreamSpec { initial, quota }
    }

    /// The *spread* shape: `work` unit jobs concentrated on node 0, quotas
    /// split evenly (the first `work mod m` nodes take one extra). The
    /// relay stream shrinks by each node's share as it sweeps the ring —
    /// the message-heaviest stream shape, the benchmark's main axis.
    pub fn spread(m: usize, work: u64) -> Self {
        let mut initial = vec![0; m];
        initial[0] = work;
        let base = work / m as u64;
        let extra = (work % m as u64) as usize;
        let quota = (0..m).map(|i| base + u64::from(i < extra)).collect();
        StreamSpec { initial, quota }
    }

    /// The *drain* shape: `work` unit jobs on node 0, the whole quota on the
    /// antipodal node. After `m/2` transit rounds the sink drains `work`
    /// units in as many quiet rounds — the shape quiescent-span step
    /// compression collapses to O(1) engine rounds.
    pub fn drain(m: usize, work: u64) -> Self {
        let mut initial = vec![0; m];
        initial[0] = work;
        let mut quota = vec![0; m];
        quota[m / 2] = work;
        StreamSpec { initial, quota }
    }

    /// Total unit jobs in the instance.
    pub fn total_work(&self) -> u64 {
        self.initial.iter().sum()
    }
}

/// One processor of the quota-relay workload (see the module docs).
#[derive(Debug, Clone)]
pub struct StreamNode {
    repr: Representation,
    quota: u64,
    accepted: u64,
    backlog: u64,
    initial: u64,
    emitted: bool,
}

impl StreamNode {
    /// Units this node has permanently accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

impl Node for StreamNode {
    type Msg = StreamMsg;

    fn on_step(&mut self, _ctx: &NodeCtx, io: &mut StepIo<'_, StreamMsg>) -> u64 {
        // The initial load enters the stream on the first step, exactly as
        // if it had just arrived.
        let mut incoming = if self.emitted {
            0
        } else {
            self.emitted = true;
            self.initial
        };
        for msg in io.inbox.from_ccw.drain(..) {
            incoming += msg.job_units();
        }
        for msg in io.inbox.from_cw.drain(..) {
            incoming += msg.job_units();
        }
        let keep = incoming.min(self.quota - self.accepted);
        self.accepted += keep;
        self.backlog += keep;
        let surplus = incoming - keep;
        match self.repr {
            Representation::PerUnit => {
                for _ in 0..surplus {
                    io.out.push(Direction::Cw, StreamMsg(1));
                }
            }
            Representation::Coalesced => {
                io.out.push_n(Direction::Cw, StreamMsg(1), surplus);
            }
        }
        if self.backlog > 0 {
            self.backlog -= 1;
            1
        } else {
            0
        }
    }

    fn pending_work(&self) -> u64 {
        self.backlog + if self.emitted { 0 } else { self.initial }
    }

    fn quiescence(&self, _now: u64) -> Option<Quiescence> {
        // Once the initial load is in the stream the node only ever reacts
        // to arrivals; with empty inboxes it drains its backlog silently.
        self.emitted.then_some(Quiescence {
            span: u64::MAX,
            backlog: self.backlog,
        })
    }

    fn fast_forward(&mut self, steps: u64) {
        self.backlog -= self.backlog.min(steps);
    }

    // `repr` is deliberately not persisted: it is a message-layout choice,
    // and the two layouts report bit-identically, so a resumed run may even
    // switch it.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        enc.u64(self.quota);
        enc.u64(self.accepted);
        enc.u64(self.backlog);
        enc.u64(self.initial);
        enc.bool(self.emitted);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.quota = dec.u64()?;
        self.accepted = dec.u64()?;
        self.backlog = dec.u64()?;
        self.initial = dec.u64()?;
        self.emitted = dec.bool()?;
        Ok(())
    }
}

/// Builds the ring of [`StreamNode`]s for a spec.
pub fn build_stream_nodes(spec: &StreamSpec, repr: Representation) -> Vec<StreamNode> {
    spec.initial
        .iter()
        .zip(&spec.quota)
        .map(|(&initial, &quota)| StreamNode {
            repr,
            quota,
            accepted: 0,
            backlog: 0,
            initial,
            emitted: false,
        })
        .collect()
}

/// Builds an [`Engine`] over the spec, ready for [`Engine::run`] or
/// [`Engine::par_run`].
pub fn stream_engine(
    spec: &StreamSpec,
    repr: Representation,
    config: EngineConfig,
) -> Engine<StreamNode> {
    Engine::new(build_stream_nodes(spec, repr), spec.total_work(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunReport;
    use crate::trace::TraceLevel;

    fn full_cfg(compress: bool) -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            compress,
            ..EngineConfig::default()
        }
    }

    fn run(spec: &StreamSpec, repr: Representation, compress: bool) -> RunReport {
        stream_engine(spec, repr, full_cfg(compress)).run().unwrap()
    }

    #[test]
    fn representations_report_identically_on_spread() {
        let spec = StreamSpec::spread(9, 70);
        let per_unit = run(&spec, Representation::PerUnit, false);
        let coalesced = run(&spec, Representation::Coalesced, false);
        assert_eq!(per_unit, coalesced);
        assert!(per_unit.metrics.messages_sent > 0);
    }

    #[test]
    fn compression_is_invisible_on_drain() {
        let spec = StreamSpec::drain(8, 500);
        let plain = run(&spec, Representation::Coalesced, false);
        let compressed = run(&spec, Representation::Coalesced, true);
        assert_eq!(plain, compressed);
        // The drain shape really is dominated by quiet rounds.
        assert!(plain.makespan > 500);
    }

    #[test]
    fn all_four_variants_agree() {
        let spec = StreamSpec::new(vec![13, 0, 5, 40, 0, 1], vec![9, 9, 9, 9, 9, 14]);
        let base = run(&spec, Representation::PerUnit, false);
        for repr in [Representation::PerUnit, Representation::Coalesced] {
            for compress in [false, true] {
                assert_eq!(base, run(&spec, repr, compress), "{repr:?}/{compress}");
            }
        }
        assert_eq!(base.metrics.total_processed(), spec.total_work());
    }

    #[test]
    fn par_run_matches_under_compression() {
        let spec = StreamSpec::spread(12, 200);
        let seq = run(&spec, Representation::Coalesced, true);
        for shards in [2, 3, 7] {
            let par = stream_engine(&spec, Representation::Coalesced, full_cfg(true))
                .par_run(shards)
                .unwrap();
            assert_eq!(seq, par, "{shards} shards");
        }
    }

    #[test]
    fn link_series_counts_units_not_arena_entries() {
        let spec = StreamSpec::drain(8, 500);
        let per_unit = run(&spec, Representation::PerUnit, false);
        let coalesced = run(&spec, Representation::Coalesced, false);
        assert_eq!(per_unit.observability, coalesced.observability);
        let obs = coalesced.observability.as_ref().unwrap();
        // 500 units leave node 0 clockwise in one burst: the per-link series
        // reports 500 logical messages whether they travelled as 500 arena
        // entries or one coalesced run.
        assert_eq!(obs.links.cw_messages[0], 500);
        assert_eq!(
            per_unit.metrics.messages_sent,
            coalesced.metrics.messages_sent
        );
    }

    #[test]
    fn singleton_ring_drains_locally() {
        let spec = StreamSpec::new(vec![25], vec![25]);
        let report = run(&spec, Representation::Coalesced, true);
        assert_eq!(report.makespan, 25);
        assert_eq!(report.metrics.messages_sent, 0);
    }
}
