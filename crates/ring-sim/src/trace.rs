//! Optional per-event traces of a simulation run.
//!
//! Full traces grow with (steps × messages), so they are opt-in via
//! [`TraceLevel`]; large experiment sweeps run with [`TraceLevel::Off`] and
//! rely on [`crate::Metrics`] plus the engine's built-in conservation checks.

use serde::{Deserialize, Serialize};

use crate::topology::Direction;

/// How much event detail the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Record nothing (metrics only).
    #[default]
    Off,
    /// Record every processing and send event.
    Full,
}

/// Why a scheduling policy permanently kept (dropped off) work at a node.
///
/// Recorded on [`Event::DroppedOff`] so the [`crate::oracle`] knows which
/// invariant governs the event: `Regular` drops are bound by the paper's
/// I1/I2 (unit) or A1/A2 (arbitrary-size) rounding constraints; `Balancing`
/// drops follow the Lemma 5 wrap-around rule instead; `Forced` drops are
/// exempt from both (spill after a second lap, or a singleton ring keeping
/// everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropKind {
    /// A rounding-constrained drop in the bucket's first lap.
    Regular,
    /// A Lemma 5 wrap-around balancing drop (bucket lapped the ring).
    Balancing,
    /// A drop exempt from the cumulative constraints (spill, singleton
    /// ring).
    Forced,
}

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// `node` processed `units` units of work during step `t`.
    Processed {
        /// Step index.
        t: u64,
        /// Processor index.
        node: usize,
        /// Units processed (0 or 1 in the paper's model; the engine enforces
        /// ≤ 1 but records the claimed value).
        units: u64,
    },
    /// `node` sent a message carrying `job_units` of job payload in
    /// direction `dir` during step `t` (delivered at `t + 1`).
    Sent {
        /// Step index.
        t: u64,
        /// Sending processor.
        node: usize,
        /// Travel direction.
        dir: Direction,
        /// Job payload carried.
        job_units: u64,
    },
    /// `node` sent a message carrying `job_units` of job payload out of
    /// local link `port` during step `t` (delivered at `t + 1`).
    ///
    /// The topology-generic form of [`Event::Sent`], recorded by the fabric
    /// engine where links are numbered by port rather than cw/ccw. Ring
    /// runs keep emitting `Sent` (ports 0/1 are exactly cw/ccw), so ring
    /// trace bytes are unchanged; `SentOn` only appears in traces of
    /// non-ring topologies, which are written at the bumped
    /// [`crate::tracefile::TRACE_VERSION_FABRIC`].
    SentOn {
        /// Step index.
        t: u64,
        /// Sending node.
        node: usize,
        /// Local out-link (port) index at the sender.
        port: usize,
        /// Job payload carried.
        job_units: u64,
    },
    /// `node` permanently accepted work out of bucket `bucket` during step
    /// `t`, together with the cumulative ledgers the policy used to justify
    /// it. Fractional ledgers are stored as [`f64::to_bits`] so the event
    /// stays `Eq` and merges bit-for-bit across executors.
    DroppedOff {
        /// Step index.
        t: u64,
        /// Accepting processor.
        node: usize,
        /// Identifier of the bucket the work came from (unique per emitted
        /// bucket within one run).
        bucket: u64,
        /// Integral work units accepted by this event.
        units: u64,
        /// Fractional (shadow) work accepted by this event, as bits.
        frac_bits: u64,
        /// Bucket-cumulative fractional drop after this event, as bits
        /// (the I1/A1 reference level).
        cum_drop_frac_bits: u64,
        /// Node-cumulative fractional acceptance after this event, as bits
        /// (the I2/A2 reference level).
        cum_accept_frac_bits: u64,
        /// Largest job size seen by the bucket so far (0 for unit jobs).
        p_max_bucket: u64,
        /// Largest job size seen by the node so far (0 for unit jobs).
        p_max_node: u64,
        /// Which invariant family governs this drop.
        kind: DropKind,
    },
}

impl Event {
    /// The `(step, node)` ordering key of engine-order traces. Within one
    /// `(step, node)` cell the engine emits events in the fixed order
    /// *DroppedOff\*, Processed, Sent cw, Sent ccw* (the fabric engine:
    /// *Processed, SentOn by ascending port*), so a stable sort by this
    /// key restores full engine order from any per-node-ordered shuffle —
    /// which is how [`crate::Engine::par_run`] merges per-arc event logs.
    pub(crate) fn order_key(&self) -> (u64, usize) {
        match *self {
            Event::Processed { t, node, .. }
            | Event::Sent { t, node, .. }
            | Event::SentOn { t, node, .. }
            | Event::DroppedOff { t, node, .. } => (t, node),
        }
    }
}

/// An ordered log of [`Event`]s for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<Event>,
    level: TraceLevel,
}

impl Trace {
    pub(crate) fn new(level: TraceLevel) -> Self {
        Trace {
            events: Vec::new(),
            level,
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, ev: Event) {
        if matches!(self.level, TraceLevel::Full) {
            self.events.push(ev);
        }
    }

    /// Rebuilds a trace from per-arc event logs: concatenates them and
    /// stable-sorts by `(step, node)`, which restores exact engine order
    /// (see [`Event::order_key`]).
    pub(crate) fn merge_arcs(level: TraceLevel, arcs: Vec<Vec<Event>>) -> Self {
        let mut events: Vec<Event> = arcs.into_iter().flatten().collect();
        events.sort_by_key(Event::order_key);
        Trace { events, level }
    }

    /// Builds a trace directly from an event list. Intended for tests that
    /// construct (or deliberately corrupt) traces to exercise the
    /// [`crate::oracle`]; the engine itself only records through the normal
    /// path.
    pub fn from_events(level: TraceLevel, events: Vec<Event>) -> Self {
        Trace { events, level }
    }

    /// Consumes the trace, returning its event list (used by the checkpoint
    /// stitch, which concatenates a base prefix with merged arc deltas).
    pub(crate) fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// The level this trace was recorded at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// All recorded events, in engine order (grouped by step, then by node).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of a particular step.
    pub fn step_events(&self, t: u64) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| match e {
            Event::Processed { t: et, .. }
            | Event::Sent { t: et, .. }
            | Event::SentOn { t: et, .. }
            | Event::DroppedOff { t: et, .. } => *et == t,
        })
    }

    /// Total units processed according to the trace.
    pub fn total_processed(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Processed { units, .. } => *units,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_trace_records_nothing() {
        let mut tr = Trace::new(TraceLevel::Off);
        tr.record(Event::Processed {
            t: 0,
            node: 0,
            units: 1,
        });
        assert!(tr.events().is_empty());
    }

    #[test]
    fn full_trace_records_and_filters_by_step() {
        let mut tr = Trace::new(TraceLevel::Full);
        tr.record(Event::Processed {
            t: 0,
            node: 0,
            units: 1,
        });
        tr.record(Event::Sent {
            t: 1,
            node: 0,
            dir: Direction::Cw,
            job_units: 3,
        });
        tr.record(Event::Processed {
            t: 1,
            node: 1,
            units: 1,
        });
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.step_events(1).count(), 2);
        assert_eq!(tr.total_processed(), 2);
    }
}
