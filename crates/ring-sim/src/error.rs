//! Simulation error types.

use crate::checkpoint::CheckpointError;

/// Errors produced by the [`crate::Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation did not finish within the configured step budget.
    /// Usually indicates a livelocked or non-terminating policy.
    ExceededMaxSteps {
        /// The configured step budget.
        max_steps: u64,
        /// Work processed when the budget ran out.
        processed: u64,
        /// Total work in the instance.
        total: u64,
    },
    /// A node tried to process more than one unit of work in a single step,
    /// violating the machine model of §2.
    Overwork {
        /// Offending processor.
        node: usize,
        /// Step at which it happened.
        step: u64,
        /// Units the node claimed to process.
        units: u64,
    },
    /// A node sent more job payload over a link than the link capacity
    /// allows (§7 model).
    LinkCapacityExceeded {
        /// Sending processor.
        node: usize,
        /// Step at which it happened.
        step: u64,
        /// Job units the node tried to send over one link in one step.
        job_units: u64,
        /// Number of messages the node tried to send over one link.
        messages: usize,
    },
    /// The run processed more work than the instance contains — a policy
    /// fabricated work out of thin air.
    WorkMiscount {
        /// Work processed.
        processed: u64,
        /// Total work in the instance.
        total: u64,
    },
    /// A requested checkpoint could not be written: a node or message type
    /// does not support persistence, or the snapshot sink failed. The run
    /// stops at the boundary rather than continue past a silently missing
    /// snapshot.
    Checkpoint {
        /// The step boundary the snapshot was requested at.
        step: u64,
        /// What went wrong.
        error: CheckpointError,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ExceededMaxSteps {
                max_steps,
                processed,
                total,
            } => write!(
                f,
                "simulation exceeded {max_steps} steps ({processed}/{total} units processed)"
            ),
            SimError::Overwork { node, step, units } => write!(
                f,
                "processor {node} processed {units} units in step {step} (limit is 1)"
            ),
            SimError::LinkCapacityExceeded {
                node,
                step,
                job_units,
                messages,
            } => write!(
                f,
                "processor {node} exceeded link capacity in step {step}: \
                 {job_units} job units / {messages} messages on one link"
            ),
            SimError::WorkMiscount { processed, total } => write!(
                f,
                "run processed {processed} units but the instance only contains {total}"
            ),
            SimError::Checkpoint { step, error } => {
                write!(f, "checkpoint at step {step} failed: {error}")
            }
        }
    }
}

impl std::error::Error for SimError {}
