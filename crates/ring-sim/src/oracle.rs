//! The trace-replay invariant oracle.
//!
//! The engine enforces the machine model online; this module re-derives the
//! paper's correctness story *from the recorded trace alone*, so that a bug
//! in a policy — or in the engine's own accounting — that fabricates,
//! duplicates, or teleports work is caught by an independent code path.
//!
//! Two entry points:
//!
//! * [`check_report`] needs only the [`RunReport`] (no instance): unit
//!   speed, fault legality (nothing processed while stalled, nothing sent
//!   over a downed or over-capacity link), the cumulative I1/I2 (unit jobs)
//!   and A1/A2 (arbitrary sizes) rounding constraints replayed from the
//!   audited [`Event::DroppedOff`] ledger, ledger monotonicity, makespan
//!   consistency, and drop-off/processing accounting. This is what the
//!   engine's `self-check` feature runs after every traced run.
//! * [`check_run`] additionally replays conservation/causality against the
//!   [`Instance`]: sends debit the sender when they *depart*, credit the
//!   receiver one step later, and no node's resident work may ever go
//!   negative — under faults this is exactly why recording `Sent` events at
//!   link departure (rather than at the policy's push) matters.
//!
//! ## Fault-aware slack
//!
//! The I1/I2/A1/A2 constraints need **no** extra slack under faults: they
//! are indexed by *drop events*, not by time, and a held-back or re-sent
//! bucket changes when drops happen, never how much may be dropped. The
//! fault plan only enters the legality checks (a `Processed` event inside a
//! stall epoch, a `Sent` event on a downed link, payload above a bandwidth
//! cap — each deterministically checkable because the plan is a pure
//! function of `(node, link, step)`).
//!
//! ## Coalescing and step compression
//!
//! The oracle needs no special handling for either engine optimization:
//! `Sent` events aggregate per (node, direction, step) with run-length
//! weighted message counts, so a coalesced run and the equivalent per-unit
//! burst produce the same trace; and quiescent-span step compression
//! synthesizes the *expanded* per-step `Processed` events before fast
//! forwarding, so a compressed run's trace is indistinguishable from the
//! step-by-step one. The invariance is proved by the representation- and
//! compression-equivalence proptests in `ring-net/tests/par_equivalence.rs`,
//! which run every variant through [`check_run`].

use std::collections::HashMap;

use crate::engine::RunReport;
use crate::fault::FaultPlan;
use crate::instance::Instance;
use crate::topology::{Direction, RingTopology};
use crate::trace::{DropKind, Event, TraceLevel};
use ring_topology::{AnyTopology, Topology};

/// Numeric tolerance of the fractional ledger checks (matches the shadow
/// bookkeeping in `ring-sched`).
const EPS: f64 = 1e-9;

/// Ceiling with a small tolerance so accumulated floating-point noise like
/// `4.999999999` rounds to `5` rather than `6` (duplicated from
/// `ring-sched`, which keeps its copy crate-private).
fn ceil_tol(x: f64) -> u64 {
    let c = (x - EPS).ceil();
    if c <= 0.0 {
        0
    } else {
        c as u64
    }
}

/// A violation found by the oracle (empty result = the run checks out).
#[derive(Debug, Clone, PartialEq)]
pub enum OracleViolation {
    /// The trace was not recorded at full detail, so it cannot be checked.
    TraceUnavailable,
    /// A node processed more than one unit in one step.
    Overwork {
        /// Offending node.
        node: usize,
        /// Step index.
        step: u64,
        /// Units processed in that step.
        units: u64,
    },
    /// A node processed work during a step its fault plan forbade.
    ProcessedWhileStalled {
        /// Offending node.
        node: usize,
        /// Step index.
        step: u64,
    },
    /// A message departed over a link that was dropping at that step.
    SentOnDownLink {
        /// Sending node.
        node: usize,
        /// Step index.
        step: u64,
        /// Link direction.
        dir: Direction,
    },
    /// More payload departed over a link than its bandwidth cap allowed.
    BandwidthExceeded {
        /// Sending node.
        node: usize,
        /// Step index.
        step: u64,
        /// Link direction.
        dir: Direction,
        /// Payload that departed.
        payload: u64,
        /// The active cap.
        cap: u64,
    },
    /// A node's replayed resident work went negative: it processed or
    /// forwarded work it could not yet have had.
    NegativeBalance {
        /// Offending node.
        node: usize,
        /// Step index at which the balance went negative.
        step: u64,
        /// The (negative) balance.
        deficit: i128,
    },
    /// Total processed work differs from the instance total.
    TotalMismatch {
        /// Processed according to the trace.
        processed: u64,
        /// Instance total.
        expected: u64,
    },
    /// Reported makespan disagrees with the last processing event.
    MakespanMismatch {
        /// Makespan in the report.
        reported: u64,
        /// Makespan derived from the trace.
        derived: u64,
    },
    /// A bucket's cumulative integral drop overran its I1/A1 bound
    /// (`ceil(cumulative fractional drop) + p_max`).
    I1Exceeded {
        /// Offending bucket.
        bucket: u64,
        /// Step of the overrunning drop event.
        step: u64,
        /// Cumulative integral units dropped from the bucket.
        dropped_int: u64,
        /// The bound derived from the fractional ledger.
        bound: u64,
    },
    /// A node's cumulative integral acceptance overran its I2/A2 bound
    /// (`1 + ceil(cumulative fractional acceptance) + p_max`).
    I2Exceeded {
        /// Offending node.
        node: usize,
        /// Step of the overrunning drop event.
        step: u64,
        /// Cumulative integral units the node accepted.
        accepted_int: u64,
        /// The bound derived from the fractional ledger.
        bound: u64,
    },
    /// A cumulative fractional ledger decreased between two audited events
    /// (fractional shadows only ever grow).
    NonMonotoneLedger {
        /// Node of the offending event.
        node: usize,
        /// Bucket of the offending event.
        bucket: u64,
        /// Step of the offending event.
        step: u64,
    },
    /// A node's audited drop-offs disagree with the work it processed: the
    /// bucket algorithms only process work they accepted, so the per-node
    /// sums must match exactly.
    DropAccountingMismatch {
        /// Offending node.
        node: usize,
        /// Units of work the node accepted according to the audit events.
        dropped: u64,
        /// Units the node processed according to the metrics.
        processed: u64,
    },
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleViolation::TraceUnavailable => {
                write!(f, "run was not recorded with TraceLevel::Full")
            }
            OracleViolation::Overwork { node, step, units } => {
                write!(f, "node {node} processed {units} units in step {step}")
            }
            OracleViolation::ProcessedWhileStalled { node, step } => {
                write!(f, "node {node} processed work while stalled at step {step}")
            }
            OracleViolation::SentOnDownLink { node, step, dir } => {
                write!(f, "node {node} sent {dir:?} over a downed link at step {step}")
            }
            OracleViolation::BandwidthExceeded {
                node,
                step,
                dir,
                payload,
                cap,
            } => write!(
                f,
                "node {node} sent {payload} payload {dir:?} at step {step}, cap was {cap}"
            ),
            OracleViolation::NegativeBalance {
                node,
                step,
                deficit,
            } => write!(
                f,
                "node {node} work balance went negative ({deficit}) at step {step}"
            ),
            OracleViolation::TotalMismatch {
                processed,
                expected,
            } => write!(f, "processed {processed} units, instance has {expected}"),
            OracleViolation::MakespanMismatch { reported, derived } => {
                write!(f, "reported makespan {reported}, trace says {derived}")
            }
            OracleViolation::I1Exceeded {
                bucket,
                step,
                dropped_int,
                bound,
            } => write!(
                f,
                "bucket {bucket} dropped {dropped_int} integral units by step {step}, I1/A1 allows {bound}"
            ),
            OracleViolation::I2Exceeded {
                node,
                step,
                accepted_int,
                bound,
            } => write!(
                f,
                "node {node} accepted {accepted_int} integral units by step {step}, I2/A2 allows {bound}"
            ),
            OracleViolation::NonMonotoneLedger { node, bucket, step } => write!(
                f,
                "cumulative ledger of bucket {bucket} / node {node} decreased at step {step}"
            ),
            OracleViolation::DropAccountingMismatch {
                node,
                dropped,
                processed,
            } => write!(
                f,
                "node {node} accepted {dropped} units via drop-offs but processed {processed}"
            ),
        }
    }
}

/// Per-bucket I1/A1 replay state.
#[derive(Default)]
struct BucketState {
    dropped_int: u64,
    cum_drop_frac: f64,
    /// False once the bucket entered its balancing/spill phase: from there
    /// the wrap-around rule of Lemma 5 governs, not the rounding ledger.
    constrained: bool,
    seen: bool,
}

/// Per-node I2/A2 replay state.
struct NodeState {
    accepted_int: u64,
    accepted_units: u64,
    cum_accept_frac: f64,
    constrained: bool,
}

/// Checks everything that can be checked from the report alone: unit speed,
/// fault legality, the I1/I2/A1/A2 drop ledgers, makespan consistency, and
/// drop-off accounting. Requires [`TraceLevel::Full`].
///
/// `m` is the ring size and `plan` the fault plan the run was executed
/// under (`None` = fault-free; every fault check then passes vacuously).
pub fn check_report(
    report: &RunReport,
    m: usize,
    plan: Option<&FaultPlan>,
) -> Vec<OracleViolation> {
    let mut violations = Vec::new();
    if !matches!(report.trace.level(), TraceLevel::Full) {
        return vec![OracleViolation::TraceUnavailable];
    }
    // Defensive copy: engine traces are already in `(step, node)` order, but
    // hand-built (or corrupted) traces need not be.
    let mut events = report.trace.events().to_vec();
    events.sort_by_key(|e| match *e {
        Event::Processed { t, node, .. }
        | Event::Sent { t, node, .. }
        | Event::SentOn { t, node, .. }
        | Event::DroppedOff { t, node, .. } => (t, node),
    });

    let mut processed_in_cell: u64 = 0;
    let mut cell: Option<(u64, usize)> = None;
    let mut last_busy: Option<u64> = None;

    let mut buckets: HashMap<u64, BucketState> = HashMap::new();
    let mut nodes: Vec<NodeState> = (0..m)
        .map(|_| NodeState {
            accepted_int: 0,
            accepted_units: 0,
            cum_accept_frac: 0.0,
            constrained: true,
        })
        .collect();
    let mut any_drop_events = false;

    for ev in &events {
        match *ev {
            Event::Processed { t, node, units } => {
                if cell != Some((t, node)) {
                    cell = Some((t, node));
                    processed_in_cell = 0;
                }
                processed_in_cell += units;
                if processed_in_cell > 1 {
                    violations.push(OracleViolation::Overwork {
                        node,
                        step: t,
                        units: processed_in_cell,
                    });
                }
                if units > 0 {
                    last_busy = Some(last_busy.map_or(t, |b| b.max(t)));
                }
                if let Some(plan) = plan {
                    if units > 0 && !plan.node_runs(node, t) {
                        violations.push(OracleViolation::ProcessedWhileStalled { node, step: t });
                    }
                }
            }
            Event::Sent {
                t,
                node,
                dir,
                job_units,
            } => {
                if let Some(plan) = plan {
                    // A departure during its owner's stall is fine — links
                    // drain independently of the processor — but nothing
                    // departs a downed or over-capacity link.
                    if plan.link_down(node, dir, t) {
                        violations.push(OracleViolation::SentOnDownLink { node, step: t, dir });
                    }
                    if let Some(cap) = plan.link_cap(node, dir, t) {
                        if job_units > cap {
                            violations.push(OracleViolation::BandwidthExceeded {
                                node,
                                step: t,
                                dir,
                                payload: job_units,
                                cap,
                            });
                        }
                    }
                }
            }
            Event::SentOn {
                t,
                node,
                port,
                job_units,
            } => {
                // Fabric sends: fault plans speak cw/ccw, which every
                // topology maps onto ports 0/1 (its embedded ring
                // orientation). Higher ports have no fault epochs.
                if let Some(plan) = plan {
                    if let Some(&dir) = Direction::BOTH.get(port) {
                        if plan.link_down(node, dir, t) {
                            violations.push(OracleViolation::SentOnDownLink { node, step: t, dir });
                        }
                        if let Some(cap) = plan.link_cap(node, dir, t) {
                            if job_units > cap {
                                violations.push(OracleViolation::BandwidthExceeded {
                                    node,
                                    step: t,
                                    dir,
                                    payload: job_units,
                                    cap,
                                });
                            }
                        }
                    }
                }
            }
            Event::DroppedOff {
                t,
                node,
                bucket,
                units,
                cum_drop_frac_bits,
                cum_accept_frac_bits,
                p_max_bucket,
                p_max_node,
                kind,
                ..
            } => {
                any_drop_events = true;
                let cum_drop = f64::from_bits(cum_drop_frac_bits);
                let cum_accept = f64::from_bits(cum_accept_frac_bits);
                let b = buckets.entry(bucket).or_default();
                if !b.seen {
                    b.seen = true;
                    b.constrained = true;
                }
                if node >= m {
                    // A teleported/corrupted node index; report as a ledger
                    // problem rather than indexing out of bounds.
                    violations.push(OracleViolation::NonMonotoneLedger {
                        node,
                        bucket,
                        step: t,
                    });
                    continue;
                }
                let n = &mut nodes[node];
                if cum_drop + EPS < b.cum_drop_frac || cum_accept + EPS < n.cum_accept_frac {
                    violations.push(OracleViolation::NonMonotoneLedger {
                        node,
                        bucket,
                        step: t,
                    });
                }
                b.cum_drop_frac = b.cum_drop_frac.max(cum_drop);
                n.cum_accept_frac = n.cum_accept_frac.max(cum_accept);
                b.dropped_int += units;
                n.accepted_int += units;
                n.accepted_units += units;
                match kind {
                    DropKind::Regular => {
                        if b.constrained {
                            let bound = ceil_tol(b.cum_drop_frac) + p_max_bucket;
                            if b.dropped_int > bound {
                                violations.push(OracleViolation::I1Exceeded {
                                    bucket,
                                    step: t,
                                    dropped_int: b.dropped_int,
                                    bound,
                                });
                            }
                        }
                        if n.constrained {
                            let bound = 1 + ceil_tol(n.cum_accept_frac) + p_max_node;
                            if n.accepted_int > bound {
                                violations.push(OracleViolation::I2Exceeded {
                                    node,
                                    step: t,
                                    accepted_int: n.accepted_int,
                                    bound,
                                });
                            }
                        }
                    }
                    DropKind::Balancing | DropKind::Forced => {
                        // Lemma 5's wrap-around rule (or a forced spill)
                        // takes over: the rounding ledgers no longer bound
                        // this bucket, nor this node's shared acceptance
                        // ledger, from here on.
                        b.constrained = false;
                        n.constrained = false;
                    }
                }
            }
        }
    }

    let derived = last_busy.map_or(0, |t| t + 1);
    if derived != report.makespan {
        violations.push(OracleViolation::MakespanMismatch {
            reported: report.makespan,
            derived,
        });
    }

    // Bucket policies process exactly the work they audited as dropped off,
    // node by node. Policies that don't audit (relay chains, the §7
    // capacitated algorithm) record no DroppedOff events and skip this.
    if any_drop_events {
        for (node, state) in nodes.iter().enumerate() {
            let processed = report
                .metrics
                .processed_per_node
                .get(node)
                .copied()
                .unwrap_or(0);
            if state.accepted_units != processed {
                violations.push(OracleViolation::DropAccountingMismatch {
                    node,
                    dropped: state.accepted_units,
                    processed,
                });
            }
        }
    }

    violations
}

/// Full validation: everything [`check_report`] covers plus the
/// conservation/causality replay against the instance — sends debit the
/// sender at departure and credit the ring neighbor one step later, no
/// balance may go negative, and the processed total must equal the
/// instance's work.
pub fn check_run(
    instance: &Instance,
    report: &RunReport,
    plan: Option<&FaultPlan>,
) -> Vec<OracleViolation> {
    let m = instance.num_processors();
    let mut violations = check_report(report, m, plan);
    if violations == vec![OracleViolation::TraceUnavailable] {
        return violations;
    }
    let topo = RingTopology::new(m);

    // Replay. balance[i] = resident work currently at node i.
    let mut balance: Vec<i128> = instance.loads().iter().map(|&x| x as i128).collect();
    let mut arriving_now: Vec<i128> = vec![0; m];
    let mut arriving_next: Vec<i128> = vec![0; m];

    let mut processed_total: u64 = 0;
    let mut current_step: Option<u64> = None;

    let mut advance_to = |step: u64,
                          balance: &mut Vec<i128>,
                          arriving_now: &mut Vec<i128>,
                          arriving_next: &mut Vec<i128>| {
        while current_step.map_or(true, |c| c < step) {
            let next = current_step.map_or(0, |c| c + 1);
            if current_step.is_some() {
                // Deliveries sent in the step we are leaving arrive now.
                std::mem::swap(arriving_now, arriving_next);
                for (i, b) in balance.iter_mut().enumerate() {
                    *b += arriving_now[i];
                    arriving_now[i] = 0;
                }
            }
            current_step = Some(next);
        }
    };

    for ev in report.trace.events() {
        match *ev {
            Event::Processed { t, node, units } => {
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= m {
                    continue; // already reported by check_report
                }
                balance[node] -= units as i128;
                processed_total += units;
                if balance[node] < 0 {
                    violations.push(OracleViolation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
            }
            Event::Sent {
                t,
                node,
                dir,
                job_units,
            } => {
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= m {
                    continue;
                }
                balance[node] -= job_units as i128;
                if balance[node] < 0 {
                    violations.push(OracleViolation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
                let dest = topo.neighbor(node, dir);
                arriving_next[dest] += job_units as i128;
            }
            Event::SentOn {
                t,
                node,
                port,
                job_units,
            } => {
                // A ring run is never supposed to carry fabric sends, but a
                // hand-built trace might: debit the sender, and credit only
                // if the port maps onto the ring (0 = cw, 1 = ccw). A send
                // on a port the ring does not have loses the work and is
                // surfaced by the total-work check.
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= m {
                    continue;
                }
                balance[node] -= job_units as i128;
                if balance[node] < 0 {
                    violations.push(OracleViolation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
                if let Some(&dir) = Direction::BOTH.get(port) {
                    let dest = topo.neighbor(node, dir);
                    arriving_next[dest] += job_units as i128;
                }
            }
            // Drop-offs move work from "travelling" to "resident at the
            // node it is already at" — no balance change.
            Event::DroppedOff { .. } => {}
        }
    }

    if processed_total != instance.total_work() {
        violations.push(OracleViolation::TotalMismatch {
            processed: processed_total,
            expected: instance.total_work(),
        });
    }
    violations
}

/// The topology-generic counterpart of [`check_run`]: everything
/// [`check_report`] covers plus the conservation/causality replay over an
/// arbitrary [`Topology`] — a fabric send on port `p` debits the sender at
/// departure and credits `topo.peer(node, p)` one step later. Ring-style
/// [`Event::Sent`] events are accepted too (cw/ccw map onto ports 0/1), so
/// the same replay covers lifted ring policies.
pub fn check_fabric_run(
    loads: &[u64],
    topo: &AnyTopology,
    report: &RunReport,
    plan: Option<&FaultPlan>,
) -> Vec<OracleViolation> {
    let n = topo.len();
    assert_eq!(loads.len(), n, "load vector must match the topology");
    let mut violations = check_report(report, n, plan);
    if violations == vec![OracleViolation::TraceUnavailable] {
        return violations;
    }

    let mut balance: Vec<i128> = loads.iter().map(|&x| x as i128).collect();
    let mut arriving_now: Vec<i128> = vec![0; n];
    let mut arriving_next: Vec<i128> = vec![0; n];

    let mut processed_total: u64 = 0;
    let mut current_step: Option<u64> = None;

    let mut advance_to = |step: u64,
                          balance: &mut Vec<i128>,
                          arriving_now: &mut Vec<i128>,
                          arriving_next: &mut Vec<i128>| {
        while current_step.map_or(true, |c| c < step) {
            let next = current_step.map_or(0, |c| c + 1);
            if current_step.is_some() {
                std::mem::swap(arriving_now, arriving_next);
                for (i, b) in balance.iter_mut().enumerate() {
                    *b += arriving_now[i];
                    arriving_now[i] = 0;
                }
            }
            current_step = Some(next);
        }
    };

    // Debits the sender and credits the port's peer one step later. A send
    // on a port the node does not have loses the work, which the trailing
    // total-work check surfaces.
    let send = |t: u64,
                node: usize,
                port: usize,
                job_units: u64,
                balance: &mut Vec<i128>,
                arriving_next: &mut Vec<i128>,
                violations: &mut Vec<OracleViolation>| {
        balance[node] -= job_units as i128;
        if balance[node] < 0 {
            violations.push(OracleViolation::NegativeBalance {
                node,
                step: t,
                deficit: balance[node],
            });
        }
        if port < topo.degree(node) {
            arriving_next[topo.peer(node, port)] += job_units as i128;
        }
    };

    for ev in report.trace.events() {
        match *ev {
            Event::Processed { t, node, units } => {
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= n {
                    continue; // already reported by check_report
                }
                balance[node] -= units as i128;
                processed_total += units;
                if balance[node] < 0 {
                    violations.push(OracleViolation::NegativeBalance {
                        node,
                        step: t,
                        deficit: balance[node],
                    });
                }
            }
            Event::SentOn {
                t,
                node,
                port,
                job_units,
            } => {
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= n {
                    continue;
                }
                send(
                    t,
                    node,
                    port,
                    job_units,
                    &mut balance,
                    &mut arriving_next,
                    &mut violations,
                );
            }
            Event::Sent {
                t,
                node,
                dir,
                job_units,
            } => {
                advance_to(t, &mut balance, &mut arriving_now, &mut arriving_next);
                if node >= n {
                    continue;
                }
                let port = match dir {
                    Direction::Cw => 0,
                    Direction::Ccw => 1,
                };
                send(
                    t,
                    node,
                    port,
                    job_units,
                    &mut balance,
                    &mut arriving_next,
                    &mut violations,
                );
            }
            Event::DroppedOff { .. } => {}
        }
    }

    let expected: u64 = loads.iter().sum();
    if processed_total != expected {
        violations.push(OracleViolation::TotalMismatch {
            processed: processed_total,
            expected,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Node, NodeCtx, Payload, StepIo};
    use crate::metrics::Metrics;
    use crate::trace::Trace;

    struct LocalOnly {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for LocalOnly {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    fn run_local(loads: Vec<u64>) -> (Instance, RunReport) {
        let inst = Instance::from_loads(loads.clone());
        let nodes: Vec<LocalOnly> = loads.iter().map(|&x| LocalOnly { remaining: x }).collect();
        let config = EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        };
        let report = Engine::new(nodes, inst.total_work(), config).run().unwrap();
        (inst, report)
    }

    #[test]
    fn honest_local_run_passes_both_checks() {
        let (inst, report) = run_local(vec![4, 0, 2]);
        assert!(check_report(&report, 3, None).is_empty());
        assert!(check_run(&inst, &report, None).is_empty());
    }

    #[test]
    fn off_trace_is_unavailable() {
        let inst = Instance::from_loads(vec![1]);
        let report = Engine::new(vec![LocalOnly { remaining: 1 }], 1, EngineConfig::default())
            .run()
            .unwrap();
        assert_eq!(
            check_run(&inst, &report, None),
            vec![OracleViolation::TraceUnavailable]
        );
    }

    /// Builds a minimal full-trace report around a hand-written event list.
    fn report_from(m: usize, makespan: u64, events: Vec<Event>) -> RunReport {
        let mut metrics = Metrics::new(m);
        for ev in &events {
            if let Event::Processed { t, node, units } = *ev {
                metrics.processed_per_node[node] += units;
                metrics.last_busy_step = Some(t);
            }
        }
        RunReport {
            makespan,
            metrics,
            trace: Trace::from_events(TraceLevel::Full, events),
            observability: None,
        }
    }

    #[test]
    fn stall_violations_are_fault_aware() {
        let mut plan = FaultPlan::new();
        plan.add_proc_fault(crate::fault::ProcFault {
            node: 0,
            from: 0,
            until: 4,
            kind: crate::fault::ProcFaultKind::Stall,
        });
        let report = report_from(
            2,
            3,
            vec![Event::Processed {
                t: 2,
                node: 0,
                units: 1,
            }],
        );
        // Fault-free check is clean; under the plan the same trace is not.
        assert!(check_report(&report, 2, None).is_empty());
        assert!(check_report(&report, 2, Some(&plan))
            .iter()
            .any(|v| matches!(
                v,
                OracleViolation::ProcessedWhileStalled { node: 0, step: 2 }
            )));
    }

    #[test]
    fn down_link_and_cap_violations_are_detected() {
        let mut plan = FaultPlan::new();
        plan.add_link_fault(crate::fault::LinkFault {
            node: 1,
            dir: Direction::Cw,
            from: 0,
            until: 5,
            kind: crate::fault::LinkFaultKind::Drop,
        });
        plan.add_link_fault(crate::fault::LinkFault {
            node: 0,
            dir: Direction::Ccw,
            from: 0,
            until: 5,
            kind: crate::fault::LinkFaultKind::Bandwidth(1),
        });
        let report = report_from(
            3,
            0,
            vec![
                Event::Sent {
                    t: 1,
                    node: 1,
                    dir: Direction::Cw,
                    job_units: 1,
                },
                Event::Sent {
                    t: 2,
                    node: 0,
                    dir: Direction::Ccw,
                    job_units: 3,
                },
            ],
        );
        let violations = check_report(&report, 3, Some(&plan));
        assert!(violations.iter().any(|v| matches!(
            v,
            OracleViolation::SentOnDownLink {
                node: 1,
                step: 1,
                ..
            }
        )));
        assert!(violations.iter().any(|v| matches!(
            v,
            OracleViolation::BandwidthExceeded {
                node: 0,
                payload: 3,
                cap: 1,
                ..
            }
        )));
    }

    #[test]
    fn i1_overrun_is_detected() {
        // Two integral units dropped from one bucket against a cumulative
        // fractional drop of 1.2 → bound ceil(1.2) = 2, third unit breaks.
        let drop = |t: u64, units: u64, cum: f64| Event::DroppedOff {
            t,
            node: 0,
            bucket: 7,
            units,
            frac_bits: 0f64.to_bits(),
            cum_drop_frac_bits: cum.to_bits(),
            cum_accept_frac_bits: 10.0f64.to_bits(), // keep I2 slack
            p_max_bucket: 0,
            p_max_node: 0,
            kind: DropKind::Regular,
        };
        let report = report_from(2, 0, vec![drop(0, 2, 1.2), drop(1, 1, 1.2)]);
        let violations = check_report(&report, 2, None);
        assert!(violations.iter().any(|v| matches!(
            v,
            OracleViolation::I1Exceeded {
                bucket: 7,
                dropped_int: 3,
                bound: 2,
                ..
            }
        )));
    }

    #[test]
    fn balancing_phase_lifts_the_ledger_bounds() {
        let drop = |t: u64, units: u64, kind: DropKind| Event::DroppedOff {
            t,
            node: 0,
            bucket: 3,
            units,
            frac_bits: 0f64.to_bits(),
            cum_drop_frac_bits: 0f64.to_bits(),
            cum_accept_frac_bits: 0f64.to_bits(),
            p_max_bucket: 0,
            p_max_node: 0,
            kind,
        };
        // A balancing drop followed by heavy drops: no I1/I2 findings, only
        // the accounting check (which we satisfy via processed_per_node).
        let events = vec![
            drop(0, 1, DropKind::Balancing),
            drop(1, 5, DropKind::Forced),
        ];
        let mut report = report_from(2, 0, events);
        report.metrics.processed_per_node = vec![6, 0];
        assert!(check_report(&report, 2, None).is_empty());
    }

    #[test]
    fn drop_accounting_mismatch_is_detected() {
        let events = vec![Event::DroppedOff {
            t: 0,
            node: 1,
            bucket: 0,
            units: 2,
            frac_bits: 0f64.to_bits(),
            cum_drop_frac_bits: 2.0f64.to_bits(),
            cum_accept_frac_bits: 2.0f64.to_bits(),
            p_max_bucket: 0,
            p_max_node: 0,
            kind: DropKind::Regular,
        }];
        let report = report_from(2, 0, events); // processed_per_node stays 0
        assert!(check_report(&report, 2, None).iter().any(|v| matches!(
            v,
            OracleViolation::DropAccountingMismatch {
                node: 1,
                dropped: 2,
                processed: 0,
            }
        )));
    }
}
