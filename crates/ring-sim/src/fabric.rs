//! The topology-generic execution engine ("the fabric").
//!
//! [`crate::Engine`] is specialized to the ring: its arenas, link queues,
//! fault hooks and trace events all come in clockwise/counterclockwise
//! pairs. The fabric generalizes the same synchronous machine model to any
//! [`ring_topology::Topology`] — hierarchical rings, 2D tori, the congested
//! clique — while deliberately *reusing* the ring engine's internals
//! (the [`crate::engine`] fault-queue `transmit` kernel, [`Metrics`],
//! [`RunReport`], the trace event stream) so the two cannot drift:
//!
//! * Time advances in synchronous unit steps. A message sent at `t` over
//!   port `p` of node `v` arrives at `topo.peer(v, p)` at `t + 1`, tagged
//!   with the arrival port `topo.reverse_port(v, p)`.
//! * Each node may process at most one unit of work per step
//!   ([`SimError::Overwork`] otherwise), and with
//!   [`LinkCapacity::UnitJobs`] may send at most one job and two messages
//!   per port per step — the §7 model, applied per directed link.
//! * Fault plans are honored on the *ring pair* of every node — port 0 maps
//!   to [`Direction::Cw`] and port 1 to [`Direction::Ccw`], exactly the
//!   mapping the [`crate::oracle`] replays — through the same staged-queue
//!   `transmit` the ring engine uses, so drops, delay epochs, bandwidth
//!   caps and the hold-and-retry rule behave identically. Higher ports
//!   (torus N/S columns, hierarchy uplinks, clique chords) are always
//!   healthy; a stalled processor skips its step but its inbox carries
//!   over and its link queues keep draining, mirroring the ring engine.
//!
//! ## Determinism
//!
//! [`Fabric::run`] steps nodes `0..n` in index order. [`Fabric::par_run`]
//! shards the id space along [`ring_topology::Topology::cuts`] (contiguous,
//! seam-aligned ranges) and merges per-shard effects *in shard order*,
//! which equals node order — so sequential and parallel runs, static or
//! work-stealing, produce bit-for-bit identical [`RunReport`]s for every
//! shard count. The workspace equivalence proptests assert this across
//! topologies, fault plans and checkpoint cycles.
//!
//! Ring policies lift unchanged: [`RingLift`] adapts any [`Node`] to a
//! [`FabricNode`] by translating the port-tagged inbox back into the
//! cw/ccw [`StepIo`] surface. The ring engine itself remains the fast path
//! for rings (quiescent-span compression, windowed arc executors, the
//! golden byte formats); the fabric is the generality path.

use std::collections::VecDeque;
use std::sync::Mutex;

use ring_topology::{AnyTopology, Topology};

use crate::checkpoint::{
    decode_event, decode_fault_plan, decode_metrics, encode_event, encode_fault_plan,
    encode_metrics, fnv1a, CheckpointError, Decoder, Encoder, Persist, SNAPSHOT_MAGIC,
};
use crate::engine::{
    transmit, EngineConfig, LinkCapacity, LinkQueue, Node, NodeCtx, ParStrategy, Payload,
    RunReport, SpanOutcome, Staged, StepIo,
};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::topology::{Direction, RingTopology};
use crate::trace::{Event, Trace, TraceLevel};

/// Snapshot format version for fabric images. Distinct from the ring
/// engine's [`crate::SNAPSHOT_VERSION`] (which stays 1, keeping every
/// existing ring byte image valid): the two containers share the
/// `RINGSNAP` magic and fail closed on each other's version tag.
pub const FABRIC_SNAPSHOT_VERSION: u32 = 2;

/// Read-only per-step context handed to a [`FabricNode`].
#[derive(Debug, Clone, Copy)]
pub struct FabricCtx<'a> {
    /// This node's id.
    pub id: usize,
    /// The current step (starts at 0).
    pub t: u64,
    /// The topology the node lives on. Policies may read global shape
    /// facts (`len()`, `degree(id)`, the metric) but get no access to
    /// other nodes' state.
    pub topo: &'a AnyTopology,
}

/// A node's outgoing sends for one step, tagged by departure port.
///
/// Pushes may arrive in any port order; the fabric stable-sorts them by
/// port when the step ends (preserving push order within a port), so the
/// wire order — and therefore every downstream consumer — is independent
/// of the order the policy happened to emit in.
#[derive(Debug)]
pub struct FabricOutbox<'a, M: Payload> {
    degree: usize,
    sends: &'a mut Vec<(usize, M)>,
}

impl<M: Payload> FabricOutbox<'_, M> {
    /// Appends a message departing over `port` (delivered at `t + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a valid port of the sending node — sending
    /// over a nonexistent link is a policy bug, not a runtime condition.
    pub fn push(&mut self, port: usize, msg: M) {
        assert!(
            port < self.degree,
            "send over port {port} of a degree-{} node",
            self.degree
        );
        self.sends.push((port, msg));
    }

    /// True iff nothing was sent yet this step.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Number of messages pushed so far this step.
    pub fn len(&self) -> usize {
        self.sends.len()
    }
}

/// A scheduling policy running on one node of an arbitrary topology.
///
/// The fabric analogue of [`Node`]: the inbox is a flat list of
/// `(arrival_port, message)` pairs (sparse — only what actually arrived,
/// so clique nodes do not pay for their degree), ordered by sending node
/// id and stable within a sender; the outbox is port-addressed.
pub trait FabricNode {
    /// Link message type.
    type Msg: Payload;

    /// Executes one synchronous step: drain the inbox (messages sent in
    /// the previous step, tagged by the port they arrived on; empty at
    /// `t = 0`), optionally process one unit of resident work, and emit
    /// messages through `out`. Returns the units processed (at most 1).
    ///
    /// The fabric clears whatever the policy leaves in `inbox` when the
    /// step ends; undrained messages are gone.
    fn on_step(
        &mut self,
        ctx: &FabricCtx<'_>,
        inbox: &mut Vec<(usize, Self::Msg)>,
        out: &mut FabricOutbox<'_, Self::Msg>,
    ) -> u64;

    /// Units of unprocessed work currently resident on this node (not
    /// counting work in flight).
    fn pending_work(&self) -> u64;

    /// Serializes this node's complete policy state into a fabric
    /// snapshot; same bit-exactness contract as [`Node::save_state`].
    /// The default refuses; nodes opt in.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        let _ = enc;
        Err(CheckpointError::Unsupported(
            "fabric node type does not implement save_state",
        ))
    }

    /// Restores the state written by [`FabricNode::save_state`] into
    /// `self` (a freshly constructed node of the same configuration).
    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        let _ = dec;
        Err(CheckpointError::Unsupported(
            "fabric node type does not implement restore_state",
        ))
    }
}

/// Lifts a ring [`Node`] onto the fabric unchanged.
///
/// Arrival port 1 carries what the counterclockwise neighbor sent
/// clockwise (the ring engine's `from_ccw` arena) and arrival port 0 the
/// reverse; drained `to_cw` sends depart over port 0 and `to_ccw` over
/// port 1 — so on a [`ring_topology::RingTopology`] the lifted policy
/// sees byte-for-byte the inbox order the ring engine would deliver.
/// Drop-off audits are discarded (the fabric does not record
/// [`Event::DroppedOff`]); use the ring engine for audited bucket runs.
#[derive(Debug)]
pub struct RingLift<N: Node> {
    inner: N,
    from_ccw: Vec<N::Msg>,
    from_cw: Vec<N::Msg>,
    to_cw: Vec<N::Msg>,
    to_ccw: Vec<N::Msg>,
}

impl<N: Node> RingLift<N> {
    /// Wraps a ring policy node.
    pub fn new(inner: N) -> Self {
        RingLift {
            inner,
            from_ccw: Vec::new(),
            from_cw: Vec::new(),
            to_cw: Vec::new(),
            to_ccw: Vec::new(),
        }
    }

    /// Unwraps the ring policy node.
    pub fn into_inner(self) -> N {
        self.inner
    }
}

impl<N: Node> FabricNode for RingLift<N> {
    type Msg = N::Msg;

    fn on_step(
        &mut self,
        ctx: &FabricCtx<'_>,
        inbox: &mut Vec<(usize, Self::Msg)>,
        out: &mut FabricOutbox<'_, Self::Msg>,
    ) -> u64 {
        debug_assert!(
            matches!(ctx.topo, AnyTopology::Ring(_)),
            "RingLift only makes sense on a ring"
        );
        for (port, msg) in inbox.drain(..) {
            match port {
                1 => self.from_ccw.push(msg),
                0 => self.from_cw.push(msg),
                _ => unreachable!("ring nodes have exactly two ports"),
            }
        }
        let nctx = NodeCtx {
            id: ctx.id,
            t: ctx.t,
            topo: RingTopology::new(ctx.topo.len()),
        };
        let work = {
            let mut io = StepIo::new(
                &mut self.from_ccw,
                &mut self.from_cw,
                &mut self.to_cw,
                &mut self.to_ccw,
            );
            self.inner.on_step(&nctx, &mut io)
        };
        self.from_ccw.clear();
        self.from_cw.clear();
        for msg in self.to_cw.drain(..) {
            out.push(0, msg);
        }
        for msg in self.to_ccw.drain(..) {
            out.push(1, msg);
        }
        work
    }

    fn pending_work(&self) -> u64 {
        self.inner.pending_work()
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
        self.inner.save_state(enc)
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
        self.inner.restore_state(dec)
    }
}

/// Per-round counter deltas, accumulated per shard and summed in shard
/// order so parallel merges reproduce the sequential totals exactly.
#[derive(Debug, Default, Clone, Copy)]
struct RoundDelta {
    messages_sent: u64,
    job_hops: u64,
    inflight: u64,
    dropped: u64,
    delayed: u64,
    retried: u64,
}

impl RoundDelta {
    fn absorb(&mut self, o: &RoundDelta) {
        self.messages_sent += o.messages_sent;
        self.job_hops += o.job_hops;
        self.inflight += o.inflight;
        self.dropped += o.dropped;
        self.delayed += o.delayed;
        self.retried += o.retried;
    }
}

/// What one shard produced in one round: deliveries, trace events (already
/// in node order), per-node work, and counter deltas. Merged strictly in
/// shard order, which equals node order because cuts are contiguous and
/// ascending — this is the whole bit-identity argument.
struct ShardOut<M> {
    /// `(dest, arrival_port, msg)` in departure order.
    deliveries: Vec<(usize, usize, M)>,
    /// `(node, units)` for nodes that processed work, ascending by node.
    work: Vec<(usize, u64)>,
    events: Vec<Event>,
    delta: RoundDelta,
}

/// One steal-pool result slot: filled exactly once by whichever worker
/// claims the shard's task.
type ShardSlot<M> = Mutex<Option<Result<ShardOut<M>, SimError>>>;

/// Steps one node and drains its links for one round — the single
/// per-node kernel shared by the sequential and parallel executors.
///
/// `sends` is a cleared scratch buffer; departures are appended to `out`
/// as `(dest, arrival_port, msg)`, events (if `record`) in engine order
/// (`Processed` first, then `SentOn` by ascending port), counters into
/// `delta`. Under a fault plan, ports 0/1 route through the ring engine's
/// staged-queue [`transmit`] (port 0 ↔ [`Direction::Cw`], port 1 ↔
/// [`Direction::Ccw`]); higher ports — and every port when no plan is
/// installed — depart directly. The caller has already carried a stalled
/// node's inbox over, so a stalled node skips its step here while its two
/// fault queues keep draining.
#[allow(clippy::too_many_arguments)] // the per-node kernel's natural surface
fn step_cell<N: FabricNode>(
    node: &mut N,
    topo: &AnyTopology,
    i: usize,
    t: u64,
    inbox: &mut Vec<(usize, N::Msg)>,
    queue_cw: &mut LinkQueue<N::Msg>,
    queue_ccw: &mut LinkQueue<N::Msg>,
    plan: Option<&FaultPlan>,
    link_capacity: LinkCapacity,
    record: bool,
    sends: &mut Vec<(usize, N::Msg)>,
    out: &mut Vec<(usize, usize, N::Msg)>,
    events: &mut Vec<Event>,
    delta: &mut RoundDelta,
) -> Result<u64, SimError> {
    sends.clear();
    let degree = topo.degree(i);
    let runs = match plan {
        Some(p) => p.node_runs(i, t),
        None => true,
    };
    let work_done = if runs {
        let ctx = FabricCtx { id: i, t, topo };
        let mut outbox = FabricOutbox { degree, sends };
        let w = node.on_step(&ctx, inbox, &mut outbox);
        inbox.clear();
        w
    } else {
        0
    };
    if work_done > 1 {
        return Err(SimError::Overwork {
            node: i,
            step: t,
            units: work_done,
        });
    }
    // Canonical wire order: stable by port, push order within a port.
    sends.sort_by_key(|(p, _)| *p);
    if link_capacity == LinkCapacity::UnitJobs {
        let mut k = 0;
        while k < sends.len() {
            let port = sends[k].0;
            let (mut messages, mut payload) = (0u64, 0u64);
            while k < sends.len() && sends[k].0 == port {
                messages += sends[k].1.run_len();
                payload += sends[k].1.job_units();
                k += 1;
            }
            if payload > 1 || messages > 2 {
                return Err(SimError::LinkCapacityExceeded {
                    node: i,
                    step: t,
                    job_units: payload,
                    messages: messages as usize,
                });
            }
        }
    }
    if work_done > 0 && record {
        events.push(Event::Processed {
            t,
            node: i,
            units: work_done,
        });
    }
    // Departures, ascending by port. The drain walks the sorted sends
    // once; only ports that actually carry something are visited (plus
    // the ring pair under a plan), so a mostly-quiet clique node costs
    // O(sends), not O(degree).
    let mut drain = sends.drain(..).peekable();
    // With a plan the ring pair (ports 0/1) is metered by `transmit`
    // over the node's fault queues — which must drain every round, even
    // when nothing new was pushed (and even while the owner is stalled).
    if let Some(plan) = plan {
        let mut staged: Vec<N::Msg> = Vec::new();
        let mut departed: Vec<N::Msg> = Vec::new();
        for (port, dir) in [(0usize, Direction::Cw), (1usize, Direction::Ccw)] {
            if port >= degree {
                break;
            }
            staged.clear();
            while drain.peek().is_some_and(|&(p, _)| p == port) {
                staged.push(drain.next().expect("peeked").1);
            }
            let queue = if port == 0 {
                &mut *queue_cw
            } else {
                &mut *queue_ccw
            };
            departed.clear();
            let dep = transmit(plan, i, dir, t, &mut staged, queue, &mut departed);
            delta.dropped += dep.dropped;
            delta.delayed += dep.delayed;
            delta.retried += dep.retried;
            let peer = topo.peer(i, port);
            let ap = topo.reverse_port(i, port);
            for msg in departed.drain(..) {
                out.push((peer, ap, msg));
            }
            if dep.messages > 0 {
                delta.messages_sent += dep.messages;
                delta.job_hops += dep.payload;
                delta.inflight += dep.payload;
                if record {
                    events.push(Event::SentOn {
                        t,
                        node: i,
                        port,
                        job_units: dep.payload,
                    });
                }
            }
        }
    }
    // Direct ports: everything when no plan is installed, ports >= 2
    // otherwise (the sorted drain has already consumed the ring pair).
    while let Some(&(port, _)) = drain.peek() {
        let peer = topo.peer(i, port);
        let ap = topo.reverse_port(i, port);
        let (mut messages, mut payload) = (0u64, 0u64);
        while drain.peek().is_some_and(|&(p, _)| p == port) {
            let (_, msg) = drain.next().expect("peeked");
            messages += msg.run_len();
            payload += msg.job_units();
            out.push((peer, ap, msg));
        }
        if messages > 0 {
            delta.messages_sent += messages;
            delta.job_hops += payload;
            delta.inflight += payload;
            if record {
                events.push(Event::SentOn {
                    t,
                    node: i,
                    port,
                    job_units: payload,
                });
            }
        }
    }
    drop(drain);
    Ok(work_done)
}

/// The topology-generic engine: owns one [`FabricNode`] per node of an
/// [`AnyTopology`] and advances global time in lock-step rounds.
///
/// All loop-carried state lives in the struct, so
/// [`Fabric::run_until`] / [`Fabric::par_run_until`] pause at any step
/// boundary, [`Fabric::snapshot`] serializes exactly that boundary, and
/// the sequential and parallel drivers may be freely interleaved across
/// spans of one run without observable effect.
///
/// Reuses [`EngineConfig`]; the ring-engine-only knobs (`compress`,
/// `observe`, `window`, `checkpoint_every`) are ignored here.
#[derive(Debug)]
pub struct Fabric<N: FabricNode> {
    topo: AnyTopology,
    nodes: Vec<N>,
    total_work: u64,
    config: EngineConfig,
    t: u64,
    processed: u64,
    finished: bool,
    /// Inboxes for step `t`: `(arrival_port, msg)` per node, ordered by
    /// sending node (carried-over stall survivors first).
    cur: Vec<Vec<(usize, N::Msg)>>,
    /// Spare buffers that become the next round's inboxes (capacity
    /// recycling, same trick as the ring engine's arenas).
    spare: Vec<Vec<(usize, N::Msg)>>,
    queue_cw: Vec<LinkQueue<N::Msg>>,
    queue_ccw: Vec<LinkQueue<N::Msg>>,
    metrics: Metrics,
    trace: Trace,
}

impl<N: FabricNode> Fabric<N> {
    /// Builds a fabric over `topo` with one policy node per id.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != topo.len()`.
    pub fn new(topo: AnyTopology, nodes: Vec<N>, total_work: u64, config: EngineConfig) -> Self {
        assert_eq!(nodes.len(), topo.len(), "one node per topology id required");
        let n = nodes.len();
        let level = config.trace;
        Fabric {
            topo,
            nodes,
            total_work,
            config,
            t: 0,
            processed: 0,
            finished: false,
            cur: (0..n).map(|_| Vec::new()).collect(),
            spare: (0..n).map(|_| Vec::new()).collect(),
            queue_cw: (0..n).map(|_| VecDeque::new()).collect(),
            queue_ccw: (0..n).map(|_| VecDeque::new()).collect(),
            metrics: Metrics::new(n),
            trace: Trace::new(level),
        }
    }

    /// The topology this fabric executes on.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    /// The step boundary the fabric is currently at.
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Immutable view of the policy nodes (diagnostics and tests).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    fn max_steps(&self) -> u64 {
        self.config.max_steps.unwrap_or_else(|| {
            let n = self.topo.len() as u64;
            let horizon = self.config.faults.as_ref().map_or(0, FaultPlan::horizon);
            4 * (self.total_work + n) + 8 * (self.topo.diameter() as u64 + 2) + 64 + 2 * horizon
        })
    }

    /// Runs to completion on one thread, stepping nodes in id order.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        match self.drive_seq(None)? {
            SpanOutcome::Done(report) => Ok(*report),
            SpanOutcome::Paused { .. } => unreachable!("unbounded span cannot pause"),
        }
    }

    /// Runs until `pause_at` (a step boundary) or completion, whichever
    /// comes first. Pausing retains all loop-carried state, so the next
    /// driver call — sequential or parallel — continues bit-identically.
    pub fn run_until(&mut self, pause_at: u64) -> Result<SpanOutcome, SimError> {
        self.drive_seq(Some(pause_at))
    }

    fn drive_seq(&mut self, pause_at: Option<u64>) -> Result<SpanOutcome, SimError> {
        assert!(!self.finished, "fabric already finished");
        let max_steps = self.max_steps();
        loop {
            if let Some(outcome) = self.boundary(pause_at, max_steps)? {
                return Ok(outcome);
            }
            self.seq_round()?;
        }
    }

    fn finish(&mut self) -> RunReport {
        self.finished = true;
        RunReport {
            makespan: self.metrics.last_busy_step.map_or(0, |t| t + 1),
            metrics: self.metrics.clone(),
            trace: std::mem::take(&mut self.trace),
            observability: None,
        }
    }

    /// Step-boundary triage shared by the sequential and parallel
    /// drivers: completion, pause, miscount, step budget — in that order.
    fn boundary(
        &mut self,
        pause_at: Option<u64>,
        max_steps: u64,
    ) -> Result<Option<SpanOutcome>, SimError> {
        if self.processed > self.total_work {
            return Err(SimError::WorkMiscount {
                processed: self.processed,
                total: self.total_work,
            });
        }
        if self.processed == self.total_work {
            return Ok(Some(SpanOutcome::Done(Box::new(self.finish()))));
        }
        if pause_at == Some(self.t) {
            return Ok(Some(SpanOutcome::Paused {
                t: self.t,
                processed: self.processed,
            }));
        }
        if self.t >= max_steps {
            return Err(SimError::ExceededMaxSteps {
                max_steps,
                processed: self.processed,
                total: self.total_work,
            });
        }
        Ok(None)
    }

    fn apply_work(&mut self, node: usize, units: u64) {
        if units > 0 {
            self.processed += units;
            self.metrics.processed_per_node[node] += units;
            self.metrics.busy_steps_per_node[node] += 1;
            self.metrics.last_busy_step = Some(self.t);
        }
    }

    fn end_round(&mut self, delta: &RoundDelta) {
        self.metrics.messages_sent += delta.messages_sent;
        self.metrics.job_hops += delta.job_hops;
        self.metrics.messages_dropped += delta.dropped;
        self.metrics.messages_delayed += delta.delayed;
        self.metrics.messages_retried += delta.retried;
        self.metrics.peak_inflight_jobs = self.metrics.peak_inflight_jobs.max(delta.inflight);
        self.t += 1;
        self.metrics.steps = self.t;
        std::mem::swap(&mut self.cur, &mut self.spare);
    }

    /// One sequential round: carry stalled inboxes over, step every node,
    /// deliver into the spare buffers, swap.
    fn seq_round(&mut self) -> Result<(), SimError> {
        let t = self.t;
        let record = matches!(self.config.trace, TraceLevel::Full);
        // Two-phase faults borrow: the plan lives in config, the queues in
        // self — clone the Option<&> out before the node loop.
        let plan = self.config.faults.clone();
        let plan = plan.as_ref();
        if let Some(plan) = plan {
            // A stalled processor does not consume its inbox: carry it
            // over before anyone writes this round's sends.
            for i in 0..self.nodes.len() {
                if !plan.node_runs(i, t) {
                    let (cur, spare) = (&mut self.cur[i], &mut self.spare[i]);
                    spare.append(cur);
                }
            }
        }
        let mut sends = Vec::new();
        let mut out = Vec::new();
        let mut events = Vec::new();
        let mut delta = RoundDelta::default();
        for i in 0..self.nodes.len() {
            let work = step_cell(
                &mut self.nodes[i],
                &self.topo,
                i,
                t,
                &mut self.cur[i],
                &mut self.queue_cw[i],
                &mut self.queue_ccw[i],
                plan,
                self.config.link_capacity,
                record,
                &mut sends,
                &mut out,
                &mut events,
                &mut delta,
            )?;
            self.apply_work(i, work);
            for (dest, ap, msg) in out.drain(..) {
                self.spare[dest].push((ap, msg));
            }
        }
        for ev in events {
            self.trace.record(ev);
        }
        self.end_round(&delta);
        Ok(())
    }
}

/// One shard's slice of the mutable per-node state for one round.
struct ShardTask<'a, N: FabricNode> {
    idx: usize,
    lo: usize,
    nodes: &'a mut [N],
    cur: &'a mut [Vec<(usize, N::Msg)>],
    queue_cw: &'a mut [LinkQueue<N::Msg>],
    queue_ccw: &'a mut [LinkQueue<N::Msg>],
}

/// Runs one shard's round: steps its nodes in id order against shard-local
/// buffers. Stall carry-over is *not* done here (the caller moves stalled
/// inboxes before sharding, because carried messages must precede every
/// shard's sends in the destination inbox).
#[allow(clippy::too_many_arguments)]
fn run_shard<N: FabricNode>(
    task: ShardTask<'_, N>,
    topo: &AnyTopology,
    t: u64,
    plan: Option<&FaultPlan>,
    link_capacity: LinkCapacity,
    record: bool,
) -> Result<ShardOut<N::Msg>, SimError> {
    let mut sends = Vec::new();
    let mut out = ShardOut {
        deliveries: Vec::new(),
        work: Vec::new(),
        events: Vec::new(),
        delta: RoundDelta::default(),
    };
    for j in 0..task.nodes.len() {
        let i = task.lo + j;
        let work = step_cell(
            &mut task.nodes[j],
            topo,
            i,
            t,
            &mut task.cur[j],
            &mut task.queue_cw[j],
            &mut task.queue_ccw[j],
            plan,
            link_capacity,
            record,
            &mut sends,
            &mut out.deliveries,
            &mut out.events,
            &mut out.delta,
        )?;
        if work > 0 {
            out.work.push((i, work));
        }
    }
    Ok(out)
}

impl<N: FabricNode + Send> Fabric<N>
where
    N::Msg: Send,
{
    /// Runs to completion with `shards` scoped workers over
    /// [`ring_topology::Topology::cuts`]; bit-identical to [`Fabric::run`]
    /// for every shard count and both [`ParStrategy`] values
    /// ([`crate::ParConfig::resolved_strategy`] picks, as for the ring
    /// engine).
    pub fn par_run(&mut self, shards: usize) -> Result<RunReport, SimError> {
        match self.drive_par(None, shards)? {
            SpanOutcome::Done(report) => Ok(*report),
            SpanOutcome::Paused { .. } => unreachable!("unbounded span cannot pause"),
        }
    }

    /// Parallel analogue of [`Fabric::run_until`].
    pub fn par_run_until(&mut self, shards: usize, pause_at: u64) -> Result<SpanOutcome, SimError> {
        self.drive_par(Some(pause_at), shards)
    }

    fn drive_par(&mut self, pause_at: Option<u64>, shards: usize) -> Result<SpanOutcome, SimError> {
        assert!(!self.finished, "fabric already finished");
        let max_steps = self.max_steps();
        let cuts = self.topo.cuts(shards);
        loop {
            if let Some(outcome) = self.boundary(pause_at, max_steps)? {
                return Ok(outcome);
            }
            self.par_round(&cuts)?;
        }
    }

    /// One parallel round over fixed cuts: carry stalled inboxes, split
    /// the per-node state into per-shard slices, run shards concurrently,
    /// merge their effects in shard order (= node order).
    fn par_round(&mut self, cuts: &[std::ops::Range<usize>]) -> Result<(), SimError> {
        let t = self.t;
        let record = matches!(self.config.trace, TraceLevel::Full);
        let plan = self.config.faults.clone();
        let plan = plan.as_ref();
        if let Some(plan) = plan {
            for i in 0..self.nodes.len() {
                if !plan.node_runs(i, t) {
                    let (cur, spare) = (&mut self.cur[i], &mut self.spare[i]);
                    spare.append(cur);
                }
            }
        }

        // Slice the id space along the cuts. `cuts` partitions `0..n` in
        // order (a Topology contract, asserted by the trait tests), so
        // repeated split_at_mut walks it without unsafe.
        let mut tasks: Vec<ShardTask<'_, N>> = Vec::with_capacity(cuts.len());
        {
            let (mut nodes, mut cur, mut qcw, mut qccw) = (
                &mut self.nodes[..],
                &mut self.cur[..],
                &mut self.queue_cw[..],
                &mut self.queue_ccw[..],
            );
            for (idx, range) in cuts.iter().enumerate() {
                let len = range.len();
                let (n0, n1) = nodes.split_at_mut(len);
                let (c0, c1) = cur.split_at_mut(len);
                let (q0, q1) = qcw.split_at_mut(len);
                let (r0, r1) = qccw.split_at_mut(len);
                nodes = n1;
                cur = c1;
                qcw = q1;
                qccw = r1;
                tasks.push(ShardTask {
                    idx,
                    lo: range.start,
                    nodes: n0,
                    cur: c0,
                    queue_cw: q0,
                    queue_ccw: r0,
                });
            }
        }

        let topo = &self.topo;
        let link_capacity = self.config.link_capacity;
        let n_shards = tasks.len();
        let results: Vec<Option<Result<ShardOut<N::Msg>, SimError>>> =
            match self.config.par.resolved_strategy() {
                ParStrategy::Static => {
                    // One scoped worker per shard for the round.
                    let joined = std::thread::scope(|scope| {
                        let handles: Vec<_> = tasks
                            .into_iter()
                            .map(|task| {
                                scope.spawn(move || {
                                    run_shard(task, topo, t, plan, link_capacity, record)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("fabric worker panicked"))
                            .collect::<Vec<_>>()
                    });
                    joined.into_iter().map(Some).collect()
                }
                ParStrategy::Steal => {
                    // A round-scoped pool: workers pop whole-shard tasks from
                    // a shared deque (the seed picks which end each worker
                    // pops, purely to diversify interleavings) and file
                    // results by shard index, so the merge below is identical
                    // to the static path whatever the steal schedule was.
                    let seed = self.config.par.resolved_steal_seed();
                    let workers = self
                        .config
                        .par
                        .resolved_threads()
                        .unwrap_or_else(|| {
                            std::thread::available_parallelism().map_or(1, usize::from)
                        })
                        .min(n_shards)
                        .max(1);
                    let queue = Mutex::new(tasks.into_iter().collect::<VecDeque<_>>());
                    let slots: Vec<ShardSlot<N::Msg>> =
                        (0..n_shards).map(|_| Mutex::new(None)).collect();
                    std::thread::scope(|scope| {
                        for w in 0..workers {
                            let queue = &queue;
                            let slots = &slots;
                            scope.spawn(move || loop {
                                let task = {
                                    let mut q = queue.lock().expect("steal queue poisoned");
                                    if (seed ^ w as u64) & 1 == 0 {
                                        q.pop_front()
                                    } else {
                                        q.pop_back()
                                    }
                                };
                                let Some(task) = task else { break };
                                let idx = task.idx;
                                let res = run_shard(task, topo, t, plan, link_capacity, record);
                                *slots[idx].lock().expect("result slot poisoned") = Some(res);
                            });
                        }
                    });
                    slots
                        .into_iter()
                        .map(|slot| slot.into_inner().expect("result slot poisoned"))
                        .collect()
                }
            };

        // Merge in shard order = node order: first error wins
        // deterministically, then deliveries, events, work and deltas.
        let mut delta = RoundDelta::default();
        let mut merged: Vec<ShardOut<N::Msg>> = Vec::with_capacity(n_shards);
        for slot in results {
            merged.push(slot.expect("every shard files a result")?);
        }
        for shard in merged {
            for (dest, ap, msg) in shard.deliveries {
                self.spare[dest].push((ap, msg));
            }
            for ev in shard.events {
                self.trace.record(ev);
            }
            for (node, units) in shard.work {
                self.apply_work(node, units);
            }
            delta.absorb(&shard.delta);
        }
        self.end_round(&delta);
        Ok(())
    }
}

impl<N: FabricNode> Fabric<N>
where
    N::Msg: Persist,
{
    /// Serializes the fabric's complete state at the current step
    /// boundary: a `RINGSNAP` container at [`FABRIC_SNAPSHOT_VERSION`]
    /// (ring images stay version 1; each reader rejects the other's tag).
    pub fn snapshot(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&FABRIC_SNAPSHOT_VERSION.to_le_bytes());
        let mut enc = Encoder::new();
        enc.str(&self.topo.spec());
        enc.u64(self.total_work);
        enc.u64(self.t);
        enc.u64(self.processed);
        enc.u8(match self.config.trace {
            TraceLevel::Off => 0,
            TraceLevel::Full => 1,
        });
        match &self.config.faults {
            None => enc.bool(false),
            Some(plan) => {
                enc.bool(true);
                encode_fault_plan(&mut enc, plan);
            }
        }
        encode_metrics(&mut enc, &self.metrics);
        enc.usize(self.trace.events().len());
        for ev in self.trace.events() {
            encode_event(&mut enc, ev);
        }
        for node in &self.nodes {
            let mut sub = Encoder::new();
            node.save_state(&mut sub)?;
            enc.bytes(&sub.into_bytes());
        }
        for inbox in &self.cur {
            enc.usize(inbox.len());
            for (port, msg) in inbox {
                enc.usize(*port);
                let mut sub = Encoder::new();
                msg.save(&mut sub);
                enc.bytes(&sub.into_bytes());
            }
        }
        for queues in [&self.queue_cw, &self.queue_ccw] {
            for queue in queues.iter() {
                enc.usize(queue.len());
                for staged in queue {
                    enc.u64(staged.ready);
                    enc.u64(staged.attempts);
                    let mut sub = Encoder::new();
                    staged.msg.save(&mut sub);
                    enc.bytes(&sub.into_bytes());
                }
            }
        }
        out.extend_from_slice(&enc.into_bytes());
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        Ok(out)
    }

    /// Reconstructs a fabric from a [`Fabric::snapshot`] image: `nodes`
    /// are freshly constructed policy nodes of the same configuration
    /// (restored via [`FabricNode::restore_state`]), `config` supplies
    /// the runtime knobs, and the fault plan embedded in the image (if
    /// any) replaces `config.faults` — fault schedules are part of the
    /// experiment, not the runtime.
    pub fn resume(
        topo: AnyTopology,
        mut nodes: Vec<N>,
        mut config: EngineConfig,
        data: &[u8],
    ) -> Result<Self, CheckpointError> {
        let magic = SNAPSHOT_MAGIC.len();
        if data.len() < magic + 4 + 8 {
            return Err(CheckpointError::UnexpectedEof);
        }
        if data[..magic] != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(CheckpointError::BadChecksum);
        }
        let mut dec = Decoder::new(&body[magic..]);
        let version = dec.u32()?;
        if version != FABRIC_SNAPSHOT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let spec = dec.str()?;
        if spec != topo.spec() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot is for topology {spec}, resuming on {}",
                topo.spec()
            )));
        }
        if nodes.len() != topo.len() {
            return Err(CheckpointError::Mismatch(format!(
                "{} nodes supplied for a {}-node topology",
                nodes.len(),
                topo.len()
            )));
        }
        let n = topo.len();
        let total_work = dec.u64()?;
        let t = dec.u64()?;
        let processed = dec.u64()?;
        let trace_level = match dec.u8()? {
            0 => TraceLevel::Off,
            1 => TraceLevel::Full,
            _ => return Err(CheckpointError::Corrupt("bad trace level tag")),
        };
        config.trace = trace_level;
        config.faults = if dec.bool()? {
            Some(decode_fault_plan(&mut dec)?)
        } else {
            None
        };
        let metrics = decode_metrics(&mut dec, n)?;
        let n_events = dec.usize()?;
        if n_events > body.len() {
            return Err(CheckpointError::Corrupt("event count exceeds image size"));
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(decode_event(&mut dec)?);
        }
        for node in nodes.iter_mut() {
            let blob = dec.bytes()?.to_vec();
            let mut sub = Decoder::new(&blob);
            node.restore_state(&mut sub)?;
            sub.finish()?;
        }
        let mut cur: Vec<Vec<(usize, N::Msg)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let len = dec.usize()?;
            if len > body.len() {
                return Err(CheckpointError::Corrupt("inbox count exceeds image size"));
            }
            let mut inbox = Vec::with_capacity(len);
            for _ in 0..len {
                let port = dec.usize()?;
                let blob = dec.bytes()?.to_vec();
                let mut sub = Decoder::new(&blob);
                let msg = N::Msg::load(&mut sub)?;
                sub.finish()?;
                inbox.push((port, msg));
            }
            cur.push(inbox);
        }
        let mut load_queues = || -> Result<Vec<LinkQueue<N::Msg>>, CheckpointError> {
            let mut queues = Vec::with_capacity(n);
            for _ in 0..n {
                let len = dec.usize()?;
                if len > body.len() {
                    return Err(CheckpointError::Corrupt("queue count exceeds image size"));
                }
                let mut queue = VecDeque::with_capacity(len);
                for _ in 0..len {
                    let ready = dec.u64()?;
                    let attempts = dec.u64()?;
                    let blob = dec.bytes()?.to_vec();
                    let mut sub = Decoder::new(&blob);
                    let msg = N::Msg::load(&mut sub)?;
                    sub.finish()?;
                    queue.push_back(Staged {
                        ready,
                        attempts,
                        msg,
                    });
                }
                queues.push(queue);
            }
            Ok(queues)
        };
        let queue_cw = load_queues()?;
        let queue_ccw = load_queues()?;
        dec.finish()?;
        Ok(Fabric {
            topo,
            nodes,
            total_work,
            config,
            t,
            processed,
            finished: false,
            cur,
            spare: (0..n).map(|_| Vec::new()).collect(),
            queue_cw,
            queue_ccw,
            metrics,
            trace: Trace::from_events(trace_level, events),
        })
    }

    /// Parses `(t, processed, total_work)` from a fabric snapshot header
    /// without reconstructing nodes (CLI inspection helper). Does not
    /// verify the checksum — use [`Fabric::resume`] for that.
    pub fn snapshot_summary(data: &[u8]) -> Result<(u64, u64, u64), CheckpointError> {
        let magic = SNAPSHOT_MAGIC.len();
        if data.len() < magic + 4 + 8 {
            return Err(CheckpointError::UnexpectedEof);
        }
        if data[..magic] != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut dec = Decoder::new(&data[magic..data.len() - 8]);
        let version = dec.u32()?;
        if version != FABRIC_SNAPSHOT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let _spec = dec.str()?;
        let total_work = dec.u64()?;
        let t = dec.u64()?;
        let processed = dec.u64()?;
        Ok((t, processed, total_work))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};
    use crate::oracle::check_fabric_run;

    /// A one-hop flooding balancer: every step, process one unit, then
    /// push one unit to each lower-id neighbor holding strictly less
    /// (estimated from announcements). Deliberately chatty so runs have
    /// messages on every port class of every topology.
    #[derive(Debug, Clone)]
    enum Gossip {
        /// `job_units` worth of work on the move.
        Jobs(u64),
        /// Load announcement (control, zero payload).
        Load(u64),
    }

    impl Payload for Gossip {
        fn job_units(&self) -> u64 {
            match self {
                Gossip::Jobs(u) => *u,
                Gossip::Load(_) => 0,
            }
        }
    }

    impl Persist for Gossip {
        fn save(&self, enc: &mut Encoder) {
            match self {
                Gossip::Jobs(u) => {
                    enc.u8(0);
                    enc.u64(*u);
                }
                Gossip::Load(x) => {
                    enc.u8(1);
                    enc.u64(*x);
                }
            }
        }

        fn load(dec: &mut Decoder<'_>) -> Result<Self, CheckpointError> {
            match dec.u8()? {
                0 => Ok(Gossip::Jobs(dec.u64()?)),
                1 => Ok(Gossip::Load(dec.u64()?)),
                _ => Err(CheckpointError::Corrupt("bad gossip tag")),
            }
        }
    }

    #[derive(Debug)]
    struct Diffuser {
        backlog: u64,
        est: Vec<u64>,
    }

    impl Diffuser {
        fn fleet(loads: &[u64], topo: &AnyTopology) -> Vec<Diffuser> {
            loads
                .iter()
                .enumerate()
                .map(|(i, &backlog)| Diffuser {
                    backlog,
                    est: vec![u64::MAX; topo.degree(i)],
                })
                .collect()
        }
    }

    impl FabricNode for Diffuser {
        type Msg = Gossip;

        fn on_step(
            &mut self,
            _ctx: &FabricCtx<'_>,
            inbox: &mut Vec<(usize, Gossip)>,
            out: &mut FabricOutbox<'_, Gossip>,
        ) -> u64 {
            for (port, msg) in inbox.drain(..) {
                match msg {
                    Gossip::Jobs(u) => self.backlog += u,
                    Gossip::Load(x) => self.est[port] = x,
                }
            }
            let work = if self.backlog > 0 {
                self.backlog -= 1;
                1
            } else {
                0
            };
            for port in 0..self.est.len() {
                if self.est[port] != u64::MAX
                    && self.backlog > self.est[port]
                    && self.backlog - self.est[port] >= 2
                {
                    self.backlog -= 1;
                    out.push(port, Gossip::Jobs(1));
                }
            }
            for port in 0..self.est.len() {
                out.push(port, Gossip::Load(self.backlog));
            }
            work
        }

        fn pending_work(&self) -> u64 {
            self.backlog
        }

        fn save_state(&self, enc: &mut Encoder) -> Result<(), CheckpointError> {
            enc.u64(self.backlog);
            enc.usize(self.est.len());
            for &e in &self.est {
                enc.u64(e);
            }
            Ok(())
        }

        fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CheckpointError> {
            self.backlog = dec.u64()?;
            let n = dec.usize()?;
            if n != self.est.len() {
                return Err(CheckpointError::Mismatch(format!(
                    "degree {} in snapshot, {} in node",
                    n,
                    self.est.len()
                )));
            }
            for e in self.est.iter_mut() {
                *e = dec.u64()?;
            }
            Ok(())
        }
    }

    fn shapes() -> Vec<AnyTopology> {
        vec![
            "ring:7".parse().unwrap(),
            "hier:3x4".parse().unwrap(),
            "torus:3x4".parse().unwrap(),
            "clique:9".parse().unwrap(),
        ]
    }

    fn skewed_loads(n: usize) -> Vec<u64> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as u64).collect()
    }

    fn full_cfg(faults: Option<FaultPlan>) -> EngineConfig {
        EngineConfig {
            trace: TraceLevel::Full,
            faults,
            ..EngineConfig::default()
        }
    }

    fn run_seq(topo: &AnyTopology, loads: &[u64], cfg: &EngineConfig) -> RunReport {
        let nodes = Diffuser::fleet(loads, topo);
        Fabric::new(topo.clone(), nodes, loads.iter().sum(), cfg.clone())
            .run()
            .unwrap()
    }

    #[test]
    fn every_shape_drains_to_completion() {
        for topo in shapes() {
            let loads = skewed_loads(topo.len());
            let report = run_seq(&topo, &loads, &full_cfg(None));
            assert_eq!(
                report.metrics.total_processed(),
                loads.iter().sum::<u64>(),
                "{}",
                topo.spec()
            );
            assert!(report.makespan > 0);
            let violations = check_fabric_run(&loads, &topo, &report, None);
            assert!(violations.is_empty(), "{}: {violations:?}", topo.spec());
        }
    }

    #[test]
    fn par_static_and_steal_match_sequential_bit_for_bit() {
        for topo in shapes() {
            let loads = skewed_loads(topo.len());
            let seq = run_seq(&topo, &loads, &full_cfg(None));
            for shards in [1, 2, 3, topo.len()] {
                for strategy in [ParStrategy::Static, ParStrategy::Steal] {
                    let mut cfg = full_cfg(None);
                    cfg.par.strategy = Some(strategy);
                    let nodes = Diffuser::fleet(&loads, &topo);
                    let par = Fabric::new(topo.clone(), nodes, loads.iter().sum(), cfg)
                        .par_run(shards)
                        .unwrap();
                    assert_eq!(seq, par, "{} shards={shards} {strategy:?}", topo.spec());
                }
            }
        }
    }

    fn stormy_plan(n: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.add_proc_fault(ProcFault {
            node: 1 % n,
            from: 2,
            until: 5,
            kind: ProcFaultKind::Stall,
        });
        plan.add_link_fault(LinkFault {
            node: 0,
            dir: Direction::Cw,
            from: 1,
            until: 4,
            kind: LinkFaultKind::Drop,
        });
        plan.add_link_fault(LinkFault {
            node: 2 % n,
            dir: Direction::Ccw,
            from: 0,
            until: 6,
            kind: LinkFaultKind::Delay(2),
        });
        plan.add_link_fault(LinkFault {
            node: 3 % n,
            dir: Direction::Cw,
            from: 0,
            until: 8,
            kind: LinkFaultKind::Bandwidth(1),
        });
        plan
    }

    #[test]
    fn faulted_runs_stay_equivalent_and_oracle_clean() {
        for topo in shapes() {
            let loads = skewed_loads(topo.len());
            let plan = stormy_plan(topo.len());
            let cfg = full_cfg(Some(plan.clone()));
            let seq = run_seq(&topo, &loads, &cfg);
            let violations = check_fabric_run(&loads, &topo, &seq, Some(&plan));
            assert!(violations.is_empty(), "{}: {violations:?}", topo.spec());
            for shards in [2, topo.len().div_ceil(2)] {
                for strategy in [ParStrategy::Static, ParStrategy::Steal] {
                    let mut cfg = cfg.clone();
                    cfg.par.strategy = Some(strategy);
                    let nodes = Diffuser::fleet(&loads, &topo);
                    let par = Fabric::new(topo.clone(), nodes, loads.iter().sum(), cfg)
                        .par_run(shards)
                        .unwrap();
                    assert_eq!(seq, par, "{} shards={shards} {strategy:?}", topo.spec());
                }
            }
        }
    }

    #[test]
    fn snapshot_resume_continues_bit_identically() {
        for topo in shapes() {
            let loads = skewed_loads(topo.len());
            let plan = stormy_plan(topo.len());
            let cfg = full_cfg(Some(plan));
            let uninterrupted = run_seq(&topo, &loads, &cfg);

            let nodes = Diffuser::fleet(&loads, &topo);
            let mut fab = Fabric::new(topo.clone(), nodes, loads.iter().sum(), cfg.clone());
            match fab.run_until(3).unwrap() {
                SpanOutcome::Paused { t, .. } => assert_eq!(t, 3),
                SpanOutcome::Done(_) => panic!("{} finished before the pause", topo.spec()),
            }
            let image = fab.snapshot().unwrap();
            let (t, _, total) = Fabric::<Diffuser>::snapshot_summary(&image).unwrap();
            assert_eq!((t, total), (3, loads.iter().sum::<u64>()));

            // Resume into fresh nodes; continue with the *parallel* driver
            // to cross executors mid-run.
            let fresh = Diffuser::fleet(&loads, &topo);
            let mut resumed =
                Fabric::resume(topo.clone(), fresh, EngineConfig::default(), &image).unwrap();
            let finished = resumed.par_run(2).unwrap();
            assert_eq!(uninterrupted, finished, "{}", topo.spec());
        }
    }

    #[test]
    fn snapshot_rejects_wrong_topology_and_ring_version() {
        let topo: AnyTopology = "torus:3x4".parse().unwrap();
        let loads = skewed_loads(topo.len());
        let nodes = Diffuser::fleet(&loads, &topo);
        let mut fab = Fabric::new(topo.clone(), nodes, loads.iter().sum(), full_cfg(None));
        fab.run_until(1).unwrap();
        let image = fab.snapshot().unwrap();

        let other: AnyTopology = "torus:4x3".parse().unwrap();
        let fresh = Diffuser::fleet(&skewed_loads(other.len()), &other);
        let err = Fabric::resume(other, fresh, EngineConfig::default(), &image).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err:?}");

        // A ring snapshot (version 1) must be refused by the fabric
        // reader, and a fabric image by the ring reader.
        let ring_reader = crate::checkpoint::Snapshot::from_bytes(&image).unwrap_err();
        assert_eq!(
            ring_reader,
            CheckpointError::BadVersion {
                found: FABRIC_SNAPSHOT_VERSION
            }
        );
    }

    /// A local-drain ring policy for the lift test.
    struct Drain {
        remaining: u64,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}

    impl Payload for NoMsg {
        fn job_units(&self) -> u64 {
            match *self {}
        }
    }

    impl Node for Drain {
        type Msg = NoMsg;

        fn on_step(&mut self, _ctx: &NodeCtx, _io: &mut StepIo<'_, NoMsg>) -> u64 {
            if self.remaining > 0 {
                self.remaining -= 1;
                1
            } else {
                0
            }
        }

        fn pending_work(&self) -> u64 {
            self.remaining
        }
    }

    #[test]
    fn ring_lift_matches_the_ring_engine_on_a_local_drain() {
        let loads = [4u64, 0, 2, 7, 1];
        let cfg = EngineConfig {
            trace: TraceLevel::Full,
            ..EngineConfig::default()
        };
        let ring_nodes: Vec<Drain> = loads.iter().map(|&x| Drain { remaining: x }).collect();
        let ring = crate::engine::Engine::new(ring_nodes, loads.iter().sum(), cfg.clone())
            .run()
            .unwrap();

        let topo: AnyTopology = "ring:5".parse().unwrap();
        let lifted: Vec<RingLift<Drain>> = loads
            .iter()
            .map(|&x| RingLift::new(Drain { remaining: x }))
            .collect();
        let fab = Fabric::new(topo, lifted, loads.iter().sum(), cfg)
            .run()
            .unwrap();

        assert_eq!(ring.makespan, fab.makespan);
        assert_eq!(ring.metrics, fab.metrics);
        // A send-free drain produces only Processed events, which the two
        // engines spell identically.
        assert_eq!(ring.trace.events(), fab.trace.events());
    }

    #[test]
    fn outbox_rejects_out_of_range_ports() {
        let topo: AnyTopology = "ring:3".parse().unwrap();
        struct Rogue;
        impl FabricNode for Rogue {
            type Msg = Gossip;
            fn on_step(
                &mut self,
                _ctx: &FabricCtx<'_>,
                _inbox: &mut Vec<(usize, Gossip)>,
                out: &mut FabricOutbox<'_, Gossip>,
            ) -> u64 {
                out.push(2, Gossip::Load(0)); // rings only have ports 0/1
                0
            }
            fn pending_work(&self) -> u64 {
                1
            }
        }
        let mut fab = Fabric::new(topo, vec![Rogue, Rogue, Rogue], 3, EngineConfig::default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fab.run()));
        assert!(err.is_err());
    }
}
