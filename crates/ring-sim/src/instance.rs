//! Problem instances: initial job placements on the ring.
//!
//! Two instance kinds mirror the paper:
//!
//! * [`Instance`] — unit-sized jobs (§2–§3, §6, §7): processor `i` starts
//!   with `x_i` identical jobs, so a `Vec<u64>` of counts suffices.
//! * [`SizedInstance`] — arbitrary-sized jobs (§4.2): processor `i` starts
//!   with jobs `J_{i,1}, …, J_{i,n(i)}` of processing times `p_{i,j}`.

use crate::topology::RingTopology;
use serde::{Deserialize, Serialize};

/// Identifier of a job, unique within an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A job with an arbitrary integral processing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// Processor on which the job was resident at time 0.
    pub origin: usize,
    /// Processing time `p_{i,j} >= 1`.
    pub size: u64,
}

/// A unit-job instance: `x_i` unit jobs start on processor `i` at time 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    loads: Vec<u64>,
}

impl Instance {
    /// Builds an instance from the per-processor initial load vector.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty.
    pub fn from_loads(loads: Vec<u64>) -> Self {
        assert!(
            !loads.is_empty(),
            "an instance needs at least one processor"
        );
        Instance { loads }
    }

    /// An instance of `m` empty processors.
    pub fn empty(m: usize) -> Self {
        Instance::from_loads(vec![0; m])
    }

    /// Builds an instance with all `n` jobs on a single processor `at` of an
    /// `m`-ring — the paper's "concentrated on one node" distribution.
    pub fn concentrated(m: usize, at: usize, n: u64) -> Self {
        let mut loads = vec![0; m];
        loads[at] = n;
        Instance::from_loads(loads)
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.loads.len()
    }

    /// The topology this instance lives on.
    #[inline]
    pub fn topology(&self) -> RingTopology {
        RingTopology::new(self.loads.len())
    }

    /// Initial load `x_i` of processor `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// The full initial load vector.
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Total work `n = Σ x_i`.
    pub fn total_work(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// The largest initial per-processor load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Sum of the loads of the `k` processors of the clockwise arc starting
    /// at `start` — the quantity `x_i + … + x_{i+k-1}` of Lemma 1.
    ///
    /// `k` is clamped to `m` (an arc cannot contain a processor twice).
    pub fn arc_work(&self, start: usize, k: usize) -> u64 {
        let m = self.num_processors();
        let k = k.min(m);
        self.topology().arc(start, k).map(|p| self.loads[p]).sum()
    }

    /// Expands the instance into explicit unit jobs (used by validators and
    /// by the sized-job algorithms when fed a unit instance).
    pub fn to_sized(&self) -> SizedInstance {
        let mut jobs: Vec<Vec<Job>> = Vec::with_capacity(self.loads.len());
        let mut next = 0u64;
        for (i, &x) in self.loads.iter().enumerate() {
            let mut here = Vec::with_capacity(x as usize);
            for _ in 0..x {
                here.push(Job {
                    id: JobId(next),
                    origin: i,
                    size: 1,
                });
                next += 1;
            }
            jobs.push(here);
        }
        SizedInstance { jobs }
    }
}

/// An arbitrary-job-size instance (§4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedInstance {
    jobs: Vec<Vec<Job>>,
}

impl SizedInstance {
    /// Builds an instance from per-processor job size lists. Jobs are
    /// assigned fresh sequential [`JobId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any job size is zero.
    pub fn from_sizes(sizes: Vec<Vec<u64>>) -> Self {
        assert!(
            !sizes.is_empty(),
            "an instance needs at least one processor"
        );
        let mut next = 0u64;
        let jobs = sizes
            .into_iter()
            .enumerate()
            .map(|(i, here)| {
                here.into_iter()
                    .map(|size| {
                        assert!(size >= 1, "job sizes must be at least 1");
                        let j = Job {
                            id: JobId(next),
                            origin: i,
                            size,
                        };
                        next += 1;
                        j
                    })
                    .collect()
            })
            .collect();
        SizedInstance { jobs }
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.jobs.len()
    }

    /// The topology this instance lives on.
    #[inline]
    pub fn topology(&self) -> RingTopology {
        RingTopology::new(self.jobs.len())
    }

    /// The jobs initially resident on processor `i`.
    #[inline]
    pub fn jobs_at(&self, i: usize) -> &[Job] {
        &self.jobs[i]
    }

    /// Iterator over all jobs in the instance.
    pub fn all_jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter().flatten()
    }

    /// Number of jobs in the instance.
    pub fn num_jobs(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }

    /// Initial *work* `x_i` of processor `i`: the sum of its job sizes
    /// (the paper redefines `x_i` this way in §4.2).
    pub fn work_at(&self, i: usize) -> u64 {
        self.jobs[i].iter().map(|j| j.size).sum()
    }

    /// The per-processor initial work vector.
    pub fn work_vector(&self) -> Vec<u64> {
        (0..self.num_processors())
            .map(|i| self.work_at(i))
            .collect()
    }

    /// Total work `n = Σ x_i`.
    pub fn total_work(&self) -> u64 {
        self.all_jobs().map(|j| j.size).sum()
    }

    /// The maximum job size `p_max`, or 0 for an empty instance.
    pub fn p_max(&self) -> u64 {
        self.all_jobs().map(|j| j.size).max().unwrap_or(0)
    }

    /// Sum of work on the `k`-processor clockwise arc starting at `start`.
    pub fn arc_work(&self, start: usize, k: usize) -> u64 {
        let m = self.num_processors();
        let k = k.min(m);
        self.topology().arc(start, k).map(|p| self.work_at(p)).sum()
    }

    /// Collapses to a unit instance of per-processor *work* (loses job
    /// boundaries); useful for computing work-based lower bounds, which the
    /// paper notes remain valid for sized jobs ("the lower bound holds even
    /// if … the jobs are of different sizes").
    pub fn to_work_instance(&self) -> Instance {
        Instance::from_loads(self.work_vector())
    }
}

impl From<&Instance> for SizedInstance {
    fn from(inst: &Instance) -> Self {
        inst.to_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_instance_basics() {
        let inst = Instance::from_loads(vec![3, 0, 2, 7]);
        assert_eq!(inst.num_processors(), 4);
        assert_eq!(inst.total_work(), 12);
        assert_eq!(inst.max_load(), 7);
        assert_eq!(inst.load(2), 2);
    }

    #[test]
    fn arc_work_wraps() {
        let inst = Instance::from_loads(vec![1, 2, 4, 8]);
        assert_eq!(inst.arc_work(3, 2), 8 + 1);
        assert_eq!(inst.arc_work(0, 4), 15);
        // k beyond m clamps to the whole ring.
        assert_eq!(inst.arc_work(2, 9), 15);
    }

    #[test]
    fn concentrated_constructor() {
        let inst = Instance::concentrated(10, 3, 100);
        assert_eq!(inst.load(3), 100);
        assert_eq!(inst.total_work(), 100);
        assert_eq!(inst.loads().iter().filter(|&&x| x > 0).count(), 1);
    }

    #[test]
    fn to_sized_expands_unit_jobs() {
        let inst = Instance::from_loads(vec![2, 0, 1]);
        let sized = inst.to_sized();
        assert_eq!(sized.num_jobs(), 3);
        assert_eq!(sized.total_work(), 3);
        assert_eq!(sized.p_max(), 1);
        assert_eq!(sized.jobs_at(0).len(), 2);
        assert_eq!(sized.jobs_at(1).len(), 0);
        assert_eq!(sized.jobs_at(2)[0].origin, 2);
        // ids unique
        let mut ids: Vec<u64> = sized.all_jobs().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn sized_instance_work_accounting() {
        let inst = SizedInstance::from_sizes(vec![vec![5, 1], vec![], vec![2]]);
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.work_at(0), 6);
        assert_eq!(inst.work_at(1), 0);
        assert_eq!(inst.total_work(), 8);
        assert_eq!(inst.p_max(), 5);
        assert_eq!(inst.work_vector(), vec![6, 0, 2]);
        assert_eq!(inst.to_work_instance().loads(), &[6, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_job_rejected() {
        let _ = SizedInstance::from_sizes(vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_instance_rejected() {
        let _ = Instance::from_loads(vec![]);
    }
}
