//! # ring-sim — synchronous ring-network simulation substrate
//!
//! This crate implements the machine model of *"Job Scheduling in Rings"*
//! (Fizzano, Karger, Stein, Wein — SPAA 1994, §2):
//!
//! * `m` identical processors arranged in a ring, numbered `0..m` (the paper
//!   numbers them `1..=m`; we use zero-based indices). All index arithmetic
//!   is modulo `m`.
//! * Time advances in synchronous unit steps. In one step every processor
//!   can **receive** messages from each neighbor, **send** messages to each
//!   neighbor, and **process one unit of work**.
//! * A message sent at time `t` is received at time `t + 1`, so migrating a
//!   job between processors at ring distance `d` takes `d` time.
//! * Links are either *uncapacitated* (any number of jobs per step, the
//!   model of §2–§6) or *unit-capacity* (one job and one control message per
//!   link direction per step, the model of §7).
//!
//! The crate is policy-agnostic: scheduling algorithms implement the
//! [`Node`] trait and are executed by the [`Engine`]. The same policy code
//! can also be run by the thread-per-processor executor in the `ring-net`
//! crate, which demonstrates that the policies use only local information.
//!
//! ```
//! use ring_sim::{Instance, RingTopology};
//!
//! let inst = Instance::from_loads(vec![5, 0, 0, 3]);
//! assert_eq!(inst.num_processors(), 4);
//! assert_eq!(inst.total_work(), 8);
//! let topo = RingTopology::new(4);
//! assert_eq!(topo.distance(0, 3), 1); // rings wrap around
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod instance;
pub mod metrics;
pub mod oracle;
pub mod stream;
pub mod topology;
pub mod trace;
pub mod tracefile;
pub mod validate;
pub mod viz;

pub use checkpoint::{
    CheckpointError, Decoder, Encoder, Persist, Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use engine::{
    Audit, Coalesce, DropRecord, Engine, EngineConfig, Inbox, LinkCapacity, Node, NodeCtx, Outbox,
    ParConfig, ParStrategy, Payload, Quiescence, RunReport, SpanOutcome, StepIo,
};
pub use error::SimError;
pub use fabric::{Fabric, FabricCtx, FabricNode, FabricOutbox, RingLift, FABRIC_SNAPSHOT_VERSION};
pub use fault::{FaultPlan, LinkFault, LinkFaultKind, ProcFault, ProcFaultKind};
pub use instance::{Instance, Job, JobId, SizedInstance};
pub use metrics::{LinkStats, Metrics, Observability, StepSample};
pub use oracle::{check_fabric_run, check_report, check_run, OracleViolation};
pub use ring_topology::{AnyTopology, Clique, Dir4, HierRing, Topology, Torus2D};
pub use topology::{Direction, RingTopology};
pub use trace::{DropKind, Event, Trace, TraceLevel};
pub use tracefile::{
    event_step, violation_step, TraceDiff, TraceFile, TraceFileError, TRACE_MAGIC, TRACE_VERSION,
    TRACE_VERSION_FABRIC,
};
pub use validate::{validate_run, Violation};
pub use viz::render_load_timeline;
