//! The adversarial script catalog: the fixed, named instances the golden
//! ratio table and the `ringsched compete` subcommand measure.
//!
//! Every case is deterministic (seeded generators only) and sized so the
//! exact offline solver answers in well under a second per release wave —
//! the catalog is a regression gate, not a stress test. It covers the
//! adversary families this crate ships: §3 spike trains, the §5 I/J
//! indistinguishability pair behind the 1.06 distributed lower bound,
//! migration-punishing alternations, page-migration hotspot walks, plus
//! two sanity anchors (a concentrated burst and a uniform random wave)
//! whose denominators are exact by construction.

use crate::harness::Script;
use ring_workloads::adversary::{migration_punisher, section5_pair, spike_train};
use ring_workloads::pagemig::PageMigration;

/// Builds the full adversarial catalog, in fixed report order.
pub fn compete_catalog() -> Vec<Script> {
    let (sec5_i, sec5_j) = section5_pair(60, 3, 48);
    vec![
        Script::new("burst-m32-n400", 32, &[(0, 0, 400)]),
        Script::new("uniform-m24-w40-s5", 24, &uniform_wave(24, 40, 5)),
        Script::new("spike-m32-l4-k8-w3-p20", 32, &spike_train(32, 4, 8, 3, 20)),
        Script::new(
            "spike-m64-l6-k16-w4-p30",
            64,
            &spike_train(64, 6, 16, 4, 30),
        ),
        Script::new("sec5-i-w60-z3-m48", 48, &sec5_i),
        Script::new("sec5-j-w60-z3-m48", 48, &sec5_j),
        Script::new(
            "punish-m32-b60-w4-s10",
            32,
            &migration_punisher(32, 60, 4, 10),
        ),
        Script::new(
            "punish-m16-b40-w6-s4",
            16,
            &migration_punisher(16, 40, 6, 4),
        ),
        Script::new(
            "pagemig-m32-w6-p12-b48-s7",
            32,
            &PageMigration::new(32, 6, 12, 48).script(7),
        ),
        Script::new(
            "pagemig-m64-w5-p16-b80-s11",
            64,
            &PageMigration::new(64, 5, 16, 80).script(11),
        ),
    ]
}

/// Looks up one catalog script by its name (`None` if unknown).
pub fn compete_case(name: &str) -> Option<Script> {
    compete_catalog().into_iter().find(|s| s.name == name)
}

/// A single t = 0 wave of seeded uniform random loads (exact-denominator
/// sanity anchor: one release wave means the offline solver answers
/// exactly).
fn uniform_wave(m: usize, per_processor_max: u64, seed: u64) -> Vec<(u64, usize, u64)> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..m)
        .filter_map(|p| {
            let c = rng.gen_range(0..=per_processor_max);
            (c > 0).then_some((0, p, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_is_deterministic_and_named_uniquely() {
        let a = compete_catalog();
        let b = compete_catalog();
        let names: BTreeSet<&str> = a.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), a.len(), "duplicate catalog names");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrivals, y.arrivals, "{}", x.name);
            assert_eq!(x.m, y.m, "{}", x.name);
        }
    }

    #[test]
    fn catalog_covers_every_adversary_family() {
        let names: Vec<String> = compete_catalog().iter().map(|s| s.name.clone()).collect();
        for family in ["burst", "uniform", "spike", "sec5", "punish", "pagemig"] {
            assert!(
                names.iter().any(|n| n.starts_with(family)),
                "family {family} missing from {names:?}"
            );
        }
    }

    #[test]
    fn catalog_cases_are_nonempty_and_in_range() {
        for s in compete_catalog() {
            assert!(s.total_work() > 0, "{} is empty", s.name);
            assert!(s.arrivals.iter().all(|a| a.processor < s.m), "{}", s.name);
        }
    }
}
