//! # ring-compete — the competitive-analysis harness
//!
//! The repo computes exact optima (`ring-opt`) and runs online schedulers
//! (the six §6 bucket algorithms on the engine, the `ring-sched::online`
//! policy suite, and the `ring-service` epoch loop) — this crate closes
//! the loop between them. It takes any arrival script (or any service
//! completion log, via the deterministic virtual-time protocol), re-solves
//! the revealed instance *offline* with `ring-opt`'s exact solver —
//! extended with release-time-aware lower bounds where the flow solver
//! does not apply — and reports the empirical competitive ratio
//! `online makespan / offline optimum`.
//!
//! Every denominator is either the exact dynamic optimum or an explicitly
//! flagged certified lower bound (mirroring the paper's §6.2, where
//! intractable optima were substituted by lower bounds); either way the
//! reported ratio is never an overestimate of the true competitive ratio,
//! and because every online run is a feasible schedule of the offline
//! model, it is never below 1.
//!
//! ```
//! use ring_compete::{measure_suite, Script};
//!
//! // A spike train on a 32-ring, measured for all six §6 algorithms plus
//! // the migration-budget and multi-list online policies.
//! let script = Script::new(
//!     "spikes",
//!     32,
//!     &ring_workloads::adversary::spike_train(32, 4, 8, 3, 20),
//! );
//! for row in measure_suite(&script, None) {
//!     assert!(row.ratio >= 1.0, "{row:?}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod harness;
pub mod replay;

pub use catalog::{compete_case, compete_catalog};
pub use harness::{
    measure, measure_suite, policy_by_name, policy_suite, render_table, report_digest, CaseRatio,
    Policy, Script,
};
pub use replay::{ratio_from_log, LogRatio};
