//! The measurement core: run a policy on an arrival script, re-solve the
//! revealed instance offline, report the ratio.
//!
//! A [`Script`] is a named dynamic instance. A [`Policy`] is anything the
//! repo can run online against it: one of the six §6 bucket algorithms on
//! the engine, or one of the assignment-level policies from
//! `ring_sched::online`. [`measure`] produces one [`CaseRatio`] row;
//! [`measure_suite`] sweeps the whole [`policy_suite`]. Reports are
//! rendered with [`render_table`] and fingerprinted with [`report_digest`]
//! (FNV-1a, the same construction as `ring_service::report::log_digest`)
//! so regression tests can pin a whole table to one `u64`.

use ring_opt::{competitive_ratio, offline_optimum, OfflineOptimum, Release, SolverBudget};
use ring_sched::dynamic::{run_dynamic, run_dynamic_par, Arrival, DynamicInstance};
use ring_sched::online::{run_online, OnlinePolicy};
use ring_sched::UnitConfig;

/// A named arrival script on an `m`-ring — the unit the harness measures.
#[derive(Debug, Clone)]
pub struct Script {
    /// Display name (catalog key, golden-table row prefix).
    pub name: String,
    /// Ring size.
    pub m: usize,
    /// Time-sorted arrivals.
    pub arrivals: Vec<Arrival>,
}

impl Script {
    /// Wraps a raw `(time, processor, count)` script (the
    /// `ring_workloads::ArrivalScript` shape) for measurement.
    ///
    /// # Panics
    ///
    /// Panics if any processor index is out of range for `m`.
    pub fn new(name: &str, m: usize, script: &[(u64, usize, u64)]) -> Self {
        let arrivals: Vec<Arrival> = script
            .iter()
            .map(|&(time, processor, count)| {
                assert!(processor < m, "{name}: processor {processor} >= m {m}");
                Arrival {
                    time,
                    processor,
                    count,
                }
            })
            .collect();
        // DynamicInstance::new sorts by time; re-extract so the stored
        // arrivals are canonical whatever order the caller supplied.
        let inst = DynamicInstance::new(m, arrivals);
        Script {
            name: name.to_string(),
            m,
            arrivals: inst.arrivals().to_vec(),
        }
    }

    /// The script as a dynamic engine instance.
    pub fn dynamic(&self) -> DynamicInstance {
        DynamicInstance::new(self.m, self.arrivals.clone())
    }

    /// The script as ring-opt release records.
    pub fn releases(&self) -> Vec<Release> {
        self.arrivals
            .iter()
            .map(|a| Release {
                time: a.time,
                processor: a.processor,
                count: a.count,
            })
            .collect()
    }

    /// Total work in the script.
    pub fn total_work(&self) -> u64 {
        self.arrivals.iter().map(|a| a.count).sum()
    }
}

/// One online scheduler the harness can measure.
#[derive(Debug, Clone)]
pub enum Policy {
    /// A §6 bucket algorithm run on the full distributed engine.
    Engine(UnitConfig),
    /// An assignment-level policy from `ring_sched::online`.
    Assignment(OnlinePolicy),
}

impl Policy {
    /// Display name: the paper name for engine algorithms (`"C1"`), the
    /// policy tag for assignment policies (`"MIG"`, `"ML"`).
    pub fn name(&self) -> String {
        match self {
            Policy::Engine(cfg) => cfg.name(),
            Policy::Assignment(p) => p.name().to_string(),
        }
    }
}

/// The full measurement suite: the six §6 algorithms plus the two online
/// assignment policies, in fixed report order.
pub fn policy_suite() -> Vec<Policy> {
    let mut suite: Vec<Policy> = UnitConfig::all_six()
        .into_iter()
        .map(|(_, cfg)| Policy::Engine(cfg))
        .collect();
    suite.extend(
        OnlinePolicy::suite()
            .into_iter()
            .map(|(_, p)| Policy::Assignment(p)),
    );
    suite
}

/// Looks up one suite policy by its case-insensitive display name
/// (`a1`/`b1`/`c1`/`a2`/`b2`/`c2`/`mig`/`ml`); `None` if unknown.
pub fn policy_by_name(name: &str) -> Option<Policy> {
    policy_suite()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

/// One measured (script, policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseRatio {
    /// Script name.
    pub case: String,
    /// Policy name.
    pub policy: String,
    /// Online makespan achieved by the policy.
    pub online: u64,
    /// Offline denominator value.
    pub denominator: u64,
    /// Whether the denominator is the exact optimum (`false` = certified
    /// lower bound, flagged `*` in rendered tables).
    pub exact: bool,
    /// `online / denominator` (1.0 for an empty script).
    pub ratio: f64,
}

impl CaseRatio {
    /// The denominator as the ring-opt result type.
    pub fn offline(&self) -> OfflineOptimum {
        if self.exact {
            OfflineOptimum::Exact(self.denominator)
        } else {
            OfflineOptimum::LowerBound(self.denominator)
        }
    }
}

/// Runs `policy` on `script` and measures it against the offline optimum.
///
/// `shards` routes engine policies through the arc-parallel executor
/// (`run_dynamic_par`, bit-identical to the sequential engine); it is
/// irrelevant for assignment policies. The online makespan is handed to
/// the offline solver as its upper hint, so the exact search never scans
/// past what the online run already achieved.
///
/// # Panics
///
/// Panics if the engine rejects the instance (step-budget exhaustion —
/// impossible for finite scripts within the engine's widened budget) or if
/// an online run undercuts its own certified lower bound, which would be a
/// soundness bug worth crashing on.
pub fn measure(script: &Script, policy: &Policy, shards: Option<usize>) -> CaseRatio {
    let online = match policy {
        Policy::Engine(cfg) => {
            let inst = script.dynamic();
            let run = match shards {
                Some(s) => run_dynamic_par(&inst, cfg, s),
                None => run_dynamic(&inst, cfg),
            };
            run.unwrap_or_else(|e| panic!("{}/{}: engine error {e:?}", script.name, policy.name()))
                .makespan
        }
        Policy::Assignment(p) => run_online(script.m, &script.arrivals, p).makespan,
    };
    let denom = offline_optimum(
        script.m,
        &script.releases(),
        Some(online),
        &SolverBudget::default(),
    );
    CaseRatio {
        case: script.name.clone(),
        policy: policy.name(),
        online,
        denominator: denom.value(),
        exact: denom.is_exact(),
        ratio: competitive_ratio(online, &denom),
    }
}

/// Measures every policy in [`policy_suite`] on `script`.
pub fn measure_suite(script: &Script, shards: Option<usize>) -> Vec<CaseRatio> {
    policy_suite()
        .iter()
        .map(|p| measure(script, p, shards))
        .collect()
}

/// FNV-1a fingerprint of a ratio report (same construction as the service
/// log digest): bit-identical reports have equal digests, so a whole table
/// pins to one `u64` in regression tests.
pub fn report_digest(rows: &[CaseRatio]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in rows {
        eat(r.case.as_bytes());
        eat(r.policy.as_bytes());
        eat(&r.online.to_le_bytes());
        eat(&r.denominator.to_le_bytes());
        eat(&[u8::from(r.exact)]);
        eat(&r.ratio.to_bits().to_le_bytes());
    }
    h
}

/// Renders rows as an aligned text table. Lower-bound denominators are
/// flagged `*` (their ratios are upper estimates of the true ratio, as in
/// the paper's §6.2 substitution).
pub fn render_table(rows: &[CaseRatio]) -> String {
    let mut out = String::from("case                           policy  online  offline  ratio\n");
    for r in rows {
        let flag = if r.exact { " " } else { "*" };
        out.push_str(&format!(
            "{:<30} {:>6} {:>7} {:>7}{} {:>6.3}\n",
            r.case, r.policy, r.online, r.denominator, flag, r.ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike() -> Script {
        Script::new(
            "spike",
            16,
            &ring_workloads::adversary::spike_train(16, 3, 4, 2, 12),
        )
    }

    #[test]
    fn suite_covers_six_engine_algorithms_plus_two_policies() {
        let names: Vec<String> = policy_suite().iter().map(Policy::name).collect();
        assert_eq!(names, ["A1", "B1", "C1", "A2", "B2", "C2", "MIG", "ML"]);
    }

    #[test]
    fn every_ratio_is_at_least_one() {
        for row in measure_suite(&spike(), None) {
            assert!(row.ratio >= 1.0, "{row:?}");
            assert!(row.online >= row.denominator, "{row:?}");
        }
    }

    #[test]
    fn sequential_and_sharded_measurements_agree() {
        let s = spike();
        for p in policy_suite() {
            assert_eq!(
                measure(&s, &p, None),
                measure(&s, &p, Some(4)),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn single_wave_scripts_get_exact_denominators() {
        let s = Script::new("burst", 8, &[(0, 0, 16)]);
        for row in measure_suite(&s, None) {
            assert!(row.exact, "{row:?}");
            assert_eq!(row.denominator, 4, "{row:?}"); // 16 jobs / 8-ring staircase optimum
        }
    }

    #[test]
    fn empty_script_measures_ratio_one() {
        let s = Script::new("empty", 8, &[]);
        let row = measure(&s, &Policy::Engine(UnitConfig::c1()), None);
        assert_eq!((row.online, row.denominator, row.ratio), (0, 0, 1.0));
        assert!(row.exact);
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let rows = measure_suite(&spike(), None);
        let d = report_digest(&rows);
        assert_eq!(d, report_digest(&rows));
        let mut reordered = rows.clone();
        reordered.swap(0, 1);
        assert_ne!(d, report_digest(&reordered));
        let mut bumped = rows;
        bumped[0].online += 1;
        assert_ne!(d, report_digest(&bumped));
    }

    #[test]
    fn render_flags_lower_bound_denominators() {
        let rows = vec![
            CaseRatio {
                case: "a".into(),
                policy: "C1".into(),
                online: 10,
                denominator: 10,
                exact: true,
                ratio: 1.0,
            },
            CaseRatio {
                case: "b".into(),
                policy: "C1".into(),
                online: 12,
                denominator: 10,
                exact: false,
                ratio: 1.2,
            },
        ];
        let table = render_table(&rows);
        let exact_row = table.lines().nth(1).unwrap();
        assert!(
            exact_row.ends_with("1.000") && !exact_row.contains('*'),
            "{table}"
        );
        assert!(table.contains("10*"), "{table}");
    }

    #[test]
    #[should_panic(expected = "processor 9 >= m 8")]
    fn out_of_range_processor_rejected() {
        let _ = Script::new("bad", 8, &[(0, 9, 1)]);
    }
}
