//! Measuring live service runs: competitive ratios straight from a
//! completion log.
//!
//! The service's virtual-time protocol makes its completion log a pure
//! function of the submission script, so the log alone determines both
//! sides of the ratio — the online cost (last completion boundary) and the
//! revealed instance (completed `(tag, processor, jobs)` triples) that the
//! offline solver re-solves. No engine re-run, no service re-run: replay
//! is a pure fold over the log.

use crate::harness::Script;
use ring_opt::{competitive_ratio, offline_optimum, SolverBudget};
use ring_service::{online_makespan, revealed_script, LogEntry};

/// Competitive ratio of a service run, reconstructed from its log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRatio {
    /// Online makespan: the last completion boundary in the log.
    pub online: u64,
    /// Offline denominator for the revealed (completed) instance.
    pub denominator: u64,
    /// Whether the denominator is exact.
    pub exact: bool,
    /// `online / denominator`.
    pub ratio: f64,
    /// Jobs in the revealed instance (shed batches excluded).
    pub completed_jobs: u64,
}

/// Replays a completion log from an `m`-ring service and measures it
/// against the offline optimum of the instance it reveals.
///
/// Shed batches are excluded from both sides (the service never did that
/// work); an empty or all-shed log measures as ratio 1 on the empty
/// instance.
pub fn ratio_from_log(m: usize, log: &[LogEntry]) -> LogRatio {
    let script = Script::new("service-log", m, &revealed_script(log));
    let online = online_makespan(log);
    let denom = offline_optimum(
        m,
        &script.releases(),
        Some(online),
        &SolverBudget::default(),
    );
    LogRatio {
        online,
        denominator: denom.value(),
        exact: denom.is_exact(),
        ratio: competitive_ratio(online, &denom),
        completed_jobs: script.total_work(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_service::{Service, ServiceConfig};

    fn drive(cfg: ServiceConfig, script: &[(u64, usize, u64)]) -> Vec<LogEntry> {
        let (service, handles) = Service::start(cfg, 1);
        let h = &handles[0];
        for &(t, p, c) in script {
            h.advance_to(t);
            h.try_submit(p, c);
        }
        h.close();
        service.await_idle();
        service.completion_log()
    }

    #[test]
    fn service_run_measures_a_sane_ratio() {
        let log = drive(
            ServiceConfig::new(8).with_epoch(16),
            &[(0, 0, 10), (0, 3, 6), (4, 5, 4)],
        );
        let r = ratio_from_log(8, &log);
        assert_eq!(r.completed_jobs, 20);
        assert!(r.online >= r.denominator && r.ratio >= 1.0, "{r:?}");
        // The service pays epoch-boundary rounding, so the ratio is a real
        // overhead measurement, not a tautology.
        assert!(r.ratio.is_finite());
    }

    #[test]
    fn empty_log_is_ratio_one() {
        let r = ratio_from_log(8, &[]);
        assert_eq!(
            r,
            LogRatio {
                online: 0,
                denominator: 0,
                exact: true,
                ratio: 1.0,
                completed_jobs: 0,
            }
        );
    }

    #[test]
    fn replay_is_deterministic_across_identical_runs() {
        let script = [(0, 1, 12), (2, 4, 3), (2, 6, 9), (10, 0, 2)];
        let a = drive(ServiceConfig::new(8).with_epoch(8), &script);
        let b = drive(ServiceConfig::new(8).with_epoch(8), &script);
        assert_eq!(ratio_from_log(8, &a), ratio_from_log(8, &b));
    }
}
