//! The 2D torus: a ring of rings in both dimensions.
//!
//! Moved here from `ring-mesh` (which keeps its algorithm, bounds, and
//! exact math, and re-exports these types) so the torus runs on the same
//! fabric engine as every other shape.

use crate::Topology;
use serde::{Deserialize, Serialize};

/// One of the four torus directions. The discriminant order North, East,
/// South, West is also the port order ([`Dir4::index`]), so
/// `opposite()` is `(port + 2) % 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir4 {
    /// Row − 1 (wrapping).
    North,
    /// Column + 1 (wrapping) — the row-phase travel direction.
    East,
    /// Row + 1 (wrapping) — the column-phase travel direction.
    South,
    /// Column − 1 (wrapping).
    West,
}

impl Dir4 {
    /// All four directions in engine order.
    pub const ALL: [Dir4; 4] = [Dir4::North, Dir4::East, Dir4::South, Dir4::West];

    /// The direction messages *arrive from* when sent this way.
    pub fn opposite(self) -> Dir4 {
        match self {
            Dir4::North => Dir4::South,
            Dir4::East => Dir4::West,
            Dir4::South => Dir4::North,
            Dir4::West => Dir4::East,
        }
    }

    /// Index into 4-element direction arrays — and the port number.
    pub fn index(self) -> usize {
        match self {
            Dir4::North => 0,
            Dir4::East => 1,
            Dir4::South => 2,
            Dir4::West => 3,
        }
    }
}

/// An `rows × cols` torus. Node `id = row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus2D {
    rows: usize,
    cols: usize,
}

impl Torus2D {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "torus dimensions must be positive");
        Torus2D { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processors.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Never empty (dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `(row, col)` of a node id.
    #[inline]
    pub fn coords(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.len());
        (id / self.cols, id % self.cols)
    }

    /// Node id of `(row, col)`.
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// The neighbor one hop away in `dir`.
    pub fn neighbor(&self, id: usize, dir: Dir4) -> usize {
        let (r, c) = self.coords(id);
        match dir {
            Dir4::North => self.id((r + self.rows - 1) % self.rows, c),
            Dir4::South => self.id((r + 1) % self.rows, c),
            Dir4::East => self.id(r, (c + 1) % self.cols),
            Dir4::West => self.id(r, (c + self.cols - 1) % self.cols),
        }
    }

    #[inline]
    fn cyclic(n: usize, a: usize, b: usize) -> usize {
        let fwd = (b + n - a) % n;
        fwd.min(n - fwd)
    }

    /// Torus distance: sum of the two cyclic distances. This is the
    /// migration time of a job between the nodes.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        Self::cyclic(self.rows, ra, rb) + Self::cyclic(self.cols, ca, cb)
    }

    /// The largest distance between any two nodes.
    pub fn diameter(&self) -> usize {
        self.rows / 2 + self.cols / 2
    }
}

impl Topology for Torus2D {
    fn len(&self) -> usize {
        self.rows * self.cols
    }
    fn degree(&self, _v: usize) -> usize {
        4
    }
    fn peer(&self, v: usize, p: usize) -> usize {
        self.neighbor(v, Dir4::ALL[p])
    }
    fn reverse_port(&self, _v: usize, p: usize) -> usize {
        (p + 2) % 4
    }
    fn distance(&self, a: usize, b: usize) -> usize {
        Torus2D::distance(self, a, b)
    }
    fn diameter(&self) -> usize {
        Torus2D::diameter(self)
    }
    fn cuts(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        // Row boundaries are the natural seams: only North/South messages
        // cross shards, East/West stay inside a row's shard.
        crate::grouped_cuts(self.rows, self.cols, shards)
    }
    fn kind(&self) -> &'static str {
        "torus"
    }
    fn spec(&self) -> String {
        format!("torus:{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Torus2D::new(4, 6);
        for id in 0..t.len() {
            let (r, c) = t.coords(id);
            assert_eq!(t.id(r, c), id);
        }
    }

    #[test]
    fn neighbors_wrap_both_dimensions() {
        let t = Torus2D::new(3, 4);
        let id = t.id(0, 0);
        assert_eq!(t.coords(t.neighbor(id, Dir4::North)), (2, 0));
        assert_eq!(t.coords(t.neighbor(id, Dir4::West)), (0, 3));
        assert_eq!(t.coords(t.neighbor(id, Dir4::South)), (1, 0));
        assert_eq!(t.coords(t.neighbor(id, Dir4::East)), (0, 1));
    }

    #[test]
    fn neighbor_then_opposite_is_identity() {
        let t = Torus2D::new(5, 7);
        for id in 0..t.len() {
            for dir in Dir4::ALL {
                assert_eq!(t.neighbor(t.neighbor(id, dir), dir.opposite()), id);
            }
        }
    }

    #[test]
    fn distance_is_l1_on_cycles() {
        let t = Torus2D::new(6, 8);
        assert_eq!(t.distance(t.id(0, 0), t.id(3, 4)), 3 + 4);
        assert_eq!(t.distance(t.id(0, 0), t.id(5, 7)), 1 + 1); // wraps
        assert_eq!(t.distance(t.id(2, 3), t.id(2, 3)), 0);
        assert_eq!(t.diameter(), 3 + 4);
    }

    #[test]
    fn distance_is_symmetric_and_triangular() {
        let t = Torus2D::new(4, 5);
        for a in 0..t.len() {
            for b in 0..t.len() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
                for c in 0..t.len() {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
                }
            }
        }
    }

    #[test]
    fn ports_follow_the_dir4_order() {
        use crate::Topology as _;
        let t = Torus2D::new(3, 4);
        for v in 0..t.len() {
            for dir in Dir4::ALL {
                assert_eq!(t.peer(v, dir.index()), t.neighbor(v, dir));
                assert_eq!(t.reverse_port(v, dir.index()), dir.opposite().index());
            }
        }
        assert_eq!(t.spec(), "torus:3x4");
    }
}
