//! Hierarchical rings: racks of rings joined by an uplink ring.
//!
//! The "datacenter" shape — `racks` copies of an `rack_m`-node ring, where
//! the first node (index 0) of each rack additionally sits on a rack-level
//! uplink ring. All inter-rack traffic funnels through those uplink nodes,
//! which is exactly what makes the shape interesting for decentralized
//! balancing: a hotspot rack can drain internally at ring speed but
//! exports work through a single two-port gateway.

use crate::Topology;
use serde::{Deserialize, Serialize};

/// `racks` rings of `rack_m` nodes each, whose index-0 nodes form an
/// uplink ring. Node ids are rack-major: node `r * rack_m + i` is index
/// `i` of rack `r`.
///
/// Ports: every node has ports 0 (intra-rack clockwise) and 1 (intra-rack
/// counterclockwise), keeping the ring orientation; uplink nodes (rack
/// index 0) add ports 2 (uplink clockwise, toward rack `r + 1`) and 3
/// (uplink counterclockwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierRing {
    racks: usize,
    rack_m: usize,
}

impl HierRing {
    /// Creates a hierarchy of `racks` rings of `rack_m` nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(racks: usize, rack_m: usize) -> Self {
        assert!(racks > 0, "a hierarchy needs at least one rack");
        assert!(rack_m > 0, "a rack needs at least one node");
        HierRing { racks, rack_m }
    }

    /// Number of racks.
    #[inline]
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Nodes per rack.
    #[inline]
    pub fn rack_m(&self) -> usize {
        self.rack_m
    }

    /// Splits a node id into `(rack, index-within-rack)`.
    #[inline]
    pub fn split(&self, v: usize) -> (usize, usize) {
        (v / self.rack_m, v % self.rack_m)
    }

    /// The node id of index `i` in rack `r`.
    #[inline]
    pub fn node(&self, r: usize, i: usize) -> usize {
        debug_assert!(r < self.racks && i < self.rack_m);
        r * self.rack_m + i
    }

    /// True iff `v` is an uplink node (index 0 of its rack).
    #[inline]
    pub fn is_uplink(&self, v: usize) -> bool {
        v % self.rack_m == 0
    }

    #[inline]
    fn ring_dist(n: usize, a: usize, b: usize) -> usize {
        let cw = (b + n - a) % n;
        cw.min(n - cw)
    }
}

impl Topology for HierRing {
    fn len(&self) -> usize {
        self.racks * self.rack_m
    }

    fn degree(&self, v: usize) -> usize {
        if self.is_uplink(v) {
            4
        } else {
            2
        }
    }

    fn peer(&self, v: usize, p: usize) -> usize {
        let (r, i) = self.split(v);
        match p {
            0 => self.node(r, (i + 1) % self.rack_m),
            1 => self.node(r, (i + self.rack_m - 1) % self.rack_m),
            2 if i == 0 => self.node((r + 1) % self.racks, 0),
            3 if i == 0 => self.node((r + self.racks - 1) % self.racks, 0),
            _ => panic!("node {v} has no port {p}"),
        }
    }

    fn reverse_port(&self, _v: usize, p: usize) -> usize {
        // Both rings pair cw with ccw: 0 <-> 1 and 2 <-> 3.
        p ^ 1
    }

    fn distance(&self, a: usize, b: usize) -> usize {
        let (ra, ia) = self.split(a);
        let (rb, ib) = self.split(b);
        if ra == rb {
            Self::ring_dist(self.rack_m, ia, ib)
        } else {
            // Every inter-rack path exits through the source rack's uplink
            // node, rides the uplink ring, and descends from the target's.
            Self::ring_dist(self.rack_m, ia, 0)
                + Self::ring_dist(self.racks, ra, rb)
                + Self::ring_dist(self.rack_m, 0, ib)
        }
    }

    fn diameter(&self) -> usize {
        if self.racks >= 2 {
            2 * (self.rack_m / 2) + self.racks / 2
        } else {
            self.rack_m / 2
        }
    }

    fn cuts(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        // Rack boundaries are the natural seams: all intra-rack traffic
        // stays inside one shard, so only uplink messages cross shards.
        crate::grouped_cuts(self.racks, self.rack_m, shards)
    }

    fn kind(&self) -> &'static str {
        "hier"
    }

    fn spec(&self) -> String {
        format!("hier:{}x{}", self.racks, self.rack_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_rack_major() {
        let t = HierRing::new(3, 4);
        assert_eq!(t.len(), 12);
        assert_eq!(t.node(2, 3), 11);
        assert_eq!(t.split(11), (2, 3));
        assert!(t.is_uplink(8));
        assert!(!t.is_uplink(9));
    }

    #[test]
    fn uplink_nodes_bridge_racks() {
        let t = HierRing::new(3, 4);
        // Intra-rack ring wraps within the rack.
        assert_eq!(t.peer(t.node(1, 3), 0), t.node(1, 0));
        assert_eq!(t.peer(t.node(1, 0), 1), t.node(1, 3));
        // Uplink ring connects rack gateways.
        assert_eq!(t.peer(t.node(1, 0), 2), t.node(2, 0));
        assert_eq!(t.peer(t.node(0, 0), 3), t.node(2, 0));
        assert_eq!(t.degree(t.node(1, 0)), 4);
        assert_eq!(t.degree(t.node(1, 1)), 2);
    }

    #[test]
    fn distance_routes_through_uplinks() {
        let t = HierRing::new(4, 6);
        // Same rack: plain ring distance.
        assert_eq!(t.distance(t.node(2, 1), t.node(2, 5)), 2);
        // Different racks: descend, ride the uplink ring, ascend.
        assert_eq!(t.distance(t.node(0, 3), t.node(2, 2)), 3 + 2 + 2);
        assert_eq!(t.diameter(), 2 * 3 + 2);
    }

    #[test]
    fn single_rack_degenerates_to_a_ring_metric() {
        let t = HierRing::new(1, 7);
        assert_eq!(t.distance(1, 5), 3);
        assert_eq!(t.diameter(), 3);
    }
}
