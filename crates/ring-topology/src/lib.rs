//! `ring-topology` — network shapes behind one [`Topology`] trait.
//!
//! The paper's machine model (§2) is a ring, and the whole workspace grew
//! up around [`RingTopology`]. Its closing section (§8) asks how the
//! decentralized approach adapts to *other* networks; this crate is the
//! abstraction that lets one engine answer: a small, object-safe
//! [`Topology`] trait (node count, directed-neighbor enumeration by local
//! link id, metric distance, natural contiguous cuts for sharding) with
//! four implementations:
//!
//! * [`RingTopology`] — the original ring, moved here verbatim so `ring-sim`
//!   re-exports it unchanged (ports 0 = clockwise, 1 = counterclockwise);
//! * [`HierRing`] — rings of rings: racks of `m`-node rings whose first
//!   nodes form an uplink ring, the "datacenter" shape;
//! * [`Torus2D`] — the 2D torus `ring-mesh` explores, absorbed here so that
//!   crate keeps only its algorithm/bounds/exact math;
//! * [`Clique`] — the congested clique (every pair adjacent), the setting
//!   of Censor-Hillel–Maus–Polosukhin's batch scheduler.
//!
//! ## Ports
//!
//! A node of degree `d` numbers its incident directed links `0..d` — its
//! *ports*. `peer(v, p)` is the node reached over port `p`, and
//! `reverse_port(v, p)` is the arrival port at the peer: the peer's own
//! port that points back at `v`. On rings the two ports keep the paper's
//! orientation (`0` = cw, `1` = ccw), so a fault plan's cw/ccw link epochs
//! apply to ports 0/1 unchanged on every topology that embeds a ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod hier;
mod ring;
mod torus;

pub use clique::Clique;
pub use hier::HierRing;
pub use ring::{Direction, RingTopology};
pub use torus::{Dir4, Torus2D};

use std::ops::Range;

/// A network shape: node count, directed-neighbor enumeration by port,
/// metric distance, and natural contiguous cuts for sharded execution.
///
/// Object-safe: engines may hold a `&dyn Topology`, though the fabric
/// engine works over the concrete [`AnyTopology`] enum so its state stays
/// `Clone` and snapshot-able.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Number of nodes; node ids are `0..len()`.
    fn len(&self) -> usize;

    /// True iff the topology has no nodes (never, for the shapes here —
    /// every constructor requires at least one node).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed out-links (ports) at node `v`.
    fn degree(&self, v: usize) -> usize;

    /// The node reached from `v` over port `p` (`p < degree(v)`).
    fn peer(&self, v: usize, p: usize) -> usize;

    /// The arrival port at `peer(v, p)`: the peer's port that points back
    /// at `v`, i.e. `peer(peer(v, p), reverse_port(v, p)) == v`.
    fn reverse_port(&self, v: usize, p: usize) -> usize;

    /// Hop distance between two nodes (the job-migration time of the
    /// paper's model, generalized).
    fn distance(&self, a: usize, b: usize) -> usize;

    /// The largest distance between any two nodes.
    fn diameter(&self) -> usize;

    /// Cuts the id space `0..len()` into at most `shards` non-empty
    /// contiguous ranges, in ascending order, along the topology's natural
    /// seams (rack boundaries, torus rows). Sharded executors step each
    /// range on its own worker; merging results in range order reproduces
    /// the sequential node order exactly.
    fn cuts(&self, shards: usize) -> Vec<Range<usize>> {
        even_cuts(self.len(), shards)
    }

    /// Short kind tag (`"ring"`, `"hier"`, `"torus"`, `"clique"`).
    fn kind(&self) -> &'static str;

    /// Canonical spec string (`"ring:8"`, `"hier:4x8"`, `"torus:4x6"`,
    /// `"clique:16"`); [`AnyTopology::parse`] inverts it.
    fn spec(&self) -> String;
}

/// Splits `0..n` into at most `shards` non-empty contiguous ranges of
/// near-equal size (the default, seam-agnostic cut).
pub fn even_cuts(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let end = (n * (s + 1)) / shards;
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    out
}

/// Aligns cuts to group boundaries: `groups` consecutive blocks of
/// `group_len` nodes each, distributed over at most `shards` contiguous
/// runs of whole groups. Falls back to [`even_cuts`] when there are more
/// shards than groups (a group then spans multiple shards).
pub fn grouped_cuts(groups: usize, group_len: usize, shards: usize) -> Vec<Range<usize>> {
    let n = groups * group_len;
    if shards > groups {
        return even_cuts(n, shards);
    }
    let shards = shards.max(1);
    let mut out = Vec::with_capacity(shards);
    let mut start_group = 0;
    for s in 0..shards {
        let end_group = (groups * (s + 1)) / shards;
        if end_group > start_group {
            out.push(start_group * group_len..end_group * group_len);
            start_group = end_group;
        }
    }
    out
}

/// The concrete topology menu: one enum so engine state stays `Clone`,
/// comparable, and serializable by spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyTopology {
    /// A plain ring.
    Ring(RingTopology),
    /// Racks of rings joined by an uplink ring.
    Hier(HierRing),
    /// A 2D torus.
    Torus(Torus2D),
    /// A clique.
    Clique(Clique),
}

impl AnyTopology {
    /// Parses a canonical spec string (`"ring:8"`, `"hier:4x8"`,
    /// `"torus:4x6"`, `"clique:16"`).
    pub fn parse(spec: &str) -> Result<AnyTopology, String> {
        let (kind, dims) = spec
            .split_once(':')
            .ok_or_else(|| format!("topology spec `{spec}` has no `kind:dims` colon"))?;
        let num = |s: &str| {
            s.parse::<usize>()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("topology spec `{spec}`: `{s}` is not a positive integer"))
        };
        match kind {
            "ring" => Ok(AnyTopology::Ring(RingTopology::new(num(dims)?))),
            "clique" => Ok(AnyTopology::Clique(Clique::new(num(dims)?))),
            "hier" | "torus" => {
                let (a, b) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("topology spec `{spec}` needs `AxB` dims"))?;
                let (a, b) = (num(a)?, num(b)?);
                if kind == "hier" {
                    Ok(AnyTopology::Hier(HierRing::new(a, b)))
                } else {
                    Ok(AnyTopology::Torus(Torus2D::new(a, b)))
                }
            }
            other => Err(format!("unknown topology kind `{other}`")),
        }
    }

    fn inner(&self) -> &dyn Topology {
        match self {
            AnyTopology::Ring(t) => t,
            AnyTopology::Hier(t) => t,
            AnyTopology::Torus(t) => t,
            AnyTopology::Clique(t) => t,
        }
    }
}

impl std::fmt::Display for AnyTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec())
    }
}

impl std::str::FromStr for AnyTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AnyTopology::parse(s)
    }
}

impl Topology for AnyTopology {
    fn len(&self) -> usize {
        self.inner().len()
    }
    fn degree(&self, v: usize) -> usize {
        self.inner().degree(v)
    }
    fn peer(&self, v: usize, p: usize) -> usize {
        self.inner().peer(v, p)
    }
    fn reverse_port(&self, v: usize, p: usize) -> usize {
        self.inner().reverse_port(v, p)
    }
    fn distance(&self, a: usize, b: usize) -> usize {
        self.inner().distance(a, b)
    }
    fn diameter(&self) -> usize {
        self.inner().diameter()
    }
    fn cuts(&self, shards: usize) -> Vec<Range<usize>> {
        self.inner().cuts(shards)
    }
    fn kind(&self) -> &'static str {
        self.inner().kind()
    }
    fn spec(&self) -> String {
        self.inner().spec()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn all_shapes() -> Vec<AnyTopology> {
        vec![
            AnyTopology::Ring(RingTopology::new(1)),
            AnyTopology::Ring(RingTopology::new(2)),
            AnyTopology::Ring(RingTopology::new(7)),
            AnyTopology::Hier(HierRing::new(1, 1)),
            AnyTopology::Hier(HierRing::new(1, 5)),
            AnyTopology::Hier(HierRing::new(3, 4)),
            AnyTopology::Hier(HierRing::new(4, 2)),
            AnyTopology::Torus(Torus2D::new(1, 1)),
            AnyTopology::Torus(Torus2D::new(1, 6)),
            AnyTopology::Torus(Torus2D::new(3, 5)),
            AnyTopology::Torus(Torus2D::new(4, 4)),
            AnyTopology::Clique(Clique::new(1)),
            AnyTopology::Clique(Clique::new(2)),
            AnyTopology::Clique(Clique::new(9)),
        ]
    }

    /// The port laws every implementation must satisfy: peers are in
    /// range, `reverse_port` really does point back, and distance is a
    /// metric bounded by the diameter.
    #[test]
    fn port_and_metric_laws_hold_for_every_shape() {
        for topo in all_shapes() {
            let n = topo.len();
            for v in 0..n {
                for p in 0..topo.degree(v) {
                    let u = topo.peer(v, p);
                    assert!(u < n, "{topo}: peer({v},{p}) out of range");
                    let q = topo.reverse_port(v, p);
                    assert!(q < topo.degree(u), "{topo}: reverse_port({v},{p})");
                    assert_eq!(
                        topo.peer(u, q),
                        v,
                        "{topo}: reverse_port({v},{p}) does not point back"
                    );
                    if u != v {
                        assert_eq!(topo.distance(v, u), 1, "{topo}: neighbors at distance 1");
                    }
                }
            }
            let mut max_d = 0;
            for a in 0..n {
                assert_eq!(topo.distance(a, a), 0);
                for b in 0..n {
                    let d = topo.distance(a, b);
                    assert_eq!(d, topo.distance(b, a), "{topo}: symmetric");
                    max_d = max_d.max(d);
                }
            }
            assert_eq!(max_d, topo.diameter(), "{topo}: diameter is tight");
        }
    }

    /// Distances agree with true BFS hop counts over the port graph —
    /// the closed forms cannot drift from the actual wiring.
    #[test]
    fn closed_form_distance_matches_bfs() {
        for topo in all_shapes() {
            let n = topo.len();
            if n > 64 {
                continue;
            }
            for src in 0..n {
                let mut dist = vec![usize::MAX; n];
                dist[src] = 0;
                let mut queue = std::collections::VecDeque::from([src]);
                while let Some(v) = queue.pop_front() {
                    for p in 0..topo.degree(v) {
                        let u = topo.peer(v, p);
                        if dist[u] == usize::MAX {
                            dist[u] = dist[v] + 1;
                            queue.push_back(u);
                        }
                    }
                }
                for (b, &d) in dist.iter().enumerate() {
                    assert_eq!(
                        topo.distance(src, b),
                        d,
                        "{topo}: distance({src},{b}) disagrees with BFS"
                    );
                }
            }
        }
    }

    #[test]
    fn cuts_partition_the_id_space_in_order() {
        for topo in all_shapes() {
            for shards in 1..=topo.len() + 2 {
                let cuts = topo.cuts(shards);
                assert!(!cuts.is_empty());
                assert!(cuts.len() <= shards.max(1));
                let mut next = 0;
                for r in &cuts {
                    assert_eq!(r.start, next, "{topo}: cuts are contiguous");
                    assert!(r.end > r.start, "{topo}: cuts are non-empty");
                    next = r.end;
                }
                assert_eq!(next, topo.len(), "{topo}: cuts cover every node");
            }
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for topo in all_shapes() {
            let spec = topo.spec();
            let back = AnyTopology::parse(&spec).unwrap();
            assert_eq!(back, topo, "spec {spec} round-trips");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "ring",
            "ring:",
            "ring:0",
            "hier:4",
            "torus:0x3",
            "mesh:2x2",
        ] {
            assert!(AnyTopology::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn hier_cuts_align_to_rack_boundaries() {
        let t = HierRing::new(6, 8);
        for shards in 1..=6 {
            for r in t.cuts(shards) {
                assert_eq!(r.start % 8, 0, "cut starts on a rack boundary");
                assert_eq!(r.end % 8, 0, "cut ends on a rack boundary");
            }
        }
    }

    #[test]
    fn torus_cuts_align_to_row_boundaries() {
        let t = Torus2D::new(5, 7);
        for shards in 1..=5 {
            for r in t.cuts(shards) {
                assert_eq!(r.start % 7, 0, "cut starts on a row boundary");
                assert_eq!(r.end % 7, 0, "cut ends on a row boundary");
            }
        }
    }
}
