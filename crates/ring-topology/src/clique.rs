//! The congested clique: every pair of nodes adjacent, bandwidth-limited
//! links.
//!
//! The shape of Censor-Hillel–Maus–Polosukhin's *Near-Optimal Scheduling
//! in the Congested Clique*: any node can reach any other in one hop, but
//! each link still carries O(1) words per round, so a scheduler's job is
//! to balance load while keeping every node's per-round traffic to O(n)
//! words.

use crate::Topology;
use serde::{Deserialize, Serialize};

/// An `n`-node clique. Node `v` has `n - 1` ports; port `p` leads to node
/// `p` if `p < v`, else to node `p + 1` (the port list is "everyone but
/// me", in id order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clique {
    n: usize,
}

impl Clique {
    /// Creates an `n`-node clique.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a clique needs at least one node");
        Clique { n }
    }

    /// The port at `v` that leads to `u` (`u != v`).
    #[inline]
    pub fn port_to(&self, v: usize, u: usize) -> usize {
        debug_assert!(u != v && u < self.n && v < self.n);
        if u < v {
            u
        } else {
            u - 1
        }
    }
}

impl Topology for Clique {
    fn len(&self) -> usize {
        self.n
    }
    fn degree(&self, _v: usize) -> usize {
        self.n - 1
    }
    fn peer(&self, v: usize, p: usize) -> usize {
        debug_assert!(p < self.n - 1);
        if p < v {
            p
        } else {
            p + 1
        }
    }
    fn reverse_port(&self, v: usize, p: usize) -> usize {
        self.port_to(self.peer(v, p), v)
    }
    fn distance(&self, a: usize, b: usize) -> usize {
        usize::from(a != b)
    }
    fn diameter(&self) -> usize {
        usize::from(self.n > 1)
    }
    fn kind(&self) -> &'static str {
        "clique"
    }
    fn spec(&self) -> String {
        format!("clique:{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_enumerate_everyone_but_me() {
        let t = Clique::new(5);
        for v in 0..5 {
            let peers: Vec<usize> = (0..t.degree(v)).map(|p| t.peer(v, p)).collect();
            let expected: Vec<usize> = (0..5).filter(|&u| u != v).collect();
            assert_eq!(peers, expected);
            for u in expected {
                assert_eq!(t.peer(v, t.port_to(v, u)), u);
            }
        }
    }

    #[test]
    fn one_hop_metric() {
        let t = Clique::new(4);
        assert_eq!(t.distance(1, 3), 1);
        assert_eq!(t.distance(2, 2), 0);
        assert_eq!(t.diameter(), 1);
        assert_eq!(Clique::new(1).diameter(), 0);
    }
}
