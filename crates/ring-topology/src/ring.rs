//! Ring topology: index arithmetic, neighbors, and distances.
//!
//! The paper (§2) numbers processors `1..=m` and does all index arithmetic
//! modulo `m`. We use zero-based indices `0..m`. "Clockwise" ([`Direction::Cw`])
//! is the direction of *increasing* processor number, the direction buckets
//! travel in the unidirectional algorithms of §3.
//!
//! This module moved here from `ring-sim` unchanged when the [`Topology`]
//! trait landed; `ring-sim` re-exports both types, so downstream code keeps
//! compiling against the same items.

use crate::Topology;
use serde::{Deserialize, Serialize};

/// One of the two directions a message can travel around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Increasing processor index (the paper's "direction of higher-numbered
    /// processors").
    Cw,
    /// Decreasing processor index.
    Ccw,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Cw => Direction::Ccw,
            Direction::Ccw => Direction::Cw,
        }
    }

    /// Both directions, clockwise first.
    pub const BOTH: [Direction; 2] = [Direction::Cw, Direction::Ccw];
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Cw => write!(f, "cw"),
            Direction::Ccw => write!(f, "ccw"),
        }
    }
}

/// An `m`-processor ring.
///
/// Provides all modular index arithmetic so that policy code never has to
/// reason about wrap-around itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingTopology {
    m: usize,
}

impl RingTopology {
    /// Creates an `m`-processor ring.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "a ring must have at least one processor");
        RingTopology { m }
    }

    /// Number of processors in the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True iff the ring has exactly one processor (every neighbor is the
    /// processor itself).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Normalizes an arbitrary (possibly out-of-range) index onto the ring.
    #[inline]
    pub fn wrap(&self, i: isize) -> usize {
        i.rem_euclid(self.m as isize) as usize
    }

    /// The processor reached from `i` by one hop in direction `dir`.
    #[inline]
    pub fn neighbor(&self, i: usize, dir: Direction) -> usize {
        debug_assert!(i < self.m);
        match dir {
            Direction::Cw => {
                if i + 1 == self.m {
                    0
                } else {
                    i + 1
                }
            }
            Direction::Ccw => {
                if i == 0 {
                    self.m - 1
                } else {
                    i - 1
                }
            }
        }
    }

    /// The processor reached from `i` by `k` hops in direction `dir`.
    #[inline]
    pub fn offset(&self, i: usize, k: usize, dir: Direction) -> usize {
        debug_assert!(i < self.m);
        let k = k % self.m;
        match dir {
            Direction::Cw => (i + k) % self.m,
            Direction::Ccw => (i + self.m - k) % self.m,
        }
    }

    /// Number of hops from `i` to `j` travelling clockwise.
    #[inline]
    pub fn cw_distance(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.m && j < self.m);
        (j + self.m - i) % self.m
    }

    /// Number of hops from `i` to `j` travelling counterclockwise.
    #[inline]
    pub fn ccw_distance(&self, i: usize, j: usize) -> usize {
        self.cw_distance(j, i)
    }

    /// Ring distance: the minimum of the clockwise and counterclockwise hop
    /// counts. This is the migration time of a job from `i` to `j` in the
    /// paper's model.
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> usize {
        let cw = self.cw_distance(i, j);
        cw.min(self.m - cw)
    }

    /// The largest distance between any two processors: `floor(m / 2)`.
    #[inline]
    pub fn diameter(&self) -> usize {
        self.m / 2
    }

    /// Iterator over the `k` processors of the clockwise arc starting at
    /// `start` (inclusive): `start, start+1, …, start+k-1` (mod `m`).
    ///
    /// `k` may exceed `m`, in which case indices repeat; callers that want a
    /// set of distinct processors should pass `k <= m`.
    pub fn arc(&self, start: usize, k: usize) -> impl Iterator<Item = usize> + '_ {
        let m = self.m;
        (0..k).map(move |off| (start + off) % m)
    }

    /// All processor indices, `0..m`.
    pub fn processors(&self) -> std::ops::Range<usize> {
        0..self.m
    }
}

/// The ring as a [`Topology`] instance: every node has two ports, and the
/// port numbering preserves the paper's orientation — port 0 is the
/// clockwise out-link, port 1 the counterclockwise one, exactly the
/// `Direction::BOTH` order. A message sent on port 0 (cw) arrives at the
/// peer's port 1 (its "from the counterclockwise side" in-link), hence
/// `reverse_port(v, p) == 1 - p`.
impl Topology for RingTopology {
    fn len(&self) -> usize {
        self.m
    }
    fn degree(&self, _v: usize) -> usize {
        2
    }
    fn peer(&self, v: usize, p: usize) -> usize {
        self.neighbor(v, Direction::BOTH[p])
    }
    fn reverse_port(&self, _v: usize, p: usize) -> usize {
        1 - p
    }
    fn distance(&self, a: usize, b: usize) -> usize {
        RingTopology::distance(self, a, b)
    }
    fn diameter(&self) -> usize {
        RingTopology::diameter(self)
    }
    fn kind(&self) -> &'static str {
        "ring"
    }
    fn spec(&self) -> String {
        format!("ring:{}", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_wrap() {
        let t = RingTopology::new(5);
        assert_eq!(t.neighbor(4, Direction::Cw), 0);
        assert_eq!(t.neighbor(0, Direction::Ccw), 4);
        assert_eq!(t.neighbor(2, Direction::Cw), 3);
        assert_eq!(t.neighbor(2, Direction::Ccw), 1);
    }

    #[test]
    fn offset_wraps_in_both_directions() {
        let t = RingTopology::new(7);
        assert_eq!(t.offset(5, 4, Direction::Cw), 2);
        assert_eq!(t.offset(1, 3, Direction::Ccw), 5);
        assert_eq!(t.offset(3, 7, Direction::Cw), 3);
        assert_eq!(t.offset(3, 14, Direction::Ccw), 3);
    }

    #[test]
    fn wrap_normalizes_negative_indices() {
        let t = RingTopology::new(4);
        assert_eq!(t.wrap(-1), 3);
        assert_eq!(t.wrap(-5), 3);
        assert_eq!(t.wrap(9), 1);
        assert_eq!(t.wrap(0), 0);
    }

    #[test]
    fn distances() {
        let t = RingTopology::new(6);
        assert_eq!(t.cw_distance(0, 5), 5);
        assert_eq!(t.ccw_distance(0, 5), 1);
        assert_eq!(t.distance(0, 5), 1);
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.distance(2, 2), 0);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        let t = RingTopology::new(9);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(t.distance(i, j), t.distance(j, i));
            }
        }
    }

    #[test]
    fn distance_satisfies_triangle_inequality() {
        let t = RingTopology::new(8);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    assert!(t.distance(i, k) <= t.distance(i, j) + t.distance(j, k));
                }
            }
        }
    }

    #[test]
    fn arc_enumerates_clockwise() {
        let t = RingTopology::new(5);
        let arc: Vec<usize> = t.arc(3, 4).collect();
        assert_eq!(arc, vec![3, 4, 0, 1]);
    }

    #[test]
    fn singleton_ring() {
        let t = RingTopology::new(1);
        assert_eq!(t.neighbor(0, Direction::Cw), 0);
        assert_eq!(t.neighbor(0, Direction::Ccw), 0);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.diameter(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_ring_panics() {
        let _ = RingTopology::new(0);
    }

    #[test]
    fn ports_follow_the_direction_order() {
        use crate::Topology as _;
        let t = RingTopology::new(5);
        for v in 0..5 {
            assert_eq!(t.peer(v, 0), t.neighbor(v, Direction::Cw));
            assert_eq!(t.peer(v, 1), t.neighbor(v, Direction::Ccw));
            assert_eq!(t.reverse_port(v, 0), 1);
            assert_eq!(t.reverse_port(v, 1), 0);
        }
        assert_eq!(t.spec(), "ring:5");
    }
}
