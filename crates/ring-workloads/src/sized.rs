//! Arbitrary-job-size workloads for the §4.2 algorithm.
//!
//! The paper's own experiments use unit jobs only; these generators exist
//! so the sized algorithm (and its 5.22 bound) can be exercised on
//! realistic shapes — e.g. the parallel-loop workloads the introduction
//! motivates, where iteration blocks have uneven running times.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_sim::SizedInstance;

/// Each processor gets `jobs_per_proc` jobs with sizes uniform in
/// `lo..=hi`.
pub fn uniform_sizes(m: usize, jobs_per_proc: usize, lo: u64, hi: u64, seed: u64) -> SizedInstance {
    assert!(lo >= 1 && hi >= lo, "need 1 <= lo <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    SizedInstance::from_sizes(
        (0..m)
            .map(|_| (0..jobs_per_proc).map(|_| rng.gen_range(lo..=hi)).collect())
            .collect(),
    )
}

/// A batch of `count` jobs with sizes uniform in `lo..=hi` dumped on one
/// processor — the "batch of transactions arrives at one node" scenario.
pub fn batch_on_one(
    m: usize,
    at: usize,
    count: usize,
    lo: u64,
    hi: u64,
    seed: u64,
) -> SizedInstance {
    assert!(lo >= 1 && hi >= lo, "need 1 <= lo <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes: Vec<Vec<u64>> = vec![Vec::new(); m];
    sizes[at] = (0..count).map(|_| rng.gen_range(lo..=hi)).collect();
    SizedInstance::from_sizes(sizes)
}

/// Loop-parallelization shape: processor `i` holds one block of
/// `base + skew·i` iterations — a classic triangular loop nest where later
/// blocks are heavier.
pub fn triangular_loop(m: usize, base: u64, skew: u64) -> SizedInstance {
    assert!(base >= 1, "blocks must be non-empty");
    SizedInstance::from_sizes((0..m).map(|i| vec![base + skew * i as u64]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sizes_in_range_and_seeded() {
        let a = uniform_sizes(20, 5, 2, 9, 11);
        let b = uniform_sizes(20, 5, 2, 9, 11);
        assert_eq!(a, b);
        assert_eq!(a.num_jobs(), 100);
        assert!(a.all_jobs().all(|j| (2..=9).contains(&j.size)));
    }

    #[test]
    fn batch_lands_on_one_processor() {
        let i = batch_on_one(16, 5, 40, 1, 10, 3);
        assert_eq!(i.jobs_at(5).len(), 40);
        assert_eq!(i.num_jobs(), 40);
        assert!(i.work_at(5) >= 40);
    }

    #[test]
    fn triangular_loop_shape() {
        let i = triangular_loop(8, 10, 5);
        assert_eq!(i.work_at(0), 10);
        assert_eq!(i.work_at(7), 45);
        assert_eq!(i.p_max(), 45);
        assert_eq!(i.num_jobs(), 8);
    }

    #[test]
    #[should_panic(expected = "1 <= lo <= hi")]
    fn zero_size_rejected() {
        let _ = uniform_sizes(4, 2, 0, 5, 1);
    }
}
