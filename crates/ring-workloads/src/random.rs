//! Uniform random workloads (Table 1, part II).
//!
//! The paper's random cases draw each processor's load "uniformly from 0 to
//! `k`" with `k ∈ {100, 500, 1000}`; we read the range as inclusive,
//! `0..=k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_sim::Instance;

/// A uniform random instance: each processor's load drawn from `0..=max`.
pub fn uniform(m: usize, max: u64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    Instance::from_loads((0..m).map(|_| rng.gen_range(0..=max)).collect())
}

/// A random instance with `clusters` heavy piles of `pile` jobs each at
/// random positions on an otherwise `0..=bg`-loaded ring. Not a Table 1
/// family, but a useful stress shape for tests and benches.
pub fn clustered(m: usize, clusters: usize, pile: u64, bg: u64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..m).map(|_| rng.gen_range(0..=bg)).collect();
    for _ in 0..clusters {
        let at = rng.gen_range(0..m);
        v[at] += pile;
    }
    Instance::from_loads(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = uniform(200, 100, 1);
        let b = uniform(200, 100, 1);
        assert_eq!(a, b);
        assert!(a.loads().iter().all(|&x| x <= 100));
        // With 200 draws from 0..=100 the total should be near 10 000.
        let n = a.total_work();
        assert!(n > 5_000 && n < 15_000, "suspicious total {n}");
    }

    #[test]
    fn clustered_adds_piles() {
        let inst = clustered(100, 3, 10_000, 10, 42);
        assert!(inst.max_load() >= 10_000);
        assert!(inst.total_work() >= 30_000);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform(100, 500, 1), uniform(100, 500, 2));
    }
}
