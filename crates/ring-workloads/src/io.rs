//! Plain-text instance files.
//!
//! A deliberately simple line-oriented format (no external parser
//! dependencies) so instances can be generated once, checked into
//! experiment repositories, and diffed:
//!
//! ```text
//! # anything after '#' is a comment
//! ring 8
//! loads 5 0 0 3 0 0 0 1
//! ```
//!
//! and for arbitrary job sizes (§4.2), one `jobs` line per processor in
//! order:
//!
//! ```text
//! ring 3
//! jobs 4 4 9
//! jobs
//! jobs 1
//! ```

use ring_sim::{Instance, SizedInstance};

/// Parse or I/O failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line with an unknown keyword.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The unrecognized first token.
        token: String,
    },
    /// A number failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Missing or duplicated `ring` directive, or load/job counts that do
    /// not match it.
    Structure(
        /// Human-readable description.
        String,
    ),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownDirective { line, token } => {
                write!(f, "line {line}: unknown directive {token:?}")
            }
            ParseError::BadNumber { line, token } => {
                write!(f, "line {line}: {token:?} is not a number")
            }
            ParseError::Structure(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Renders a unit instance to the text format.
pub fn write_instance(instance: &Instance) -> String {
    let loads: Vec<String> = instance.loads().iter().map(u64::to_string).collect();
    format!(
        "# ring-sched unit instance\nring {}\nloads {}\n",
        instance.num_processors(),
        loads.join(" ")
    )
}

/// Renders a sized instance to the text format.
pub fn write_sized_instance(instance: &SizedInstance) -> String {
    let mut out = format!(
        "# ring-sched sized instance\nring {}\n",
        instance.num_processors()
    );
    for p in 0..instance.num_processors() {
        let sizes: Vec<String> = instance
            .jobs_at(p)
            .iter()
            .map(|j| j.size.to_string())
            .collect();
        out.push_str("jobs");
        if !sizes.is_empty() {
            out.push(' ');
            out.push_str(&sizes.join(" "));
        }
        out.push('\n');
    }
    out
}

fn tokenize(text: &str) -> impl Iterator<Item = (usize, Vec<&str>)> {
    text.lines().enumerate().filter_map(|(i, line)| {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            None
        } else {
            Some((i + 1, body.split_whitespace().collect()))
        }
    })
}

fn parse_numbers(line: usize, tokens: &[&str]) -> Result<Vec<u64>, ParseError> {
    tokens
        .iter()
        .map(|t| {
            t.parse::<u64>().map_err(|_| ParseError::BadNumber {
                line,
                token: t.to_string(),
            })
        })
        .collect()
}

/// Parses a unit instance from the text format.
pub fn read_instance(text: &str) -> Result<Instance, ParseError> {
    let mut m: Option<usize> = None;
    let mut loads: Option<Vec<u64>> = None;
    for (line, tokens) in tokenize(text) {
        match tokens[0] {
            "ring" => {
                let nums = parse_numbers(line, &tokens[1..])?;
                if nums.len() != 1 || m.is_some() {
                    return Err(ParseError::Structure(format!(
                        "line {line}: 'ring' takes exactly one value and may appear once"
                    )));
                }
                m = Some(nums[0] as usize);
            }
            "loads" => {
                if loads.is_some() {
                    return Err(ParseError::Structure(format!(
                        "line {line}: duplicate 'loads'"
                    )));
                }
                loads = Some(parse_numbers(line, &tokens[1..])?);
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    token: other.to_string(),
                })
            }
        }
    }
    let m = m.ok_or_else(|| ParseError::Structure("missing 'ring' directive".into()))?;
    let loads = loads.ok_or_else(|| ParseError::Structure("missing 'loads' directive".into()))?;
    if loads.len() != m || m == 0 {
        return Err(ParseError::Structure(format!(
            "'loads' has {} values but ring size is {m}",
            loads.len()
        )));
    }
    Ok(Instance::from_loads(loads))
}

/// Parses a sized instance from the text format.
pub fn read_sized_instance(text: &str) -> Result<SizedInstance, ParseError> {
    let mut m: Option<usize> = None;
    let mut jobs: Vec<Vec<u64>> = Vec::new();
    for (line, tokens) in tokenize(text) {
        match tokens[0] {
            "ring" => {
                let nums = parse_numbers(line, &tokens[1..])?;
                if nums.len() != 1 || m.is_some() {
                    return Err(ParseError::Structure(format!(
                        "line {line}: 'ring' takes exactly one value and may appear once"
                    )));
                }
                m = Some(nums[0] as usize);
            }
            "jobs" => {
                let sizes = parse_numbers(line, &tokens[1..])?;
                if sizes.contains(&0) {
                    return Err(ParseError::Structure(format!(
                        "line {line}: job sizes must be positive"
                    )));
                }
                jobs.push(sizes);
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    token: other.to_string(),
                })
            }
        }
    }
    let m = m.ok_or_else(|| ParseError::Structure("missing 'ring' directive".into()))?;
    if jobs.len() != m || m == 0 {
        return Err(ParseError::Structure(format!(
            "{} 'jobs' lines but ring size is {m}",
            jobs.len()
        )));
    }
    Ok(SizedInstance::from_sizes(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_roundtrip() {
        let inst = Instance::from_loads(vec![5, 0, 0, 3, 0, 0, 0, 1]);
        let text = write_instance(&inst);
        assert_eq!(read_instance(&text).unwrap(), inst);
    }

    #[test]
    fn sized_roundtrip() {
        let inst = SizedInstance::from_sizes(vec![vec![4, 4, 9], vec![], vec![1]]);
        let text = write_sized_instance(&inst);
        assert_eq!(read_sized_instance(&text).unwrap(), inst);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header\nring 2   # two processors\n\nloads 7 0 # done\n";
        assert_eq!(
            read_instance(text).unwrap(),
            Instance::from_loads(vec![7, 0])
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert!(matches!(
            read_instance("ring 2\nloads 1 x"),
            Err(ParseError::BadNumber { line: 2, .. })
        ));
        assert!(matches!(
            read_instance("rong 2\nloads 1 2"),
            Err(ParseError::UnknownDirective { line: 1, .. })
        ));
        assert!(matches!(
            read_instance("ring 3\nloads 1 2"),
            Err(ParseError::Structure(_))
        ));
        assert!(matches!(read_instance(""), Err(ParseError::Structure(_))));
        assert!(matches!(
            read_sized_instance("ring 1\njobs 0"),
            Err(ParseError::Structure(_))
        ));
    }

    proptest! {
        #[test]
        fn unit_roundtrip_random(loads in prop::collection::vec(0u64..10_000, 1..64)) {
            let inst = Instance::from_loads(loads);
            prop_assert_eq!(read_instance(&write_instance(&inst)).unwrap(), inst);
        }

        #[test]
        fn sized_roundtrip_random(
            sizes in prop::collection::vec(prop::collection::vec(1u64..100, 0..8), 1..24)
        ) {
            let inst = SizedInstance::from_sizes(sizes);
            prop_assert_eq!(
                read_sized_instance(&write_sized_instance(&inst)).unwrap(),
                inst
            );
        }
    }
}
