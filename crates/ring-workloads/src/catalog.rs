//! The 51-case test catalog of Table 1.
//!
//! * Part I — 36 structured cases: ring sizes {10, 100, 1000} ×
//!   distributions {1, 2, 3, 4} × heavy loads {Huge, Large, Big}.
//! * Part II — 9 uniform random cases: ring sizes {10, 100, 1000} ×
//!   per-processor ranges {0–100, 0–500, 0–1000}.
//! * Part III — 6 evil-adversary cases. The `(ring, L, k)` values in the
//!   surviving scan of Table 1 are partly illegible (only `100` and `500`
//!   are legible); we span the same ranges with `m ∈ {100, 1000}` ×
//!   `L ∈ {10, 100, 500}` and region `k = m/2`, as recorded in DESIGN.md.
//!
//! Every case id is stable and every random case uses a seed derived from
//! its position, so the catalog is fully deterministic.

use crate::{adversary, random, structured};
use ring_sim::Instance;
use serde::{Deserialize, Serialize};

/// Which part of Table 1 a case belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Part {
    /// Structured (36 cases).
    Structured,
    /// Uniform random (9 cases).
    Random,
    /// Evil adversary (6 cases).
    Adversary,
}

impl std::fmt::Display for Part {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Part::Structured => write!(f, "I"),
            Part::Random => write!(f, "II"),
            Part::Adversary => write!(f, "III"),
        }
    }
}

/// One test case of the catalog.
#[derive(Debug, Clone)]
pub struct CatalogCase {
    /// Stable identifier, e.g. `"I-m100-d3-huge"`.
    pub id: String,
    /// Table 1 part.
    pub part: Part,
    /// Human-readable description.
    pub description: String,
    /// The instance itself.
    pub instance: Instance,
}

const RING_SIZES: [usize; 3] = [10, 100, 1000];

fn load_name(load: u64) -> &'static str {
    match load {
        structured::loads::HUGE => "huge",
        structured::loads::LARGE => "large",
        structured::loads::BIG => "big",
        _ => "custom",
    }
}

/// Builds the full 51-case catalog.
pub fn catalog() -> Vec<CatalogCase> {
    let mut cases = Vec::with_capacity(51);
    let mut seed = 0x5eed_1994u64;

    // Part I: structured.
    for &m in &RING_SIZES {
        for dist in 1..=4u32 {
            for &load in &[
                structured::loads::HUGE,
                structured::loads::LARGE,
                structured::loads::BIG,
            ] {
                seed += 1;
                let instance = match dist {
                    1 => structured::concentrated_node(m, load),
                    2 => structured::concentrated_region(m, load),
                    3 => structured::concentrated_node_random_bg(m, load, seed),
                    4 => structured::concentrated_region_random_bg(m, load, seed),
                    _ => unreachable!(),
                };
                cases.push(CatalogCase {
                    id: format!("I-m{m}-d{dist}-{}", load_name(load)),
                    part: Part::Structured,
                    description: format!(
                        "ring {m}, distribution {dist}, {} jobs per heavy processor",
                        load
                    ),
                    instance,
                });
            }
        }
    }

    // Part II: uniform random.
    for &m in &RING_SIZES {
        for &max in &[100u64, 500, 1000] {
            seed += 1;
            cases.push(CatalogCase {
                id: format!("II-m{m}-r{max}"),
                part: Part::Random,
                description: format!("ring {m}, loads uniform in 0..={max}"),
                instance: random::uniform(m, max, seed),
            });
        }
    }

    // Part III: evil adversary. The legible fragment of Table 1 shows the
    // adversary's lower-bound choices L = 100 and 500; crossed with the
    // three ring sizes that gives the six cases. The region size k is not
    // recorded; we use k = m/2 (DESIGN.md §5).
    for &m in &RING_SIZES {
        for &l in &[100u64, 500] {
            let k = m / 2;
            cases.push(CatalogCase {
                id: format!("III-m{m}-L{l}-k{k}"),
                part: Part::Adversary,
                description: format!("ring {m}, adversary target L={l}, region k={k}"),
                instance: adversary::instance(m, l, k),
            });
        }
    }

    cases
}

/// Looks up one catalog case by its stable id (`None` if unknown). Builds
/// only as much of the catalog as the linear scan needs; ids are the
/// `"I-m100-d3-huge"` strings listed by [`catalog`].
pub fn catalog_case(id: &str) -> Option<CatalogCase> {
    catalog().into_iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_case_finds_known_ids_only() {
        let case = catalog_case("II-m100-r500").expect("known id");
        assert_eq!(case.part, Part::Random);
        assert!(catalog_case("II-m100-r501").is_none());
    }

    #[test]
    fn catalog_has_51_cases() {
        let c = catalog();
        assert_eq!(c.len(), 51);
        assert_eq!(c.iter().filter(|c| c.part == Part::Structured).count(), 36);
        assert_eq!(c.iter().filter(|c| c.part == Part::Random).count(), 9);
        assert_eq!(c.iter().filter(|c| c.part == Part::Adversary).count(), 6);
    }

    #[test]
    fn ids_are_unique() {
        let c = catalog();
        let mut ids: Vec<&str> = c.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 51);
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = catalog();
        let b = catalog();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.instance, y.instance);
        }
    }

    #[test]
    fn every_case_is_nonempty() {
        for case in catalog() {
            assert!(case.instance.total_work() > 0, "case {} is empty", case.id);
        }
    }

    #[test]
    fn structured_cases_have_expected_heavy_load() {
        let c = catalog();
        let case = c.iter().find(|c| c.id == "I-m100-d1-huge").unwrap();
        assert_eq!(case.instance.load(0), 100_000);
        assert_eq!(case.instance.total_work(), 100_000);
        let case = c.iter().find(|c| c.id == "I-m1000-d2-big").unwrap();
        assert_eq!(case.instance.total_work(), 100 * 1_000);
    }

    #[test]
    fn adversary_cases_hit_their_target_bound() {
        for case in catalog().iter().filter(|c| c.part == Part::Adversary) {
            let lb = ring_opt::lemma1_lower_bound(&case.instance);
            // The construction calibrates the Lemma 1 bound to exactly L.
            let l: u64 = case
                .id
                .split("-L")
                .nth(1)
                .unwrap()
                .split('-')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(lb, l, "case {}", case.id);
        }
    }
}
