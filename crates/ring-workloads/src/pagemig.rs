//! Ring page migration workloads (after Khorramian–Matsubayashi, see
//! PAPERS.md): request streams that chase a page around the ring.
//!
//! In the page-migration problem a shared page lives at one ring node and
//! requests arrive at other nodes; serving a request costs its distance to
//! the page, and the algorithm may migrate the page at distance × size
//! cost. As a *scheduling* workload the same access pattern makes a
//! pointed adversary: the work hotspot performs a seeded random walk, and
//! every wave releases most of its jobs near the hotspot with a thin
//! uniform background. Online schedulers that rebalance toward the current
//! hotspot are punished when it walks away — the scheduling analogue of
//! paying for page migration — while the offline optimum sees the whole
//! walk in advance.
//!
//! Scripts are deterministic in the seed (xoshiro via the workspace `rand`
//! shim) and time-sorted, ready for `ring_sched::dynamic` or the online
//! policy suite.

use crate::adversary::ArrivalScript;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a page-migration script.
#[derive(Debug, Clone, Copy)]
pub struct PageMigration {
    /// Ring size.
    pub m: usize,
    /// Number of request waves.
    pub waves: u64,
    /// Steps between waves.
    pub period: u64,
    /// Jobs released per wave at the hotspot neighborhood.
    pub burst: u64,
    /// Largest per-wave hotspot hop (the walk draws uniformly from
    /// `-drift..=drift`).
    pub drift: usize,
    /// Jobs released uniformly at random per wave as background noise
    /// (0 for a pure hotspot stream).
    pub background: u64,
}

impl PageMigration {
    /// A hotspot walk with a thin background on an `m`-ring.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `waves == 0`, or `burst == 0`.
    pub fn new(m: usize, waves: u64, period: u64, burst: u64) -> Self {
        assert!(m > 0, "need at least one processor");
        assert!(waves > 0 && burst > 0, "need requests to serve");
        PageMigration {
            m,
            waves,
            period,
            burst,
            drift: (m / 8).max(1),
            background: burst / 8,
        }
    }

    /// Builds the deterministic arrival script for `seed`.
    pub fn script(&self, seed: u64) -> ArrivalScript {
        let mut rng = SmallRng::seed_from_u64(seed ^ SEED_SPACE);
        let mut hotspot = rng.gen_range(0..self.m);
        let mut script: ArrivalScript = Vec::new();
        for w in 0..self.waves {
            let t = w * self.period;
            // The wave's burst lands split across the hotspot and its two
            // neighbors (requests cluster near the page, not on it alone).
            let at = |off: usize| (hotspot + off) % self.m;
            let half = self.burst / 2;
            let quarter = self.burst / 4;
            let rest = self.burst - half - quarter;
            for (p, c) in [(at(0), half), (at(1), quarter), (at(self.m - 1), rest)] {
                if c > 0 {
                    script.push((t, p, c));
                }
            }
            for _ in 0..self.background {
                script.push((t, rng.gen_range(0..self.m), 1));
            }
            // The page walks: a bounded signed hop, wrapping the ring.
            let hop = rng.gen_range(0..=2 * self.drift) as i64 - self.drift as i64;
            hotspot = ((hotspot as i64 + hop).rem_euclid(self.m as i64)) as usize;
        }
        // Merge same-(time, processor) entries so scripts stay compact and
        // canonical whatever the background draws were.
        script.sort_by_key(|&(t, p, _)| (t, p));
        let mut merged: ArrivalScript = Vec::with_capacity(script.len());
        for (t, p, c) in script {
            match merged.last_mut() {
                Some(last) if last.0 == t && last.1 == p => last.2 += c,
                _ => merged.push((t, p, c)),
            }
        }
        merged
    }
}

/// Seed-spacing constant: keeps page-migration streams decorrelated from
/// other generators fed the same user seed.
const SEED_SPACE: u64 = 0x9a6e_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_in_the_seed() {
        let cfg = PageMigration::new(32, 6, 10, 40);
        assert_eq!(cfg.script(7), cfg.script(7));
        assert_ne!(cfg.script(7), cfg.script(8));
    }

    #[test]
    fn total_work_is_waves_times_burst_plus_background() {
        let cfg = PageMigration::new(16, 5, 8, 32);
        let total: u64 = cfg.script(3).iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 5 * (32 + cfg.background));
    }

    #[test]
    fn scripts_are_time_sorted_and_canonical() {
        let cfg = PageMigration::new(16, 8, 4, 24);
        let s = cfg.script(11);
        assert!(s.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        assert!(s.iter().all(|&(_, p, c)| p < 16 && c > 0));
    }

    #[test]
    fn hotspot_actually_moves() {
        // Over enough waves the heavy processor must change (the walk is
        // not degenerate).
        let cfg = PageMigration::new(64, 12, 10, 64);
        let s = cfg.script(5);
        let heavy_at = |t: u64| -> usize {
            s.iter()
                .filter(|&&(tt, _, _)| tt == t)
                .max_by_key(|&&(_, _, c)| c)
                .unwrap()
                .1
        };
        let spots: std::collections::BTreeSet<usize> = (0..12).map(|w| heavy_at(w * 10)).collect();
        assert!(spots.len() > 1, "hotspot never moved: {spots:?}");
    }

    #[test]
    #[should_panic(expected = "need requests")]
    fn empty_stream_rejected() {
        let _ = PageMigration::new(8, 0, 4, 10);
    }
}
