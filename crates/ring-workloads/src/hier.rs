//! Datacenter-shaped workloads for the hierarchical ring topology.
//!
//! A [`ring_sim::HierRing`] is `racks` rings of `rack_len` nodes whose
//! index-0 nodes also sit on an uplink ring — the "datacenter" shape. The
//! canonical workload is a **hotspot rack**: one rack's nodes are heavily
//! loaded (a tenant burst landing on one rack) while every other node
//! carries light random background. Whether the burst can drain through
//! the rack's single uplink is exactly the bottleneck the hierarchical
//! topology exists to study.
//!
//! Loads are row-major in rack-major node order (`rack * rack_len + idx`),
//! matching `HierRing` node numbering, so the vectors feed straight into
//! the fabric engine and the scenario DSL.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_sim::{HierRing, Topology};

/// A hotspot-rack datacenter workload: every node of rack `hot_rack`
/// carries `hot` jobs, every other node draws background uniformly from
/// `0..=bg`. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `hot_rack` is out of range.
pub fn hotspot_rack(
    racks: usize,
    rack_len: usize,
    hot_rack: usize,
    hot: u64,
    bg: u64,
    seed: u64,
) -> Vec<u64> {
    let topo = HierRing::new(racks, rack_len);
    assert!(hot_rack < racks, "hot rack {hot_rack} of {racks}");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..topo.len())
        .map(|v| {
            if v / rack_len == hot_rack {
                hot
            } else {
                rng.gen_range(0..=bg)
            }
        })
        .collect()
}

/// A skewed datacenter: rack `r` carries `base << r` jobs on its index-0
/// (uplink) node and zero elsewhere — every rack's pile sits exactly on
/// its gateway, the best case for the uplink ring and the worst case for
/// intra-rack balance. Deterministic (no randomness).
pub fn uplink_piles(racks: usize, rack_len: usize, base: u64) -> Vec<u64> {
    let topo = HierRing::new(racks, rack_len);
    (0..topo.len())
        .map(|v| {
            let (rack, idx) = (v / rack_len, v % rack_len);
            if idx == 0 {
                base << rack.min(32)
            } else {
                0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_is_seeded_and_shaped() {
        let a = hotspot_rack(4, 8, 1, 500, 20, 7);
        let b = hotspot_rack(4, 8, 1, 500, 20, 7);
        let c = hotspot_rack(4, 8, 1, 500, 20, 8);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seed should differ");
        assert_eq!(a.len(), 32);
        for (v, &load) in a.iter().enumerate() {
            if v / 8 == 1 {
                assert_eq!(load, 500);
            } else {
                assert!(load <= 20);
            }
        }
    }

    #[test]
    fn uplink_piles_sit_on_gateways() {
        let v = uplink_piles(3, 5, 10);
        assert_eq!(v.len(), 15);
        assert_eq!(v[0], 10);
        assert_eq!(v[5], 20);
        assert_eq!(v[10], 40);
        for (i, &x) in v.iter().enumerate() {
            if i % 5 != 0 {
                assert_eq!(x, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "hot rack")]
    fn out_of_range_rack_rejected() {
        let _ = hotspot_rack(2, 4, 2, 10, 5, 0);
    }
}
