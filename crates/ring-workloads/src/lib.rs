//! # ring-workloads — instance generators and the §6 experiment catalog
//!
//! Provides every workload family used in the paper's evaluation (Table 1)
//! plus generic generators for tests, examples, and benchmarks:
//!
//! * [`structured`] — the paper's four structured distributions
//!   (concentrated on a node / in a region, with an empty or uniformly
//!   random background);
//! * [`random`] — uniform random loads;
//! * [`adversary`] — instances built by the §3 "evil adversary" strategy
//!   (every prefix window saturated at `M_k = L² + (k−1)L`), plus
//!   adversarial *arrival scripts* for the online suite (spike trains, the
//!   §5 indistinguishability pair, migration punishers);
//! * [`pagemig`] — ring page migration request streams
//!   (Khorramian–Matsubayashi): a seeded hotspot walk with background
//!   noise;
//! * [`section5`] — the two-instance construction behind the 1.06
//!   distributed lower bound (Theorem 2);
//! * [`sized`] — arbitrary-job-size workloads for the §4.2 algorithm;
//! * [`mod@catalog`] — the full 51-case test catalog of Table 1, with
//!   deterministic seeds.
//!
//! All generators are deterministic given their seed, so every figure in
//! EXPERIMENTS.md is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod catalog;
pub mod hier;
pub mod io;
pub mod pagemig;
pub mod random;
pub mod section5;
pub mod sized;
pub mod structured;

pub use adversary::ArrivalScript;
pub use catalog::{catalog, CatalogCase, Part};
pub use hier::{hotspot_rack, uplink_piles};
