//! The §5 two-instance construction behind Theorem 2 (no distributed
//! algorithm beats a 1.06-approximation).
//!
//! * Instance `I`: `W` unit jobs on each of two processors `p₁`, `p₂` at
//!   ring distance `2z + 1`.
//! * Instance `J`: `W` unit jobs on `p₁` only.
//!
//! For the first `z` steps no processor can distinguish the two instances
//! (information travels one hop per step), so a distributed algorithm must
//! behave identically on both — and committing to either one costs on the
//! other. Lemma 8 gives the optimum of `I`: the `t` with
//! `2W = 2t² − (t−z)² + (t−z)`; the optimum of `J` is `ceil(sqrt(W))`.
//!
//! This module builds both instances and evaluates the bound's arithmetic
//! so the construction can be demonstrated numerically
//! (`examples/lower_bound.rs`).

use ring_sim::Instance;

/// Parameters of the construction.
#[derive(Debug, Clone, Copy)]
pub struct Section5 {
    /// Jobs per heap.
    pub w: u64,
    /// Half-gap: the heaps sit `2z + 1` apart.
    pub z: usize,
    /// Ring size (the paper requires `m − (2z+1) ≫ L(I)`).
    pub m: usize,
    /// Position of `p₁`.
    pub p1: usize,
}

impl Section5 {
    /// A construction with `z = (1−ε)·t` as in the paper's proof, sized so
    /// the ring is comfortably larger than any optimal schedule.
    pub fn new(w: u64, z: usize, m: usize) -> Self {
        let s = Section5 { w, z, m, p1: 0 };
        assert!(
            s.p2() < m,
            "ring too small for the requested gap (m={m}, z={z})"
        );
        s
    }

    /// Position of `p₂` (distance `2z + 1` clockwise from `p₁`).
    pub fn p2(&self) -> usize {
        self.p1 + 2 * self.z + 1
    }

    /// Instance `I`: two heaps of `w`.
    pub fn instance_i(&self) -> Instance {
        let mut v = vec![0u64; self.m];
        v[self.p1] = self.w;
        v[self.p2()] = self.w;
        Instance::from_loads(v)
    }

    /// Instance `J`: a single heap of `w`.
    pub fn instance_j(&self) -> Instance {
        let mut v = vec![0u64; self.m];
        v[self.p1] = self.w;
        Instance::from_loads(v)
    }

    /// The Lemma 8 capacity: jobs processable from the two heaps within `t`
    /// steps, `2t² − (t−z)² + (t−z)` for `t > z` (and the pre-midpoint
    /// closed form for `t ≤ z`).
    pub fn lemma8_capacity(&self, t: u64) -> u64 {
        let z = self.z as u64;
        if t <= z {
            // Σ_{i=0}^{t-1} (2 + 4i) = 2t + 4·t(t-1)/2 = 2t².
            return 2 * t * t;
        }
        2 * t * t - (t - z) * (t - z) + (t - z)
    }

    /// The optimum makespan of instance `I` according to Lemma 8: the
    /// smallest `t` whose capacity covers `2W`.
    pub fn lemma8_optimum(&self) -> u64 {
        let need = 2 * self.w;
        let mut t = 1u64;
        while self.lemma8_capacity(t) < need {
            t += 1;
        }
        t
    }

    /// The optimum makespan of instance `J`: `ceil(sqrt(W))` on a large
    /// ring.
    pub fn optimum_j(&self) -> u64 {
        let mut t = 0u64;
        while t * t < self.w {
            t += 1;
        }
        t
    }
}

/// The Theorem 2 contradiction margin, per unit of `t`, in the continuous
/// limit (lower-order `+1`-style terms dropped).
///
/// Assume a distributed `(1+delta)`-approximation `A`. On instance `J` it
/// must finish by `u = (1+δ)·sqrt(W)`; on `I` it behaved identically
/// through step `z`, so at time `u` at least
/// `V = 2W − 2u² + (u−z)²` work remains inside a region of width
/// `2(u−z)`, which needs `q ≈ sqrt((u−z)² + V) − (u−z)` more time
/// (Lemma 1). If `u + q > (1+δ)·OPT(I) = (1+δ)·t`, `A` contradicts its own
/// guarantee. This function returns `(u + q − (1+δ)t)/t`: Theorem 2 holds
/// for `(ε, δ)` iff it is positive.
pub fn theorem2_margin(eps: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&eps) && delta >= 0.0);
    let s = (1.0 - eps * eps / 2.0).sqrt(); // sqrt(W)/t
    let u = (1.0 + delta) * s; // finish time on J, per t
    let z = 1.0 - eps;
    let a = u - z; // half-width of the undecided region, per t
    if a <= 0.0 {
        // A finished J before information could even meet: everything
        // about I is still unprocessed; the margin is trivially positive.
        return f64::INFINITY;
    }
    let v = 2.0 * (1.0 - eps * eps / 2.0) - 2.0 * u * u + a * a; // V per t²
    if v <= 0.0 {
        return u - (1.0 + delta); // no residual work argument available
    }
    let q = (a * a + v).sqrt() - a;
    u + q - (1.0 + delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_opt::exact::{optimum_uncapacitated, SolverBudget};

    #[test]
    fn lemma8_matches_flow_optimum() {
        // The closed form must agree with the exact solver.
        for (w, z) in [(50u64, 2usize), (100, 3), (200, 5), (32, 1)] {
            let s = Section5::new(w, z, 256);
            let inst = s.instance_i();
            let exact = optimum_uncapacitated(&inst, None, &SolverBudget::default());
            assert_eq!(
                exact.value(),
                s.lemma8_optimum(),
                "w={w} z={z}: flow={} lemma8={}",
                exact.value(),
                s.lemma8_optimum()
            );
        }
    }

    #[test]
    fn optimum_j_is_sqrt() {
        let s = Section5::new(100, 2, 128);
        assert_eq!(s.optimum_j(), 10);
        let exact = optimum_uncapacitated(&s.instance_j(), None, &SolverBudget::default());
        assert_eq!(exact.value(), 10);
    }

    #[test]
    fn capacity_closed_form_pre_midpoint() {
        let s = Section5::new(1000, 10, 512);
        // t <= z: four new processors join per step per the paper.
        assert_eq!(s.lemma8_capacity(1), 2);
        assert_eq!(s.lemma8_capacity(2), 8);
        assert_eq!(s.lemma8_capacity(3), 18);
    }

    #[test]
    fn instances_differ_only_at_p2() {
        let s = Section5::new(64, 4, 64);
        let i = s.instance_i();
        let j = s.instance_j();
        for p in 0..64 {
            if p == s.p2() {
                assert_eq!(i.load(p), 64);
                assert_eq!(j.load(p), 0);
            } else {
                assert_eq!(i.load(p), j.load(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "ring too small")]
    fn oversized_gap_rejected() {
        let _ = Section5::new(10, 10, 12);
    }

    #[test]
    fn theorem2_constants_check_out() {
        // The paper picks ε = 0.71 to defeat any 1.06-approximation...
        let margin = theorem2_margin(0.71, 0.06);
        assert!(margin > 0.0, "margin {margin}");
        // ...and notes the argument "is actually true for a value somewhat
        // larger than δ = .06" — but only barely: the crossing sits
        // between 0.062 and 0.065, so 0.06 was essentially the best clean
        // constant available.
        assert!(theorem2_margin(0.71, 0.062) > 0.0);
        assert!(theorem2_margin(0.71, 0.065) < 0.0);
        assert!(theorem2_margin(0.71, 0.09) < 0.0);
    }

    #[test]
    fn epsilon_near_071_is_a_good_choice() {
        // Among ε values, 0.71 should be near the maximizer of the largest
        // refutable δ.
        let best_delta = |eps: f64| {
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            for _ in 0..60 {
                let mid = (lo + hi) / 2.0;
                if theorem2_margin(eps, mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let at_071 = best_delta(0.71);
        assert!(
            at_071 > 0.06 && at_071 < 0.07,
            "0.71 refutes up to {at_071}"
        );
        for eps in [0.3, 0.5, 0.9] {
            assert!(
                best_delta(eps) <= at_071 + 0.01,
                "eps={eps} refutes {} > {}",
                best_delta(eps),
                at_071
            );
        }
    }
}
