//! The §3 "evil adversary" construction (Table 1, part III).
//!
//! The worst-case analysis lets an adversary choose, for a target lower
//! bound `L`, an instance that maximizes how far bucket `B_1` travels:
//! every prefix window is saturated at its Lemma 2 capacity
//! `M_k = L² + (k−1)L`. Solving the telescope, the saturating loads are
//!
//! ```text
//! x_0 = L,   x_1 = L²,   x_2 = x_3 = … = x_{k-1} = L,   rest = 0
//! ```
//!
//! (window `[0..j]` holds `L² + j·L = M_{j+1}` exactly, and window
//! `[1..j]` holds `M_j` exactly). The adversary may pick both `L` and the
//! region size `k` (§6.1); the paper's six `(L, k)` choices are partly
//! illegible in the surviving scan, so the catalog spans the same ranges —
//! see DESIGN.md §5.

use ring_sim::Instance;

/// Builds the adversary instance for lower bound `l` over a region of `k`
/// processors on an `m`-ring.
///
/// # Panics
///
/// Panics if `k > m` or `k == 0` or `l == 0`.
pub fn instance(m: usize, l: u64, k: usize) -> Instance {
    assert!(k >= 1 && k <= m, "region must fit the ring");
    assert!(l >= 1, "the target lower bound must be positive");
    let mut v = vec![0u64; m];
    v[0] = l;
    if k >= 2 {
        v[1] = l * l;
    }
    for x in v.iter_mut().take(k).skip(2) {
        *x = l;
    }
    Instance::from_loads(v)
}

/// The Lemma 2 window capacity `M_k = L² + (k−1)·L`.
pub fn window_capacity(l: u64, k: usize) -> u64 {
    l * l + (k as u64 - 1) * l
}

/// An arrival script: `(release step, processor, unit jobs)` triples,
/// time-sorted. Kept as plain tuples so `ring-workloads` stays independent
/// of `ring-sched` (whose `dynamic::Arrival` it maps onto 1:1).
pub type ArrivalScript = Vec<(u64, usize, u64)>;

/// Sorts a script by `(time, processor)` — every generator below returns
/// its output through this, so scripts are always valid inputs for the
/// online policies (which require time order).
fn sorted(mut script: ArrivalScript) -> ArrivalScript {
    script.sort_by_key(|&(t, p, _)| (t, p));
    script
}

/// A spike train: the §3 adversary instance released repeatedly, each wave
/// rotated a quarter-ring from the last. Online algorithms that spread the
/// first spike's work perfectly are punished when the next spike lands on
/// the processors they just loaded.
///
/// # Panics
///
/// Panics if `k > m`, `k == 0`, `l == 0`, or `waves == 0`.
pub fn spike_train(m: usize, l: u64, k: usize, waves: u64, period: u64) -> ArrivalScript {
    assert!(waves >= 1, "need at least one spike");
    let base = instance(m, l, k);
    let mut script = Vec::new();
    for w in 0..waves {
        let t = w * period;
        let rot = (w as usize * (m / 4)) % m;
        for (p, &load) in base.loads().iter().enumerate() {
            if load > 0 {
                script.push((t, (p + rot) % m, load));
            }
        }
    }
    sorted(script)
}

/// The §5 indistinguishability pair as arrival scripts: `I` (two heaps of
/// `w`, `2z + 1` apart) and `J` (one heap), both released at `t = 0`.
/// For the first `z` steps no processor can tell which script it is in —
/// the construction behind the 1.06 distributed lower bound (Theorem 2).
/// Returns `(I, J)`.
pub fn section5_pair(w: u64, z: usize, m: usize) -> (ArrivalScript, ArrivalScript) {
    let s = crate::section5::Section5::new(w, z, m);
    let to_script = |inst: &ring_sim::Instance| {
        sorted(
            inst.loads()
                .iter()
                .enumerate()
                .filter(|(_, &x)| x > 0)
                .map(|(p, &x)| (0u64, p, x))
                .collect(),
        )
    };
    (to_script(&s.instance_i()), to_script(&s.instance_j()))
}

/// A migration-punishing sequence: bursts alternate between a processor
/// and its antipode with spacing just long enough that a migrating
/// algorithm has committed its rebalance before the counter-burst lands.
/// Work migrated toward the previous burst is maximally far from the next.
///
/// # Panics
///
/// Panics if `m < 2`, `burst == 0`, or `waves == 0`.
pub fn migration_punisher(m: usize, burst: u64, waves: u64, spacing: u64) -> ArrivalScript {
    assert!(m >= 2, "need an antipode");
    assert!(burst >= 1 && waves >= 1, "need work to punish with");
    let anti = m / 2;
    sorted(
        (0..waves)
            .map(|w| {
                let p = if w % 2 == 0 { 0 } else { anti };
                (w * spacing, p, burst)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_prefix_window_is_saturated() {
        let (m, l, k) = (64usize, 7u64, 20usize);
        let inst = instance(m, l, k);
        // Window starting at processor 1 of width j holds exactly M_j.
        for j in 1..k {
            assert_eq!(inst.arc_work(1, j), window_capacity(l, j), "width {j}");
        }
        // Prefix [0..j] holds M_{j+1} exactly.
        for j in 2..=k {
            assert_eq!(inst.arc_work(0, j), window_capacity(l, j), "prefix {j}");
        }
    }

    #[test]
    fn lemma1_bound_equals_l() {
        let inst = instance(128, 12, 40);
        assert_eq!(ring_opt::lemma1_lower_bound(&inst), 12);
    }

    #[test]
    fn total_work_is_mk() {
        let inst = instance(100, 9, 30);
        assert_eq!(inst.total_work(), window_capacity(9, 30));
    }

    #[test]
    fn degenerate_k1() {
        let inst = instance(10, 5, 1);
        assert_eq!(inst.total_work(), 5);
        assert_eq!(inst.load(0), 5);
    }

    #[test]
    #[should_panic(expected = "fit the ring")]
    fn oversized_region_rejected() {
        let _ = instance(10, 5, 11);
    }

    #[test]
    fn spike_train_repeats_the_adversary_load() {
        let script = spike_train(32, 5, 8, 3, 40);
        let per_wave = window_capacity(5, 8);
        let total: u64 = script.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 3 * per_wave);
        assert!(script.windows(2).all(|w| w[0].0 <= w[1].0), "time-sorted");
        // Wave 1 is rotated a quarter ring: its heavy processor moved.
        let wave0_heavy = script
            .iter()
            .find(|&&(t, _, c)| t == 0 && c == 25)
            .unwrap()
            .1;
        let wave1_heavy = script
            .iter()
            .find(|&&(t, _, c)| t == 40 && c == 25)
            .unwrap()
            .1;
        assert_eq!((wave0_heavy + 8) % 32, wave1_heavy);
    }

    #[test]
    fn section5_pair_differs_only_at_p2() {
        let (i, j) = section5_pair(100, 3, 64);
        assert_eq!(j, vec![(0, 0, 100)]);
        assert_eq!(i, vec![(0, 0, 100), (0, 7, 100)]);
    }

    #[test]
    fn migration_punisher_alternates_antipodes() {
        let script = migration_punisher(16, 40, 4, 6);
        assert_eq!(
            script,
            vec![(0, 0, 40), (6, 8, 40), (12, 0, 40), (18, 8, 40)]
        );
    }
}
