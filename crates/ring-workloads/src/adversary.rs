//! The §3 "evil adversary" construction (Table 1, part III).
//!
//! The worst-case analysis lets an adversary choose, for a target lower
//! bound `L`, an instance that maximizes how far bucket `B_1` travels:
//! every prefix window is saturated at its Lemma 2 capacity
//! `M_k = L² + (k−1)L`. Solving the telescope, the saturating loads are
//!
//! ```text
//! x_0 = L,   x_1 = L²,   x_2 = x_3 = … = x_{k-1} = L,   rest = 0
//! ```
//!
//! (window `[0..j]` holds `L² + j·L = M_{j+1}` exactly, and window
//! `[1..j]` holds `M_j` exactly). The adversary may pick both `L` and the
//! region size `k` (§6.1); the paper's six `(L, k)` choices are partly
//! illegible in the surviving scan, so the catalog spans the same ranges —
//! see DESIGN.md §5.

use ring_sim::Instance;

/// Builds the adversary instance for lower bound `l` over a region of `k`
/// processors on an `m`-ring.
///
/// # Panics
///
/// Panics if `k > m` or `k == 0` or `l == 0`.
pub fn instance(m: usize, l: u64, k: usize) -> Instance {
    assert!(k >= 1 && k <= m, "region must fit the ring");
    assert!(l >= 1, "the target lower bound must be positive");
    let mut v = vec![0u64; m];
    v[0] = l;
    if k >= 2 {
        v[1] = l * l;
    }
    for x in v.iter_mut().take(k).skip(2) {
        *x = l;
    }
    Instance::from_loads(v)
}

/// The Lemma 2 window capacity `M_k = L² + (k−1)·L`.
pub fn window_capacity(l: u64, k: usize) -> u64 {
    l * l + (k as u64 - 1) * l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_prefix_window_is_saturated() {
        let (m, l, k) = (64usize, 7u64, 20usize);
        let inst = instance(m, l, k);
        // Window starting at processor 1 of width j holds exactly M_j.
        for j in 1..k {
            assert_eq!(inst.arc_work(1, j), window_capacity(l, j), "width {j}");
        }
        // Prefix [0..j] holds M_{j+1} exactly.
        for j in 2..=k {
            assert_eq!(inst.arc_work(0, j), window_capacity(l, j), "prefix {j}");
        }
    }

    #[test]
    fn lemma1_bound_equals_l() {
        let inst = instance(128, 12, 40);
        assert_eq!(ring_opt::lemma1_lower_bound(&inst), 12);
    }

    #[test]
    fn total_work_is_mk() {
        let inst = instance(100, 9, 30);
        assert_eq!(inst.total_work(), window_capacity(9, 30));
    }

    #[test]
    fn degenerate_k1() {
        let inst = instance(10, 5, 1);
        assert_eq!(inst.total_work(), 5);
        assert_eq!(inst.load(0), 5);
    }

    #[test]
    #[should_panic(expected = "fit the ring")]
    fn oversized_region_rejected() {
        let _ = instance(10, 5, 11);
    }
}
