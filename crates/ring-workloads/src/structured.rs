//! The structured distributions of Table 1, part I.
//!
//! Four shapes, parameterized by ring size `m` and per-heavy-processor job
//! count `load` (the paper's Huge = 100 000, Large = 10 000, Big = 1 000):
//!
//! 1. concentrated on one node, zero elsewhere;
//! 2. concentrated in a region, zero elsewhere;
//! 3. concentrated on a node, `rand(100)` elsewhere;
//! 4. concentrated in a region, `rand(100)` elsewhere.
//!
//! The paper does not state the region width; we use
//! `max(2, m/10)` consecutive processors, each carrying `load` jobs
//! (recorded in DESIGN.md). `rand(100)` draws uniformly from `0..100`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ring_sim::Instance;

/// The paper's heavy-load sizes.
pub mod loads {
    /// "Huge" heavy-processor load.
    pub const HUGE: u64 = 100_000;
    /// "Large" heavy-processor load.
    pub const LARGE: u64 = 10_000;
    /// "Big" heavy-processor load.
    pub const BIG: u64 = 1_000;
}

/// Width of the "concentrated in a region" block for an `m`-ring.
pub fn region_width(m: usize) -> usize {
    (m / 10).max(2).min(m)
}

/// Distribution 1: `load` jobs on processor 0, zero elsewhere.
pub fn concentrated_node(m: usize, load: u64) -> Instance {
    Instance::concentrated(m, 0, load)
}

/// Distribution 2: `load` jobs on each of the [`region_width`] processors
/// starting at 0, zero elsewhere.
pub fn concentrated_region(m: usize, load: u64) -> Instance {
    let mut v = vec![0u64; m];
    for x in v.iter_mut().take(region_width(m)) {
        *x = load;
    }
    Instance::from_loads(v)
}

/// Distribution 3: `load` jobs on processor 0, `rand(100)` elsewhere.
pub fn concentrated_node_random_bg(m: usize, load: u64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let v = (0..m)
        .map(|i| if i == 0 { load } else { rng.gen_range(0..100) })
        .collect();
    Instance::from_loads(v)
}

/// Distribution 4: a heavy region as in distribution 2, `rand(100)`
/// elsewhere.
pub fn concentrated_region_random_bg(m: usize, load: u64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = region_width(m);
    let v = (0..m)
        .map(|i| if i < r { load } else { rng.gen_range(0..100) })
        .collect();
    Instance::from_loads(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_width_bounds() {
        assert_eq!(region_width(10), 2);
        assert_eq!(region_width(100), 10);
        assert_eq!(region_width(1000), 100);
        assert_eq!(region_width(2), 2);
        assert_eq!(region_width(1), 1); // clamped to the ring
    }

    #[test]
    fn d1_has_one_heavy_processor() {
        let inst = concentrated_node(100, loads::BIG);
        assert_eq!(inst.total_work(), 1_000);
        assert_eq!(inst.loads().iter().filter(|&&x| x > 0).count(), 1);
    }

    #[test]
    fn d2_has_region_width_heavy_processors() {
        let inst = concentrated_region(100, loads::LARGE);
        assert_eq!(inst.total_work(), 10 * 10_000);
        assert_eq!(inst.loads().iter().filter(|&&x| x > 0).count(), 10);
    }

    #[test]
    fn d3_background_is_bounded_and_seeded() {
        let a = concentrated_node_random_bg(50, loads::BIG, 7);
        let b = concentrated_node_random_bg(50, loads::BIG, 7);
        let c = concentrated_node_random_bg(50, loads::BIG, 8);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seed should differ");
        assert_eq!(a.load(0), 1_000);
        assert!(a.loads()[1..].iter().all(|&x| x < 100));
    }

    #[test]
    fn d4_region_plus_background() {
        let inst = concentrated_region_random_bg(100, loads::BIG, 3);
        for i in 0..10 {
            assert_eq!(inst.load(i), 1_000);
        }
        assert!(inst.loads()[10..].iter().all(|&x| x < 100));
    }
}
