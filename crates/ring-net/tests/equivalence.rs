//! Sequential engine ≡ threaded executor.
//!
//! The policies are deterministic and both executors implement the same
//! synchronous model, so makespans and per-node work must agree exactly.
//! Passing under the threaded executor also certifies the policies use
//! only local state + neighbor messages (threads cannot see each other).

use ring_net::{run_capacitated_threaded, run_unit_threaded};
use ring_sched::capacitated::run_capacitated;
use ring_sched::unit::{run_unit, UnitConfig};
use ring_sim::{Instance, TraceLevel};

fn cases() -> Vec<Instance> {
    vec![
        Instance::concentrated(16, 0, 120),
        Instance::concentrated(9, 4, 300),
        Instance::from_loads(vec![30, 0, 0, 12, 7, 0, 0, 0, 0, 44, 0, 3]),
        Instance::from_loads(vec![5; 8]),
        Instance::from_loads(vec![1000, 0, 0, 0]), // wrap-around path
        Instance::from_loads(vec![17]),            // singleton ring
    ]
}

#[test]
fn unit_algorithms_agree_across_executors() {
    for inst in cases() {
        for (name, cfg) in UnitConfig::all_six() {
            let seq = run_unit(&inst, &cfg).unwrap();
            let thr = run_unit_threaded(&inst, &cfg).unwrap();
            assert_eq!(
                seq.makespan,
                thr.makespan,
                "{name} makespan differs on {:?}",
                inst.loads()
            );
            assert_eq!(
                seq.report.metrics.processed_per_node,
                thr.processed_per_node,
                "{name} work distribution differs on {:?}",
                inst.loads()
            );
        }
    }
}

#[test]
fn capacitated_agrees_across_executors() {
    for inst in cases() {
        let seq = run_capacitated(&inst, TraceLevel::Off).unwrap();
        let thr = run_capacitated_threaded(&inst).unwrap();
        assert_eq!(seq.makespan, thr.makespan, "on {:?}", inst.loads());
        assert_eq!(
            seq.processed,
            thr.processed_per_node,
            "on {:?}",
            inst.loads()
        );
    }
}

#[test]
fn threaded_runs_scale_to_wider_rings() {
    let inst = Instance::concentrated(64, 10, 2048);
    let thr = run_unit_threaded(&inst, &UnitConfig::c2()).unwrap();
    assert_eq!(thr.processed_total(), 2048);
    let seq = run_unit(&inst, &UnitConfig::c2()).unwrap();
    assert_eq!(seq.makespan, thr.makespan);
}

#[test]
fn piggyback_capacitated_agrees_with_sequential_two_message_variant() {
    use ring_net::{run_threaded, ThreadedConfig};
    use ring_sched::capacitated::build_piggyback_nodes;
    use ring_sim::LinkCapacity;

    for inst in cases() {
        let seq = run_capacitated(&inst, TraceLevel::Off).unwrap();
        let nodes = build_piggyback_nodes(&inst);
        let thr = run_threaded(
            nodes,
            inst.total_work(),
            &ThreadedConfig {
                link_capacity: LinkCapacity::UnitJobs,
                max_steps: Some(4 * (inst.total_work() + inst.num_processors() as u64) + 64),
            },
        )
        .unwrap();
        // The single-message framing carries the same information, so the
        // schedule is identical across variant *and* executor.
        assert_eq!(seq.makespan, thr.makespan, "on {:?}", inst.loads());
        assert_eq!(seq.processed, thr.processed_per_node);
    }
}
