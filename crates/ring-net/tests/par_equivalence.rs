//! Three-executor equivalence: `Engine::run` ≡ `Engine::par_run` ≡
//! `ring_net::run_threaded`.
//!
//! All three executors implement the same synchronous round-delayed model,
//! and every policy in the workspace is deterministic, so the schedules must
//! agree *exactly* — the arc-parallel engine bit-for-bit on the whole
//! [`RunReport`] (metrics, trace, observability), the thread-per-processor
//! executor on everything it reports (makespan, per-node work, message
//! count). Divergence under any executor means either a policy peeked at
//! non-local state or an executor broke the model — both bugs this file
//! exists to catch.

use proptest::prelude::*;
use ring_net::run_unit_threaded;
use ring_sched::unit::{
    build_unit_nodes, resume_unit, run_unit, run_unit_checkpointed, run_unit_faulty,
    run_unit_par_faulty, UnitConfig,
};
use ring_sim::stream::{stream_engine, Representation, StreamSpec};
use ring_sim::{
    check_run, CheckpointError, Engine, EngineConfig, FaultPlan, Instance, ParConfig, ParStrategy,
    RunReport, SimError, Snapshot, TraceLevel,
};
use std::sync::{Arc, Mutex};

/// Runs a unit-algorithm config through the arc-parallel engine.
fn par_run_unit(inst: &Instance, cfg: &UnitConfig, shards: usize) -> Result<RunReport, SimError> {
    let nodes = build_unit_nodes(inst, cfg);
    let engine_cfg = EngineConfig {
        max_steps: cfg.max_steps,
        trace: cfg.trace,
        observe: cfg.observe,
        compress: cfg.compress,
        window: cfg.window,
        par: cfg.par,
        ..EngineConfig::default()
    };
    Engine::new(nodes, inst.total_work(), engine_cfg).par_run(shards)
}

/// A fully-pinned work-stealing executor config (no environment fallbacks),
/// so each test case states exactly which schedule knobs it exercises.
fn steal_par(rebalance: bool, tasks: usize, steal_seed: u64, threads: Option<usize>) -> ParConfig {
    ParConfig {
        strategy: Some(ParStrategy::Steal),
        rebalance: Some(rebalance),
        tasks_per_shard: Some(tasks),
        steal_seed: Some(steal_seed),
        threads,
    }
}

/// The locality-window sweep every parallel equivalence case is run under:
/// degenerate (1 — a boundary handshake every round), tiny, prime-offset,
/// and `u64::MAX` ("L": as large as the shortest arc lets it be).
const WINDOWS: [u64; 4] = [1, 2, 7, u64::MAX];

fn cases() -> Vec<Instance> {
    vec![
        Instance::concentrated(16, 0, 120),
        Instance::concentrated(9, 4, 300),
        Instance::from_loads(vec![30, 0, 0, 12, 7, 0, 0, 0, 0, 44, 0, 3]),
        Instance::from_loads(vec![5; 8]),
        Instance::from_loads(vec![1000, 0, 0, 0]), // wrap-around path
        Instance::from_loads(vec![17]),            // singleton ring
    ]
}

#[test]
fn all_six_configs_agree_across_all_three_executors() {
    for inst in cases() {
        for (name, cfg) in UnitConfig::all_six() {
            // Full trace + observability so the bit-for-bit comparison
            // covers every field the report can carry.
            let cfg = cfg.with_trace().with_observe();
            let seq = run_unit(&inst, &cfg).unwrap();
            for shards in [2, 3, 7] {
                for window in WINDOWS {
                    let par = par_run_unit(&inst, &cfg.with_window(window), shards).unwrap();
                    assert_eq!(
                        seq.report,
                        par,
                        "{name}/{shards} shards/window {window} diverged on {:?}",
                        inst.loads()
                    );
                }
            }
            let thr = run_unit_threaded(&inst, &cfg).unwrap();
            assert_eq!(seq.makespan, thr.makespan, "{name} on {:?}", inst.loads());
            assert_eq!(
                seq.report.metrics.processed_per_node,
                thr.processed_per_node,
                "{name} on {:?}",
                inst.loads()
            );
            assert_eq!(
                seq.report.metrics.messages_sent,
                thr.messages_sent,
                "{name} on {:?}",
                inst.loads()
            );
        }
    }
}

/// Base 64 random fault cases, scaled by the `RING_FAULT_SEEDS` environment
/// variable (CI's fault-matrix job sets it to 8 for a 512-case soak).
fn fault_case_count() -> u32 {
    let mult = std::env::var("RING_FAULT_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(1)
        .max(1);
    64 * mult
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Random instances, random fault plans, all six §6 algorithms, shard
    /// counts {1, 2, 3, 7}: `run` and `par_run` produce bit-identical
    /// `RunReport`s under the same plan, every run still places and
    /// processes all work, and the trace-replay oracle accepts it.
    ///
    /// The base 64 cases scale with `RING_FAULT_SEEDS` (CI sets it to 8 for
    /// a 512-case soak).
    #[test]
    fn executors_agree_under_fault_plans(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = FaultPlan::random(m, 48, seed);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let seq = run_unit_faulty(&inst, &cfg, &plan).unwrap();
        prop_assert_eq!(
            seq.report.metrics.total_processed(),
            inst.total_work(),
            "{} lost work under {:?}",
            name,
            &plan
        );
        let violations = check_run(&inst, &seq.report, Some(&plan));
        prop_assert!(
            violations.is_empty(),
            "{} oracle violations under {:?}: {:?}",
            name,
            &plan,
            violations
        );
        for shards in [1usize, 2, 3, 7] {
            let par = run_unit_par_faulty(&inst, &cfg, &plan, shards).unwrap();
            prop_assert_eq!(
                &seq.report,
                &par.report,
                "{} with {} shards diverged under {:?}",
                name,
                shards,
                &plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Quiescent-span step compression is unobservable: for every §6
    /// algorithm, random instance, and random fault plan, the compressed
    /// engine produces a `RunReport` bit-identical to the step-by-step one —
    /// sequentially and across shard counts {1, 2, 3, 7} — and the
    /// trace-replay oracle accepts the compressed run's expanded trace.
    #[test]
    fn compression_is_unobservable_under_fault_plans(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = FaultPlan::random(m, 48, seed);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe();
        let compressed_cfg = cfg.with_compress().with_window(WINDOWS[window]);

        let plain = run_unit_faulty(&inst, &cfg, &plan).unwrap();
        let compressed = run_unit_faulty(&inst, &compressed_cfg, &plan).unwrap();
        prop_assert_eq!(
            &plain.report,
            &compressed.report,
            "{} compression changed the sequential report under {:?}",
            name,
            &plan
        );
        let violations = check_run(&inst, &compressed.report, Some(&plan));
        prop_assert!(
            violations.is_empty(),
            "{} oracle rejected the compressed run under {:?}: {:?}",
            name,
            &plan,
            violations
        );
        for shards in [1usize, 2, 3, 7] {
            let par = run_unit_par_faulty(&inst, &compressed_cfg, &plan, shards).unwrap();
            prop_assert_eq!(
                &plain.report,
                &par.report,
                "{} with {} shards + compression diverged under {:?}",
                name,
                shards,
                &plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Checkpoint/restore is exact: for every §6 algorithm, random
    /// instance, and random fault plan, a run checkpointed every `every`
    /// steps reports bit-identically to the plain run; a snapshot taken at
    /// a random boundary — round-tripped through its byte encoding —
    /// resumes to the *same* bit-identical `RunReport`, with save and
    /// restore shard counts drawn independently from {1, 2, 3, 7} (or the
    /// sequential engine), and the trace-replay oracle accepts the stitched
    /// full trace.
    #[test]
    fn resume_is_bit_identical_under_fault_plans(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        every in 1u64..16,
        save_shards in 0usize..4,
        restore_shards in 0usize..5,
        pick in 0usize..64,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        const SHARDS: [usize; 4] = [1, 2, 3, 7];
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = FaultPlan::random(m, 48, seed);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let base = run_unit_faulty(&inst, &cfg, &plan).unwrap();
        let snaps = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&snaps);
        let checkpointed = run_unit_checkpointed(
            &inst,
            &cfg,
            Some(&plan),
            Some(SHARDS[save_shards]),
            every,
            "",
            move |s: &Snapshot| -> Result<(), CheckpointError> {
                log.lock().unwrap().push(s.clone());
                Ok(())
            },
        )
        .unwrap();
        prop_assert_eq!(
            &base.report,
            &checkpointed.report,
            "{} checkpointing every {} on {} shards changed the report under {:?}",
            name,
            every,
            SHARDS[save_shards],
            &plan
        );

        let snaps = snaps.lock().unwrap();
        if snaps.is_empty() {
            // The run finished before the first boundary — nothing to resume.
            return Ok(());
        }
        let snap = &snaps[pick % snaps.len()];
        // Round-trip through the byte encoding, like a real recovery would.
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let restore = (restore_shards < 4).then(|| SHARDS[restore_shards]);
        let resumed = resume_unit(&cfg, &snap, restore).unwrap();
        prop_assert_eq!(
            &base.report,
            &resumed.report,
            "{} resumed from t={} (saved on {} shards, restored on {:?}) diverged under {:?}",
            name,
            snap.t,
            SHARDS[save_shards],
            restore,
            &plan
        );
        let violations = check_run(&inst, &resumed.report, Some(&plan));
        prop_assert!(
            violations.is_empty(),
            "{} oracle rejected the resumed run's stitched trace under {:?}: {:?}",
            name,
            &plan,
            violations
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Checkpoint boundaries split compressed quiescent spans (the engine
    /// caps each span at the next boundary so snapshots land exactly on
    /// `t % every == 0`); the split must be unobservable: with compression
    /// on and a random cadence, the report still matches the plain
    /// uncompressed run bit-for-bit — sequentially and arc-parallel, with
    /// and without a fault plan — and resuming from a random boundary of
    /// the compressed run reproduces it again.
    #[test]
    fn checkpoint_cadence_is_unobservable_under_compression(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        every in 1u64..24,
        shards in 0usize..5,
        faulty in 0u8..2,
        pick in 0usize..64,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        const SHARDS: [usize; 4] = [1, 2, 3, 7];
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = (faulty == 1).then(|| FaultPlan::random(m, 48, seed));
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let base = match &plan {
            Some(p) => run_unit_faulty(&inst, &cfg, p),
            None => run_unit(&inst, &cfg),
        }
        .unwrap();

        let compressed_cfg = cfg.with_compress();
        let snaps = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&snaps);
        let run = run_unit_checkpointed(
            &inst,
            &compressed_cfg,
            plan.as_ref(),
            (shards < 4).then(|| SHARDS[shards]),
            every,
            "",
            move |s: &Snapshot| -> Result<(), CheckpointError> {
                log.lock().unwrap().push(s.clone());
                Ok(())
            },
        )
        .unwrap();
        prop_assert_eq!(
            &base.report,
            &run.report,
            "{} compression + checkpoint_every({}) changed the report under {:?}",
            name,
            every,
            &plan
        );

        let snaps = snaps.lock().unwrap();
        if snaps.is_empty() {
            return Ok(());
        }
        let snap = &snaps[pick % snaps.len()];
        prop_assert_eq!(snap.t % every, 0, "snapshot off the cadence boundary");
        let resumed = resume_unit(&compressed_cfg, snap, None).unwrap();
        prop_assert_eq!(
            &base.report,
            &resumed.report,
            "{} resumed from the compressed run's t={} diverged under {:?}",
            name,
            snap.t,
            &plan
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count-coalesced runs are unobservable: a random stream workload
    /// reports bit-identically whether its surplus travels as per-unit
    /// arena entries or coalesced runs, with and without step compression,
    /// sequentially and arc-parallel. (Fault-free by design: a bandwidth
    /// cap can split a per-unit stream mid-step but never a coalesced run,
    /// so capped links are outside the representation-equivalence contract —
    /// see DESIGN.md §10.)
    #[test]
    fn stream_representations_agree(
        initial in prop::collection::vec(0u64..60, 2..16),
        slack in 0u64..40,
        sink in 0usize..16,
        shards in 2usize..8,
        window in 0usize..4,
    ) {
        prop_assume!(initial.iter().sum::<u64>() > 0);
        let m = initial.len();
        let mut quota = vec![0u64; m];
        // Quotas cover the work with `slack` extra at one node, so every
        // unit is eventually accepted and the run terminates.
        let total: u64 = initial.iter().sum();
        let base = total / m as u64;
        let extra = (total % m as u64) as usize;
        for (i, q) in quota.iter_mut().enumerate() {
            *q = base + u64::from(i < extra);
        }
        quota[sink % m] += slack;
        let spec = StreamSpec::new(initial, quota);

        let full = |compress| EngineConfig {
            trace: TraceLevel::Full,
            observe: true,
            compress,
            window: Some(WINDOWS[window]),
            ..EngineConfig::default()
        };
        let base_report = stream_engine(&spec, Representation::PerUnit, full(false))
            .run()
            .unwrap();
        for repr in [Representation::PerUnit, Representation::Coalesced] {
            for compress in [false, true] {
                let seq = stream_engine(&spec, repr, full(compress)).run().unwrap();
                prop_assert_eq!(&base_report, &seq, "run {:?}/{}", repr, compress);
                let par = stream_engine(&spec, repr, full(compress))
                    .par_run(shards)
                    .unwrap();
                prop_assert_eq!(
                    &base_report,
                    &par,
                    "par_run({}) {:?}/{}",
                    shards,
                    repr,
                    compress
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random instances, random shard counts, all six §6 algorithms: the
    /// three executors agree on makespan, per-node work, and messages; the
    /// two engine executors agree on the entire report.
    #[test]
    fn executors_agree_on_random_instances(
        loads in prop::collection::vec(0u64..120, 1..24),
        alg in 0usize..6,
        shards in 2usize..9,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        let inst = Instance::from_loads(loads);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let seq = run_unit(&inst, &cfg).unwrap();
        let par = par_run_unit(&inst, &cfg, shards).unwrap();
        prop_assert_eq!(
            &seq.report,
            &par,
            "{} with {} shards diverged on {:?}",
            name,
            shards,
            inst.loads()
        );

        let thr = run_unit_threaded(&inst, &cfg).unwrap();
        prop_assert_eq!(seq.makespan, thr.makespan);
        prop_assert_eq!(&seq.report.metrics.processed_per_node, &thr.processed_per_node);
        prop_assert_eq!(seq.report.metrics.messages_sent, thr.messages_sent);
    }
}

/// The worker-pool sizes the steal battery forces: machine-fit (`None`),
/// leader-only, and oversubscribed (more threads than any CI runner has
/// cores), so the interleavings range from fully serial polls to genuinely
/// preemptive schedules.
const THREAD_FORCES: [Option<usize>; 3] = [None, Some(1), Some(8)];

#[test]
fn stealing_matches_the_sequential_report_bit_for_bit() {
    for inst in cases() {
        for (name, cfg) in UnitConfig::all_six() {
            let cfg = cfg.with_trace().with_observe();
            let seq = run_unit(&inst, &cfg).unwrap();
            for shards in [1usize, 2, 3, 7] {
                for (rebalance, tasks, seed) in [(true, 4, 0), (false, 1, 1), (true, 2, 0xDEAD)] {
                    for window in WINDOWS {
                        let mut scfg = cfg.with_window(window);
                        scfg.par = steal_par(rebalance, tasks, seed, None);
                        let par = par_run_unit(&inst, &scfg, shards).unwrap();
                        assert_eq!(
                            seq.report,
                            par,
                            "{name}/{shards} shards/steal(rebalance={rebalance}, tasks={tasks}, \
                             seed={seed})/window {window} diverged on {:?}",
                            inst.loads()
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Work-stealing is unobservable: random instances, random fault plans,
    /// all six §6 algorithms, shard counts {1, 2, 3, 7}, rebalancing on and
    /// off, random task granularity, adversarial seeded steal timings, and
    /// worker pools from leader-only to oversubscribed — the stolen run's
    /// `RunReport` is bit-identical to the sequential one and the
    /// trace-replay oracle accepts it.
    #[test]
    fn stealing_is_unobservable_under_fault_plans(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        window in 0usize..4,
        rebalance in 0u8..2,
        tasks in 1usize..5,
        steal_seed in 0u64..1_000_000_000,
        threads in 0usize..3,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = FaultPlan::random(m, 48, seed);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let seq = run_unit_faulty(&inst, &cfg, &plan).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let mut scfg = cfg;
            scfg.par = steal_par(rebalance == 1, tasks, steal_seed, THREAD_FORCES[threads]);
            let par = run_unit_par_faulty(&inst, &scfg, &plan, shards).unwrap();
            prop_assert_eq!(
                &seq.report,
                &par.report,
                "{} stolen on {} shards (rebalance={}, tasks={}, seed={}, threads={:?}) \
                 diverged under {:?}",
                name,
                shards,
                rebalance == 1,
                tasks,
                steal_seed,
                THREAD_FORCES[threads],
                &plan
            );
        }
        let violations = check_run(&inst, &seq.report, Some(&plan));
        prop_assert!(violations.is_empty(), "{} oracle violations: {:?}", name, violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fault_case_count()))]

    /// Checkpoint/restore composes with stealing: a run checkpointed under
    /// the steal executor reports bit-identically to the plain sequential
    /// run, and a snapshot from a random boundary — byte-round-tripped —
    /// resumes bit-identically, with the save and restore sides drawing
    /// shard counts, rebalancing, and steal seeds independently. Snapshots
    /// stay shard-count- and schedule-independent, so any mix must stitch.
    #[test]
    fn steal_resume_is_bit_identical_under_fault_plans(
        loads in prop::collection::vec(0u64..100, 2..20),
        alg in 0usize..6,
        seed in 0u64..1_000_000,
        every in 1u64..16,
        save_shards in 0usize..4,
        restore_shards in 0usize..4,
        save_rebalance in 0u8..2,
        restore_rebalance in 0u8..2,
        steal_seed in 0u64..1_000_000_000,
        pick in 0usize..64,
        window in 0usize..4,
    ) {
        prop_assume!(loads.iter().sum::<u64>() > 0);
        const SHARDS: [usize; 4] = [1, 2, 3, 7];
        let inst = Instance::from_loads(loads);
        let m = inst.num_processors();
        let plan = FaultPlan::random(m, 48, seed);
        let (name, cfg) = UnitConfig::all_six()[alg];
        let cfg = cfg.with_trace().with_observe().with_window(WINDOWS[window]);

        let base = run_unit_faulty(&inst, &cfg, &plan).unwrap();

        let mut save_cfg = cfg;
        save_cfg.par = steal_par(save_rebalance == 1, 1 + (pick % 4), steal_seed, None);
        let snaps = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&snaps);
        let checkpointed = run_unit_checkpointed(
            &inst,
            &save_cfg,
            Some(&plan),
            Some(SHARDS[save_shards]),
            every,
            "",
            move |s: &Snapshot| -> Result<(), CheckpointError> {
                log.lock().unwrap().push(s.clone());
                Ok(())
            },
        )
        .unwrap();
        prop_assert_eq!(
            &base.report,
            &checkpointed.report,
            "{} stolen checkpointing every {} on {} shards changed the report under {:?}",
            name,
            every,
            SHARDS[save_shards],
            &plan
        );

        let snaps = snaps.lock().unwrap();
        if snaps.is_empty() {
            return Ok(());
        }
        let snap = &snaps[pick % snaps.len()];
        let snap = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let mut restore_cfg = cfg;
        restore_cfg.par = steal_par(restore_rebalance == 1, 1 + (pick % 3), !steal_seed, None);
        let resumed = resume_unit(&restore_cfg, &snap, Some(SHARDS[restore_shards])).unwrap();
        prop_assert_eq!(
            &base.report,
            &resumed.report,
            "{} resumed stolen from t={} (saved on {} shards, restored on {}) diverged under {:?}",
            name,
            snap.t,
            SHARDS[save_shards],
            SHARDS[restore_shards],
            &plan
        );
        let violations = check_run(&inst, &resumed.report, Some(&plan));
        prop_assert!(
            violations.is_empty(),
            "{} oracle rejected the stolen resumed run under {:?}: {:?}",
            name,
            &plan,
            violations
        );
    }
}
